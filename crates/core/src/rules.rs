//! The horizontal operator fusion rules of HFTA — **Table 6** of the paper
//! as typed, checkable data.
//!
//! An [`OpSpec`] describes one operator invocation at concrete shapes. The
//! two key observations of the paper become code here:
//!
//! 1. *same type + same shape*: [`fuse`] verifies a batch of specs is
//!    fusable and rejects mismatches with a precise [`FusionError`];
//! 2. *mathematical equivalence*: [`OpSpec::fused`] produces the spec of
//!    the already-well-optimized operator that realizes the fusion
//!    (grouped convolution, `baddbmm`, widened batch-norm, ...).
//!
//! The same specs carry FLOP/byte accounting used by the `hfta-sim`
//! cost model, so the fusion rules and the performance model cannot drift
//! apart.

use crate::error::{FusionError, Result};

/// The operator types HFTA currently supports (paper Appendix B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// 2-D convolution.
    Conv2d,
    /// 1-D convolution.
    Conv1d,
    /// 2-D transposed convolution.
    ConvTranspose2d,
    /// Fully connected layer.
    Linear,
    /// Batch norm over `[N, C]` / `[N, C, L]`.
    BatchNorm1d,
    /// Batch norm over `[N, C, H, W]`.
    BatchNorm2d,
    /// 2-D max pooling.
    MaxPool2d,
    /// Channel dropout.
    Dropout2d,
    /// Elementwise dropout.
    Dropout,
    /// Leaky rectified linear unit.
    LeakyRelu,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl OpKind {
    /// All supported kinds, in Table 6 order.
    pub const ALL: [OpKind; 12] = [
        OpKind::Conv2d,
        OpKind::Conv1d,
        OpKind::ConvTranspose2d,
        OpKind::Linear,
        OpKind::BatchNorm1d,
        OpKind::BatchNorm2d,
        OpKind::MaxPool2d,
        OpKind::Dropout2d,
        OpKind::Dropout,
        OpKind::LeakyRelu,
        OpKind::Relu,
        OpKind::Tanh,
    ];

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Conv2d => "Conv2d",
            OpKind::Conv1d => "Conv1d",
            OpKind::ConvTranspose2d => "ConvTranspose2d",
            OpKind::Linear => "Linear",
            OpKind::BatchNorm1d => "BatchNorm1d",
            OpKind::BatchNorm2d => "BatchNorm2d",
            OpKind::MaxPool2d => "MaxPool2d",
            OpKind::Dropout2d => "Dropout2d",
            OpKind::Dropout => "Dropout",
            OpKind::LeakyRelu => "LeakyReLU",
            OpKind::Relu => "ReLU",
            OpKind::Tanh => "Tanh",
        }
    }

    /// How the fused operator is realized (Table 6, right column).
    pub fn fusion_mechanism(&self) -> &'static str {
        match self {
            OpKind::Conv2d => "grouped Conv2d with G = B x g",
            OpKind::Conv1d => "grouped Conv1d with G = B x g",
            OpKind::ConvTranspose2d => "grouped ConvTranspose2d with G = B x g",
            OpKind::Linear => "baddbmm over [B, N, F] operands",
            OpKind::BatchNorm1d => "BatchNorm1d widened to B x C channels",
            OpKind::BatchNorm2d => "BatchNorm2d widened to B x C channels",
            OpKind::MaxPool2d => "MaxPool2d over B x C channels (stateless)",
            OpKind::Dropout2d => "Dropout2d over B x C channels (stateless)",
            OpKind::Dropout => "Dropout over the widened tensor (stateless)",
            OpKind::LeakyRelu => "LeakyReLU over the widened tensor (stateless)",
            OpKind::Relu => "ReLU over the widened tensor (stateless)",
            OpKind::Tanh => "Tanh over the widened tensor (stateless)",
        }
    }

    /// Whether the operator carries trainable state (weights).
    pub fn is_stateful(&self) -> bool {
        matches!(
            self,
            OpKind::Conv2d
                | OpKind::Conv1d
                | OpKind::ConvTranspose2d
                | OpKind::Linear
                | OpKind::BatchNorm1d
                | OpKind::BatchNorm2d
        )
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One operator invocation at concrete shapes.
///
/// Spatial sizes refer to the operator's *input*; batch size `n` is the
/// per-model minibatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpSpec {
    /// 2-D convolution.
    Conv2d {
        /// Minibatch size.
        n: usize,
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        padding: usize,
        /// Groups.
        groups: usize,
    },
    /// 1-D convolution.
    Conv1d {
        /// Minibatch size.
        n: usize,
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Input length.
        l: usize,
        /// Kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        padding: usize,
        /// Groups.
        groups: usize,
    },
    /// 2-D transposed convolution.
    ConvTranspose2d {
        /// Minibatch size.
        n: usize,
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        padding: usize,
        /// Groups.
        groups: usize,
    },
    /// Fully connected layer over `[N, F_in]` — or, when `arrays > 1`,
    /// the horizontally fused `baddbmm` over `[arrays, N, F_in]`
    /// (Table 6 row 4).
    Linear {
        /// Minibatch size (rows) per model.
        n: usize,
        /// Input features.
        f_in: usize,
        /// Output features.
        f_out: usize,
        /// Number of fused weight copies (1 for a plain linear layer).
        arrays: usize,
    },
    /// Batch norm over `[N, C, L]` (`l = 1` for the `[N, C]` form).
    BatchNorm1d {
        /// Minibatch size.
        n: usize,
        /// Channels.
        c: usize,
        /// Signal length.
        l: usize,
    },
    /// Batch norm over `[N, C, H, W]`.
    BatchNorm2d {
        /// Minibatch size.
        n: usize,
        /// Channels.
        c: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
    },
    /// 2-D max pooling.
    MaxPool2d {
        /// Minibatch size.
        n: usize,
        /// Channels.
        c: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
        /// Window size.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Channel dropout over `[N, C, H, W]`.
    Dropout2d {
        /// Minibatch size.
        n: usize,
        /// Channels.
        c: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
    },
    /// Elementwise dropout over any shape.
    Dropout {
        /// Total element count.
        numel: usize,
    },
    /// Leaky ReLU over any shape.
    LeakyRelu {
        /// Total element count.
        numel: usize,
    },
    /// ReLU over any shape.
    Relu {
        /// Total element count.
        numel: usize,
    },
    /// Tanh over any shape.
    Tanh {
        /// Total element count.
        numel: usize,
    },
}

impl OpSpec {
    /// The operator's kind.
    pub fn kind(&self) -> OpKind {
        match self {
            OpSpec::Conv2d { .. } => OpKind::Conv2d,
            OpSpec::Conv1d { .. } => OpKind::Conv1d,
            OpSpec::ConvTranspose2d { .. } => OpKind::ConvTranspose2d,
            OpSpec::Linear { .. } => OpKind::Linear,
            OpSpec::BatchNorm1d { .. } => OpKind::BatchNorm1d,
            OpSpec::BatchNorm2d { .. } => OpKind::BatchNorm2d,
            OpSpec::MaxPool2d { .. } => OpKind::MaxPool2d,
            OpSpec::Dropout2d { .. } => OpKind::Dropout2d,
            OpSpec::Dropout { .. } => OpKind::Dropout,
            OpSpec::LeakyRelu { .. } => OpKind::LeakyRelu,
            OpSpec::Relu { .. } => OpKind::Relu,
            OpSpec::Tanh { .. } => OpKind::Tanh,
        }
    }

    /// The Table 6 transform: the spec of the single operator that computes
    /// `b` horizontally fused copies of this one.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn fused(&self, b: usize) -> OpSpec {
        assert!(b > 0, "fusion width must be positive");
        match *self {
            OpSpec::Conv2d {
                n,
                c_in,
                c_out,
                h,
                w,
                kernel,
                stride,
                padding,
                groups,
            } => OpSpec::Conv2d {
                n,
                c_in: b * c_in,
                c_out: b * c_out,
                h,
                w,
                kernel,
                stride,
                padding,
                groups: b * groups,
            },
            OpSpec::Conv1d {
                n,
                c_in,
                c_out,
                l,
                kernel,
                stride,
                padding,
                groups,
            } => OpSpec::Conv1d {
                n,
                c_in: b * c_in,
                c_out: b * c_out,
                l,
                kernel,
                stride,
                padding,
                groups: b * groups,
            },
            OpSpec::ConvTranspose2d {
                n,
                c_in,
                c_out,
                h,
                w,
                kernel,
                stride,
                padding,
                groups,
            } => OpSpec::ConvTranspose2d {
                n,
                c_in: b * c_in,
                c_out: b * c_out,
                h,
                w,
                kernel,
                stride,
                padding,
                groups: b * groups,
            },
            // Linear fuses to a baddbmm over [B * arrays, N, F] operands.
            OpSpec::Linear {
                n,
                f_in,
                f_out,
                arrays,
            } => OpSpec::Linear {
                n,
                f_in,
                f_out,
                arrays: b * arrays,
            },
            OpSpec::BatchNorm1d { n, c, l } => OpSpec::BatchNorm1d { n, c: b * c, l },
            OpSpec::BatchNorm2d { n, c, h, w } => OpSpec::BatchNorm2d { n, c: b * c, h, w },
            OpSpec::MaxPool2d {
                n,
                c,
                h,
                w,
                kernel,
                stride,
            } => OpSpec::MaxPool2d {
                n,
                c: b * c,
                h,
                w,
                kernel,
                stride,
            },
            OpSpec::Dropout2d { n, c, h, w } => OpSpec::Dropout2d { n, c: b * c, h, w },
            OpSpec::Dropout { numel } => OpSpec::Dropout { numel: b * numel },
            OpSpec::LeakyRelu { numel } => OpSpec::LeakyRelu { numel: b * numel },
            OpSpec::Relu { numel } => OpSpec::Relu { numel: b * numel },
            OpSpec::Tanh { numel } => OpSpec::Tanh { numel: b * numel },
        }
    }

    /// Forward-pass floating point operations (multiply-accumulate = 2).
    pub fn flops(&self) -> u64 {
        let conv_out = |sz: usize, k: usize, s: usize, p: usize| (sz + 2 * p - k) / s + 1;
        match *self {
            OpSpec::Conv2d {
                n,
                c_in,
                c_out,
                h,
                w,
                kernel,
                stride,
                padding,
                groups,
            } => {
                let ho = conv_out(h, kernel, stride, padding);
                let wo = conv_out(w, kernel, stride, padding);
                2 * (n * c_out * ho * wo * (c_in / groups) * kernel * kernel) as u64
            }
            OpSpec::Conv1d {
                n,
                c_in,
                c_out,
                l,
                kernel,
                stride,
                padding,
                groups,
            } => {
                let lo = conv_out(l, kernel, stride, padding);
                2 * (n * c_out * lo * (c_in / groups) * kernel) as u64
            }
            OpSpec::ConvTranspose2d {
                n,
                c_in,
                c_out,
                h,
                w,
                kernel,
                groups,
                ..
            } => 2 * (n * c_in * h * w * (c_out / groups) * kernel * kernel) as u64,
            OpSpec::Linear {
                n,
                f_in,
                f_out,
                arrays,
            } => 2 * (arrays * n * f_in * f_out) as u64,
            OpSpec::BatchNorm1d { n, c, l } => 8 * (n * c * l) as u64,
            OpSpec::BatchNorm2d { n, c, h, w } => 8 * (n * c * h * w) as u64,
            OpSpec::MaxPool2d {
                n,
                c,
                h,
                w,
                kernel,
                stride,
            } => {
                let ho = (h - kernel) / stride + 1;
                let wo = (w - kernel) / stride + 1;
                (n * c * ho * wo * kernel * kernel) as u64
            }
            OpSpec::Dropout2d { n, c, h, w } => (n * c * h * w) as u64,
            OpSpec::Dropout { numel } | OpSpec::LeakyRelu { numel } | OpSpec::Relu { numel } => {
                numel as u64
            }
            OpSpec::Tanh { numel } => 4 * numel as u64,
        }
    }

    /// Forward-pass bytes moved (inputs + outputs + weights, fp32).
    pub fn bytes(&self) -> u64 {
        let conv_out = |sz: usize, k: usize, s: usize, p: usize| (sz + 2 * p - k) / s + 1;
        let f = 4u64; // fp32
        match *self {
            OpSpec::Conv2d {
                n,
                c_in,
                c_out,
                h,
                w,
                kernel,
                stride,
                padding,
                groups,
            } => {
                let ho = conv_out(h, kernel, stride, padding);
                let wo = conv_out(w, kernel, stride, padding);
                f * (n * c_in * h * w
                    + n * c_out * ho * wo
                    + c_out * (c_in / groups) * kernel * kernel) as u64
            }
            OpSpec::Conv1d {
                n,
                c_in,
                c_out,
                l,
                kernel,
                stride,
                padding,
                groups,
            } => {
                let lo = conv_out(l, kernel, stride, padding);
                f * (n * c_in * l + n * c_out * lo + c_out * (c_in / groups) * kernel) as u64
            }
            OpSpec::ConvTranspose2d {
                n,
                c_in,
                c_out,
                h,
                w,
                kernel,
                stride,
                padding,
                groups,
            } => {
                let ho = (h - 1) * stride + kernel - 2 * padding;
                let wo = (w - 1) * stride + kernel - 2 * padding;
                f * (n * c_in * h * w
                    + n * c_out * ho * wo
                    + c_in * (c_out / groups) * kernel * kernel) as u64
            }
            OpSpec::Linear {
                n,
                f_in,
                f_out,
                arrays,
            } => f * (arrays * (n * f_in + n * f_out + f_in * f_out)) as u64,
            OpSpec::BatchNorm1d { n, c, l } => f * (2 * n * c * l + 4 * c) as u64,
            OpSpec::BatchNorm2d { n, c, h, w } => f * (2 * n * c * h * w + 4 * c) as u64,
            OpSpec::MaxPool2d {
                n,
                c,
                h,
                w,
                kernel,
                stride,
            } => {
                let ho = (h - kernel) / stride + 1;
                let wo = (w - kernel) / stride + 1;
                f * (n * c * h * w + n * c * ho * wo) as u64
            }
            OpSpec::Dropout2d { n, c, h, w } => 2 * f * (n * c * h * w) as u64,
            OpSpec::Dropout { numel }
            | OpSpec::LeakyRelu { numel }
            | OpSpec::Relu { numel }
            | OpSpec::Tanh { numel } => 2 * f * numel as u64,
        }
    }

    /// Whether the fused/serial kernel maps to a GEMM (tensor-core
    /// eligible under AMP, systolic-array friendly on TPUs).
    pub fn is_gemm(&self) -> bool {
        matches!(
            self.kind(),
            OpKind::Conv2d | OpKind::Conv1d | OpKind::ConvTranspose2d | OpKind::Linear
        )
    }

    /// Number of independent thread blocks / tiles the kernel decomposes
    /// into — the occupancy driver of the simulator's cost model. GEMM-like
    /// kernels tile their output; elementwise kernels tile flat.
    pub fn parallel_tiles(&self) -> u64 {
        // 128x128 output tiles for GEMMs, 16K-element tiles otherwise —
        // roughly cuBLAS/cuDNN tiling granularity.
        const GEMM_TILE: usize = 128 * 128;
        const ELT_TILE: usize = 16 * 1024;
        let conv_out = |sz: usize, k: usize, s: usize, p: usize| (sz + 2 * p - k) / s + 1;
        let out_elems = match *self {
            OpSpec::Conv2d {
                n,
                c_out,
                h,
                w,
                kernel,
                stride,
                padding,
                ..
            } => {
                let ho = conv_out(h, kernel, stride, padding);
                let wo = conv_out(w, kernel, stride, padding);
                n * c_out * ho * wo
            }
            OpSpec::Conv1d {
                n,
                c_out,
                l,
                kernel,
                stride,
                padding,
                ..
            } => n * c_out * conv_out(l, kernel, stride, padding),
            OpSpec::ConvTranspose2d {
                n,
                c_out,
                h,
                w,
                kernel,
                stride,
                padding,
                ..
            } => {
                let ho = (h - 1) * stride + kernel - 2 * padding;
                let wo = (w - 1) * stride + kernel - 2 * padding;
                n * c_out * ho * wo
            }
            OpSpec::Linear {
                n, f_out, arrays, ..
            } => arrays * n * f_out,
            OpSpec::BatchNorm1d { n, c, l } => n * c * l,
            OpSpec::BatchNorm2d { n, c, h, w } => n * c * h * w,
            OpSpec::MaxPool2d {
                n,
                c,
                h,
                w,
                kernel,
                stride,
            } => {
                let ho = (h - kernel) / stride + 1;
                let wo = (w - kernel) / stride + 1;
                n * c * ho * wo
            }
            OpSpec::Dropout2d { n, c, h, w } => n * c * h * w,
            OpSpec::Dropout { numel }
            | OpSpec::LeakyRelu { numel }
            | OpSpec::Relu { numel }
            | OpSpec::Tanh { numel } => numel,
        };
        let tile = if self.is_gemm() { GEMM_TILE } else { ELT_TILE };
        (out_elems.div_ceil(tile)) as u64
    }

    /// Trainable parameter count (0 for stateless ops).
    pub fn param_count(&self) -> usize {
        match *self {
            OpSpec::Conv2d {
                c_in,
                c_out,
                kernel,
                groups,
                ..
            } => c_out * (c_in / groups) * kernel * kernel + c_out,
            OpSpec::Conv1d {
                c_in,
                c_out,
                kernel,
                groups,
                ..
            } => c_out * (c_in / groups) * kernel + c_out,
            OpSpec::ConvTranspose2d {
                c_in,
                c_out,
                kernel,
                groups,
                ..
            } => c_in * (c_out / groups) * kernel * kernel + c_out,
            OpSpec::Linear {
                f_in,
                f_out,
                arrays,
                ..
            } => arrays * (f_in * f_out + f_out),
            OpSpec::BatchNorm1d { c, .. } | OpSpec::BatchNorm2d { c, .. } => 2 * c,
            _ => 0,
        }
    }

    /// Output activation element count (for the memory model).
    pub fn activation_elems(&self) -> usize {
        let conv_out = |sz: usize, k: usize, s: usize, p: usize| (sz + 2 * p - k) / s + 1;
        match *self {
            OpSpec::Conv2d {
                n,
                c_out,
                h,
                w,
                kernel,
                stride,
                padding,
                ..
            } => {
                n * c_out
                    * conv_out(h, kernel, stride, padding)
                    * conv_out(w, kernel, stride, padding)
            }
            OpSpec::Conv1d {
                n,
                c_out,
                l,
                kernel,
                stride,
                padding,
                ..
            } => n * c_out * conv_out(l, kernel, stride, padding),
            OpSpec::ConvTranspose2d {
                n,
                c_out,
                h,
                w,
                kernel,
                stride,
                padding,
                ..
            } => {
                let ho = (h - 1) * stride + kernel - 2 * padding;
                let wo = (w - 1) * stride + kernel - 2 * padding;
                n * c_out * ho * wo
            }
            OpSpec::Linear {
                n, f_out, arrays, ..
            } => arrays * n * f_out,
            OpSpec::BatchNorm1d { n, c, l } => n * c * l,
            OpSpec::BatchNorm2d { n, c, h, w } => n * c * h * w,
            OpSpec::MaxPool2d {
                n,
                c,
                h,
                w,
                kernel,
                stride,
            } => n * c * ((h - kernel) / stride + 1) * ((w - kernel) / stride + 1),
            OpSpec::Dropout2d { n, c, h, w } => n * c * h * w,
            OpSpec::Dropout { numel }
            | OpSpec::LeakyRelu { numel }
            | OpSpec::Relu { numel }
            | OpSpec::Tanh { numel } => numel,
        }
    }
}

/// Verifies that `specs` (one operator per job) are horizontally fusable —
/// the paper's "same types, same shapes" condition — and returns the fused
/// operator's spec.
///
/// # Errors
///
/// [`FusionError::Empty`] on an empty slice; [`FusionError::KindMismatch`]
/// or [`FusionError::ShapeMismatch`] when the condition fails.
///
/// # Example
///
/// ```
/// use hfta_core::rules::{fuse, OpSpec};
/// let conv = OpSpec::Conv2d {
///     n: 32, c_in: 3, c_out: 64, h: 32, w: 32,
///     kernel: 3, stride: 1, padding: 1, groups: 1,
/// };
/// let fused = fuse(&[conv, conv, conv]).unwrap();
/// assert_eq!(fused, conv.fused(3));
/// ```
pub fn fuse(specs: &[OpSpec]) -> Result<OpSpec> {
    let first = specs.first().ok_or(FusionError::Empty)?;
    for (i, s) in specs.iter().enumerate().skip(1) {
        if s.kind() != first.kind() {
            return Err(FusionError::KindMismatch {
                expected: first.kind().name().into(),
                found: s.kind().name().into(),
                index: i,
            });
        }
        if s != first {
            return Err(FusionError::ShapeMismatch {
                kind: first.kind().name().into(),
                index: i,
                detail: format!("{s:?} vs {first:?}"),
            });
        }
    }
    Ok(first.fused(specs.len()))
}

/// One row of Table 6, rendered for documentation and the `table6` harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionRule {
    /// The original operator kind.
    pub kind: OpKind,
    /// Left column: the original operator's symbolic signature.
    pub original: &'static str,
    /// Right column: the fused operator's symbolic signature.
    pub fused: &'static str,
}

/// The complete rule table (paper Table 6).
pub fn rule_table() -> Vec<FusionRule> {
    vec![
        FusionRule {
            kind: OpKind::Conv2d,
            original: "Conv2d(x: [N, Cx, Hx, Wx], w: [Cy, Cx/G, Hw, Ww], b: [Cy], G = g)",
            fused: "Conv2d(x: [N, B*Cx, Hx, Wx], w: [B*Cy, Cx/G, Hw, Ww], b: [B*Cy], G = B*g)",
        },
        FusionRule {
            kind: OpKind::Conv1d,
            original: "Conv1d(x: [N, Cx, Lx], w: [Cy, Cx/G, Lw], b: [Cy], G = g)",
            fused: "Conv1d(x: [N, B*Cx, Lx], w: [B*Cy, Cx/G, Lw], b: [B*Cy], G = B*g)",
        },
        FusionRule {
            kind: OpKind::ConvTranspose2d,
            original: "ConvT2d(x: [N, Cx, Hx, Wx], w: [Cx, Cy/G, Hw, Ww], b: [Cy], G = g)",
            fused: "ConvT2d(x: [N, B*Cx, Hx, Wx], w: [B*Cx, Cy/G, Hw, Ww], b: [B*Cy], G = B*g)",
        },
        FusionRule {
            kind: OpKind::Linear,
            original: "Linear(x: [N, Fx], w: [Fx, Fy], b: [Fy])",
            fused: "baddbmm(b: [B, 1, Fy], x: [B, N, Fx], w: [B, Fx, Fy])",
        },
        FusionRule {
            kind: OpKind::BatchNorm1d,
            original: "BatchNorm1d(x: [N, Cx] or [N, Cx, Lx], w: [Cx], b: [Cx])",
            fused: "BatchNorm1d(x: [B*N, Cx] or [N, B*Cx, Lx], w: [B*Cx], b: [B*Cx])",
        },
        FusionRule {
            kind: OpKind::BatchNorm2d,
            original: "BatchNorm2d(x: [N, Cx, Hx, Wx], w: [Cx], b: [Cx])",
            fused: "BatchNorm2d(x: [N, B*Cx, Hx, Wx], w: [B*Cx], b: [B*Cx])",
        },
        FusionRule {
            kind: OpKind::MaxPool2d,
            original: "MaxPool2d(x: [N, Cx, Hx, Wx])",
            fused: "MaxPool2d(x: [N, B*Cx, Hx, Wx])",
        },
        FusionRule {
            kind: OpKind::Dropout2d,
            original: "Dropout2d(x: [N, Cx, Hx, Wx])",
            fused: "Dropout2d(x: [N, B*Cx, Hx, Wx])",
        },
        FusionRule {
            kind: OpKind::Dropout,
            original: "Dropout(x: [*])",
            fused: "Dropout(x: [*, B, *])",
        },
        FusionRule {
            kind: OpKind::LeakyRelu,
            original: "LeakyReLU(x: [*])",
            fused: "LeakyReLU(x: [*, B, *])",
        },
        FusionRule {
            kind: OpKind::Relu,
            original: "ReLU(x: [*])",
            fused: "ReLU(x: [*, B, *])",
        },
        FusionRule {
            kind: OpKind::Tanh,
            original: "Tanh(x: [*])",
            fused: "Tanh(x: [*, B, *])",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> OpSpec {
        OpSpec::Conv2d {
            n: 8,
            c_in: 16,
            c_out: 32,
            h: 14,
            w: 14,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        }
    }

    #[test]
    fn fuse_accepts_identical_specs() {
        let fused = fuse(&[conv(); 4]).unwrap();
        match fused {
            OpSpec::Conv2d {
                c_in,
                c_out,
                groups,
                ..
            } => {
                assert_eq!(c_in, 64);
                assert_eq!(c_out, 128);
                assert_eq!(groups, 4);
            }
            other => panic!("wrong fused spec {other:?}"),
        }
    }

    #[test]
    fn fuse_rejects_kind_mismatch() {
        let lin = OpSpec::Linear {
            n: 8,
            f_in: 16,
            f_out: 32,
            arrays: 1,
        };
        let err = fuse(&[conv(), lin]).unwrap_err();
        assert!(matches!(err, FusionError::KindMismatch { index: 1, .. }));
    }

    #[test]
    fn fuse_rejects_shape_mismatch() {
        let mut other = conv();
        if let OpSpec::Conv2d { kernel, .. } = &mut other {
            *kernel = 5;
        }
        let err = fuse(&[conv(), other]).unwrap_err();
        assert!(matches!(err, FusionError::ShapeMismatch { index: 1, .. }));
    }

    #[test]
    fn fuse_rejects_empty() {
        assert_eq!(fuse(&[]).unwrap_err(), FusionError::Empty);
    }

    #[test]
    fn fused_flops_scale_linearly_for_convs() {
        // Grouped fusion multiplies work by exactly B (the mathematical
        // equivalence does not add FLOPs).
        let s = conv();
        for b in [1, 2, 4, 9] {
            assert_eq!(s.fused(b).flops(), s.flops() * b as u64);
        }
    }

    #[test]
    fn fused_flops_scale_linearly_for_all_kinds() {
        let specs = [
            conv(),
            OpSpec::Conv1d {
                n: 4,
                c_in: 3,
                c_out: 8,
                l: 100,
                kernel: 3,
                stride: 1,
                padding: 1,
                groups: 1,
            },
            OpSpec::ConvTranspose2d {
                n: 2,
                c_in: 8,
                c_out: 4,
                h: 4,
                w: 4,
                kernel: 4,
                stride: 2,
                padding: 1,
                groups: 1,
            },
            OpSpec::Linear {
                n: 32,
                f_in: 128,
                f_out: 64,
                arrays: 1,
            },
            OpSpec::BatchNorm2d {
                n: 4,
                c: 8,
                h: 7,
                w: 7,
            },
            OpSpec::MaxPool2d {
                n: 4,
                c: 8,
                h: 8,
                w: 8,
                kernel: 2,
                stride: 2,
            },
            OpSpec::Relu { numel: 1000 },
            OpSpec::Tanh { numel: 1000 },
        ];
        for s in specs {
            assert_eq!(s.fused(3).flops(), 3 * s.flops(), "{s:?}");
        }
    }

    #[test]
    fn fused_tiles_grow_with_b() {
        // The core utilization claim: one fused kernel exposes ~B times the
        // parallelism of one per-model kernel.
        let s = conv();
        assert!(s.fused(8).parallel_tiles() >= 4 * s.parallel_tiles());
    }

    #[test]
    fn gemm_classification() {
        assert!(conv().is_gemm());
        assert!(OpSpec::Linear {
            n: 1,
            f_in: 2,
            f_out: 3,
            arrays: 1
        }
        .is_gemm());
        assert!(!OpSpec::Relu { numel: 10 }.is_gemm());
        assert!(!OpSpec::MaxPool2d {
            n: 1,
            c: 1,
            h: 4,
            w: 4,
            kernel: 2,
            stride: 2
        }
        .is_gemm());
    }

    #[test]
    fn rule_table_covers_all_kinds_once() {
        let table = rule_table();
        assert_eq!(table.len(), 12);
        for kind in OpKind::ALL {
            assert_eq!(
                table.iter().filter(|r| r.kind == kind).count(),
                1,
                "{kind} missing or duplicated"
            );
        }
        // Every fused form mentions B.
        for rule in &table {
            assert!(rule.fused.contains('B'), "{:?}", rule.kind);
        }
    }

    #[test]
    fn stateful_classification_matches_hivemind_discussion() {
        // The paper contrasts HFTA with HiveMind, which only fuses
        // non-stateful ops (or stateful with shared weights).
        assert!(OpKind::Conv2d.is_stateful());
        assert!(OpKind::Linear.is_stateful());
        assert!(!OpKind::Relu.is_stateful());
        assert!(!OpKind::MaxPool2d.is_stateful());
    }

    #[test]
    fn param_counts() {
        assert_eq!(
            OpSpec::Linear {
                n: 1,
                f_in: 10,
                f_out: 5,
                arrays: 1
            }
            .param_count(),
            55
        );
        assert_eq!(conv().param_count(), 32 * 16 * 9 + 32);
        assert_eq!(OpSpec::Relu { numel: 100 }.param_count(), 0);
    }
}
