//! Fused losses with the §3.2 scaling rule.
//!
//! When `B` per-model losses are fused with **mean** reduction, the fused
//! loss is `L = (1/B) Σ_b ℓ_b`, so each model's gradient arrives scaled by
//! `1/B`. Multiplying the fused loss by `B` (Equation 3 of the paper)
//! reconstructs exactly the gradients of independent training. With **sum**
//! reduction no scaling is needed. The derivation makes no assumption about
//! the form of `ℓ_b`, so the rule here is applied uniformly to every loss.

use hfta_nn::Var;
use hfta_tensor::Tensor;

/// How per-example losses are reduced, mirroring PyTorch's `reduction=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Reduction {
    /// Average over examples (and models, once fused).
    #[default]
    Mean,
    /// Sum over examples.
    Sum,
}

impl Reduction {
    /// The §3.2 loss-scale factor that reconstructs per-model gradients
    /// when `b` models are fused.
    ///
    /// # Example
    ///
    /// ```
    /// use hfta_core::loss::Reduction;
    /// assert_eq!(Reduction::Mean.fused_scale(8), 8.0);
    /// assert_eq!(Reduction::Sum.fused_scale(8), 1.0);
    /// ```
    pub fn fused_scale(&self, b: usize) -> f32 {
        match self {
            Reduction::Mean => b as f32,
            Reduction::Sum => 1.0,
        }
    }
}

/// Fused cross-entropy over array-format logits `[B, N, C]` against
/// model-major targets `[B * N]`, with gradient-exact scaling.
///
/// Equivalent to computing each model's mean cross-entropy independently
/// and summing — i.e. `backward()` yields exactly the gradients each model
/// would see when trained alone.
///
/// # Panics
///
/// Panics if the logits are not `[B, N, C]` or the target length is not
/// `B * N`.
pub fn fused_cross_entropy(logits: &Var, targets: &[usize], reduction: Reduction) -> Var {
    let dims = logits.dims();
    assert_eq!(dims.len(), 3, "fused logits must be [B, N, C]");
    let (b, n, c) = (dims[0], dims[1], dims[2]);
    assert_eq!(targets.len(), b * n, "targets must be model-major [B * N]");
    // Flatten models into the batch: [B*N, C]; the fused mean then averages
    // over B*N, and the scale restores per-model magnitudes.
    let flat = logits.reshape(&[b * n, c]);
    flat.cross_entropy(targets)
        .mul_scalar(reduction.fused_scale(b))
}

/// Fused negative log-likelihood over array-format log-probabilities
/// `[B, N, C]` (see [`fused_cross_entropy`] for conventions).
///
/// # Panics
///
/// Panics on layout mismatches.
pub fn fused_nll_loss(log_probs: &Var, targets: &[usize], reduction: Reduction) -> Var {
    let dims = log_probs.dims();
    assert_eq!(dims.len(), 3, "fused log-probs must be [B, N, C]");
    let (b, n, c) = (dims[0], dims[1], dims[2]);
    assert_eq!(targets.len(), b * n, "targets must be model-major [B * N]");
    let flat = log_probs.reshape(&[b * n, c]);
    flat.nll_loss(targets).mul_scalar(reduction.fused_scale(b))
}

/// Fused binary cross-entropy with logits over any fused layout, given the
/// array width `b`. The targets tensor must match the logits' shape.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn fused_bce_with_logits(
    logits: &Var,
    targets: &Tensor,
    b: usize,
    reduction: Reduction,
) -> Var {
    logits
        .bce_with_logits(targets)
        .mul_scalar(reduction.fused_scale(b))
}

/// Fused mean-squared error (targets constant), given the array width `b`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn fused_mse_loss(output: &Var, targets: &Tensor, b: usize, reduction: Reduction) -> Var {
    output
        .mse_loss(targets)
        .mul_scalar(reduction.fused_scale(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{stack_array, stack_targets};
    use hfta_nn::{Parameter, Tape};
    use hfta_tensor::Rng;

    #[test]
    fn scale_rule() {
        assert_eq!(Reduction::Mean.fused_scale(1), 1.0);
        assert_eq!(Reduction::Mean.fused_scale(16), 16.0);
        assert_eq!(Reduction::Sum.fused_scale(16), 1.0);
    }

    #[test]
    fn fused_ce_value_is_sum_of_per_model_means() {
        let mut rng = Rng::seed_from(0);
        let b = 3;
        let logits: Vec<_> = (0..b).map(|_| rng.randn([4, 5])).collect();
        let targets: Vec<Vec<usize>> = (0..b)
            .map(|_| (0..4).map(|_| rng.below(5)).collect())
            .collect();
        // Serial per-model losses.
        let mut serial_sum = 0.0;
        for i in 0..b {
            let tape = Tape::new();
            let l = tape.leaf(logits[i].clone()).cross_entropy(&targets[i]);
            serial_sum += l.item();
        }
        // Fused loss.
        let tape = Tape::new();
        let fused_logits = tape.leaf(stack_array(&logits).unwrap());
        let fused_targets = stack_targets(&targets).unwrap();
        let fl = fused_cross_entropy(&fused_logits, &fused_targets, Reduction::Mean);
        assert!(
            (fl.item() - serial_sum).abs() < 1e-4,
            "{} vs {serial_sum}",
            fl.item()
        );
    }

    #[test]
    fn fused_ce_gradients_match_serial_exactly() {
        // The core §3.2 claim: per-model gradients from the scaled fused
        // loss equal the gradients of independent training.
        let mut rng = Rng::seed_from(1);
        let b = 4;
        let weights: Vec<Parameter> = (0..b)
            .map(|i| Parameter::new(rng.randn([6, 3]), format!("w{i}")))
            .collect();
        let x: Vec<_> = (0..b).map(|_| rng.randn([5, 6])).collect();
        let targets: Vec<Vec<usize>> = (0..b)
            .map(|_| (0..5).map(|_| rng.below(3)).collect())
            .collect();

        // Serial gradients.
        let mut serial_grads = Vec::new();
        for i in 0..b {
            weights[i].zero_grad();
            let tape = Tape::new();
            let logits = tape.leaf(x[i].clone()).matmul(&tape.param(&weights[i]));
            logits.cross_entropy(&targets[i]).backward();
            serial_grads.push(weights[i].grad_cloned());
        }

        // Fused: stack weights into [B, 6, 3] and inputs into [B, 5, 6].
        let stacked_w = {
            let ws: Vec<_> = weights
                .iter()
                .map(|w| w.value_cloned().unsqueeze(0))
                .collect();
            Parameter::new(
                hfta_tensor::Tensor::concat(&ws.iter().collect::<Vec<_>>(), 0),
                "fused_w",
            )
        };
        let tape = Tape::new();
        let fx = tape.leaf(stack_array(&x).unwrap());
        let logits = fx.bmm(&tape.param(&stacked_w));
        let fused_targets = stack_targets(&targets).unwrap();
        fused_cross_entropy(&logits, &fused_targets, Reduction::Mean).backward();
        let fused_grad = stacked_w.grad_cloned();
        for (i, expected) in serial_grads.iter().enumerate() {
            let gi = fused_grad.narrow(0, i, 1).squeeze(0);
            assert!(
                gi.allclose(expected, 1e-5),
                "model {i}: max diff {}",
                gi.max_abs_diff(expected)
            );
        }
    }

    #[test]
    fn without_scaling_gradients_shrink_by_b() {
        // The ablation the paper's derivation implies: dropping the xB
        // scale divides every gradient by B.
        let mut rng = Rng::seed_from(2);
        let b = 5;
        let w = Parameter::new(rng.randn([b, 4, 2]), "w");
        let x = rng.randn([b, 3, 4]);
        let t: Vec<usize> = (0..b * 3).map(|_| rng.below(2)).collect();

        let tape = Tape::new();
        let logits = tape.leaf(x.clone()).bmm(&tape.param(&w));
        fused_cross_entropy(&logits, &t, Reduction::Mean).backward();
        let scaled = w.grad_cloned();

        w.zero_grad();
        let tape = Tape::new();
        let logits = tape.leaf(x).bmm(&tape.param(&w));
        // Unscaled fused mean loss.
        logits.reshape(&[b * 3, 2]).cross_entropy(&t).backward();
        let unscaled = w.grad_cloned();

        assert!(scaled.allclose(&unscaled.mul_scalar(b as f32), 1e-5));
    }

    #[test]
    fn sum_reduction_needs_no_scale() {
        assert_eq!(Reduction::Sum.fused_scale(32), 1.0);
    }

    #[test]
    fn fused_nll_matches_ce() {
        let mut rng = Rng::seed_from(3);
        let logits = rng.randn([2, 3, 4]);
        let t: Vec<usize> = (0..6).map(|_| rng.below(4)).collect();
        let tape = Tape::new();
        let lv = tape.leaf(logits.clone());
        let ce = fused_cross_entropy(&lv, &t, Reduction::Mean);
        let nll = fused_nll_loss(&lv.log_softmax(2), &t, Reduction::Mean);
        assert!((ce.item() - nll.item()).abs() < 1e-5);
    }

    #[test]
    fn fused_bce_scales() {
        let tape = Tape::new();
        let x = tape.leaf(hfta_tensor::Tensor::zeros([4, 2]));
        let t = hfta_tensor::Tensor::ones([4, 2]);
        let l1 = fused_bce_with_logits(&x, &t, 1, Reduction::Mean);
        let l4 = fused_bce_with_logits(&x, &t, 4, Reduction::Mean);
        assert!((l4.item() - 4.0 * l1.item()).abs() < 1e-6);
    }
}
