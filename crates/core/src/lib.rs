//! # hfta-core
//!
//! **Horizontally Fused Training Array (HFTA)** — a Rust reproduction of
//! the MLSys 2021 paper's DL-framework extension library.
//!
//! HFTA targets repetitive single-accelerator training jobs (hyper-parameter
//! tuning, seed sweeps): the sibling jobs' models have the *same operator
//! types with the same shapes*, so their operators can be horizontally fused
//! into single, mathematically equivalent, already-well-optimized operators
//! (grouped convolutions, `baddbmm`, widened batch-norms — [`rules`],
//! Table 6 of the paper) and the `B` models trained simultaneously on one
//! shared accelerator.
//!
//! * [`rules`] — the fusion rule table and the fusability checker;
//! * [`ops`] — fused operator modules with `new` / `from_models` / `unfuse`;
//! * [`mod@format`] — the fused data layouts and differentiable converters;
//! * [`loss`] — fused losses with the §3.2 gradient-exact scaling rule;
//! * [`optim`] — fused optimizers/schedulers with per-model hyper-parameters;
//! * [`mod@array`] — the [`array::ModelArray`] front door and sweep helpers;
//! * [`scope`] — hfta-scope: per-model health extraction, divergence
//!   sentinels, and quarantine ([`scope::ScopeMonitor`]);
//! * [`surgery`] — lane surgery: extract a model's parameter and
//!   optimizer-state lanes and splice lanes into another array,
//!   bit-identically (the mechanism behind `hfta-sched`'s re-packing);
//! * [`snapshot`] — versioned on-disk lane snapshots (params + optimizer
//!   state + step counter), the persistence layer behind `hfta-serve`'s
//!   crash-safe checkpoint/restore;
//! * [`tuner`] — a hyper-parameter tuning driver that packs sweep
//!   candidates into fused arrays (the paper's §6 integration target).
//!
//! # Example — fuse a hyper-parameter sweep
//!
//! ```
//! use hfta_core::{
//!     array::ModelArray,
//!     loss::{fused_cross_entropy, Reduction},
//!     ops::FusedLinear,
//!     optim::{FusedAdam, FusedOptimizer, PerModel},
//! };
//! use hfta_nn::layers::LinearCfg;
//! use hfta_tensor::{Rng, Tensor};
//!
//! let mut rng = Rng::seed_from(0);
//! // Three jobs differing only in learning rate:
//! let lrs = PerModel::new(vec![0.1, 0.01, 0.001]);
//! let array = ModelArray::new(FusedLinear::new(3, LinearCfg::new(8, 4), &mut rng));
//! let mut opt = FusedAdam::new(array.fused_parameters(), lrs).unwrap();
//!
//! let inputs: Vec<Tensor> = (0..3).map(|_| rng.randn([16, 8])).collect();
//! let targets: Vec<usize> = (0..3 * 16).map(|_| rng.below(4)).collect();
//!
//! opt.zero_grad();
//! let (_tape, logits) = array.forward_array(&inputs).unwrap();
//! let loss = fused_cross_entropy(&logits, &targets, Reduction::Mean);
//! loss.backward();
//! opt.step();
//! ```

#![warn(missing_docs)]

pub mod array;
pub mod error;
pub mod format;
pub mod loss;
pub mod ops;
pub mod optim;
pub mod planned;
pub mod rules;
pub mod scope;
pub mod snapshot;
pub mod surgery;
pub mod tuner;

pub use error::{FusionError, Result};
