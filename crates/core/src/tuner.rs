//! A hyper-parameter tuning driver built on HFTA arrays — the paper's
//! stated integration target ("integrating HFTA into existing
//! hyper-parameter tuning and model architecture search frameworks", §6).
//!
//! The tuner owns the part such frameworks usually leave to the cluster
//! scheduler: it takes the candidate configurations of a sweep, partitions
//! them into *fusable groups* (only same-architecture candidates fuse —
//! the paper's Observation 1), packs each group into arrays of at most
//! `array_width` models, and hands each array to a user-supplied trainer.

use crate::error::{FusionError, Result};
use crate::scope::{ScopeMonitor, SentinelCfg};
use hfta_telemetry::Profiler;
use hfta_tensor::Rng;

/// One evaluated trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial<C> {
    /// The candidate configuration.
    pub config: C,
    /// The score the trainer reported (higher is better).
    pub score: f32,
}

/// Outcome of a sweep: every trial, plus bookkeeping on how the work was
/// packed.
#[derive(Debug, Clone)]
pub struct SweepReport<C> {
    /// All trials, sorted best-first.
    pub trials: Vec<Trial<C>>,
    /// Number of fused arrays that were trained.
    pub arrays_trained: usize,
    /// Number of accelerator "slots" a serial launcher would have used
    /// (one per candidate) — `candidates / arrays_trained` is the device
    /// saving.
    pub serial_jobs_replaced: usize,
}

impl<C> SweepReport<C> {
    /// The winning trial.
    ///
    /// # Panics
    ///
    /// Panics if the sweep was empty.
    pub fn best(&self) -> &Trial<C> {
        self.trials.first().expect("non-empty sweep")
    }
}

/// What one trained array reports back to the shared sweep driver: a
/// score per lane, plus which lanes a sentinel killed (empty = none).
struct ChunkOutcome {
    scores: Vec<f32>,
    killed: Vec<bool>,
}

/// The chunk/train/metrics loop shared by [`sweep`] and
/// [`sweep_monitored`]: validates the inputs, packs candidates into
/// arrays of at most `array_width`, wraps each `run_chunk` call in a
/// profiler span with the tuner counters, validates the returned score
/// vector, and ranks trials healthy-best-first with killed trials last.
fn drive_sweep<C: Clone>(
    candidates: Vec<C>,
    array_width: usize,
    mut run_chunk: impl FnMut(&[C]) -> ChunkOutcome,
) -> Result<MonitoredSweepReport<C>> {
    if array_width == 0 {
        return Err(FusionError::InvalidWidth);
    }
    if candidates.is_empty() {
        return Err(FusionError::Empty);
    }
    let profiler = Profiler::current();
    let lane = profiler.as_ref().map(|p| p.lane("tuner", "arrays"));
    let mut trials = Vec::with_capacity(candidates.len());
    let mut arrays = 0;
    let mut killed = 0;
    let total = candidates.len();
    for chunk in candidates.chunks(array_width) {
        let outcome = {
            let _span = profiler
                .as_ref()
                .map(|p| p.span(lane.unwrap(), format!("array[B={}]", chunk.len())));
            run_chunk(chunk)
        };
        if outcome.scores.len() != chunk.len() {
            return Err(FusionError::HyperParamLength {
                expected: chunk.len(),
                found: outcome.scores.len(),
            });
        }
        arrays += 1;
        if let Some(p) = &profiler {
            p.incr("tuner.arrays", 1.0);
            p.incr("tuner.trials", chunk.len() as f64);
            p.set_gauge("tuner.fused_width", chunk.len() as f64);
        }
        for (i, (config, score)) in chunk.iter().cloned().zip(outcome.scores).enumerate() {
            let dead = outcome.killed[i];
            if dead {
                killed += 1;
                if let Some(p) = &profiler {
                    p.incr("tuner.killed", 1.0);
                }
            } else if let Some(p) = &profiler {
                p.observe("tuner.score", score as f64);
            }
            trials.push(MonitoredTrial {
                config,
                score,
                killed: dead,
            });
        }
    }
    // Healthy trials best-first; killed trials sink to the bottom.
    trials.sort_by(|a, b| {
        a.killed
            .cmp(&b.killed)
            .then_with(|| b.score.total_cmp(&a.score))
    });
    Ok(MonitoredSweepReport {
        trials,
        arrays_trained: arrays,
        serial_jobs_replaced: total,
        killed,
    })
}

/// Runs a sweep: packs `candidates` into arrays of at most `array_width`
/// and calls `train_array` once per array. The trainer receives the
/// configs of one array and must return one score per config (higher is
/// better) — typically negative validation loss.
///
/// # Errors
///
/// Returns [`FusionError`] if `array_width == 0`, `candidates` is empty,
/// or the trainer returns the wrong number of scores.
pub fn sweep<C: Clone>(
    candidates: Vec<C>,
    array_width: usize,
    mut train_array: impl FnMut(&[C]) -> Vec<f32>,
) -> Result<SweepReport<C>> {
    let report = drive_sweep(candidates, array_width, |chunk| ChunkOutcome {
        scores: train_array(chunk),
        killed: vec![false; chunk.len()],
    })?;
    Ok(SweepReport {
        trials: report
            .trials
            .into_iter()
            .map(|t| Trial {
                config: t.config,
                score: t.score,
            })
            .collect(),
        arrays_trained: report.arrays_trained,
        serial_jobs_replaced: report.serial_jobs_replaced,
    })
}

/// One evaluated trial of a monitored sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitoredTrial<C> {
    /// The candidate configuration.
    pub config: C,
    /// The score the trainer reported (higher is better).
    pub score: f32,
    /// Whether a divergence sentinel killed this trial — its model was
    /// quarantined (or flagged) mid-training and its score is not
    /// comparable to the healthy trials'.
    pub killed: bool,
}

/// Outcome of a monitored sweep.
#[derive(Debug, Clone)]
pub struct MonitoredSweepReport<C> {
    /// All trials: healthy ones sorted best-first, killed ones after.
    pub trials: Vec<MonitoredTrial<C>>,
    /// Number of fused arrays that were trained.
    pub arrays_trained: usize,
    /// Serial accelerator slots replaced (one per candidate).
    pub serial_jobs_replaced: usize,
    /// Number of trials a sentinel killed.
    pub killed: usize,
}

impl<C> MonitoredSweepReport<C> {
    /// The winning healthy trial, if any survived.
    pub fn best(&self) -> Option<&MonitoredTrial<C>> {
        self.trials.iter().find(|t| !t.killed)
    }
}

/// [`sweep`] with hfta-scope divergence monitoring: the tuner hands each
/// array's trainer a [`ScopeMonitor`] (width = the array's `B`, configured
/// with `cfg`); the trainer drives it per step
/// ([`ScopeMonitor::after_backward`] / [`ScopeMonitor::after_step`]),
/// which quarantines diverging models in place — the early-kill the
/// paper's tuning integration (§6) needs, without aborting the other
/// `B − 1` jobs in the fused array. Trials whose model fired a sentinel
/// come back marked `killed` and rank below every healthy trial.
///
/// # Errors
///
/// Returns [`FusionError`] on the same conditions as [`sweep`].
pub fn sweep_monitored<C: Clone>(
    candidates: Vec<C>,
    array_width: usize,
    cfg: SentinelCfg,
    mut train_array: impl FnMut(&[C], &mut ScopeMonitor) -> Vec<f32>,
) -> Result<MonitoredSweepReport<C>> {
    drive_sweep(candidates, array_width, |chunk| {
        let mut monitor = ScopeMonitor::new(chunk.len(), cfg);
        let scores = train_array(chunk, &mut monitor);
        ChunkOutcome {
            scores,
            killed: monitor.fired_models().to_vec(),
        }
    })
}

/// Partitions candidates into fusable groups by an architecture key: two
/// candidates fuse only if their models have the same operator types and
/// shapes (paper Observation 1), which the caller encodes in `shape_key`
/// (e.g. the layer-width choice of an architecture search).
pub fn partition_fusable<C, K: Eq + std::hash::Hash>(
    candidates: Vec<C>,
    mut shape_key: impl FnMut(&C) -> K,
) -> Vec<Vec<C>> {
    let mut groups: Vec<(K, Vec<C>)> = Vec::new();
    for c in candidates {
        let k = shape_key(&c);
        match groups.iter_mut().find(|(gk, _)| *gk == k) {
            Some((_, g)) => g.push(c),
            None => groups.push((k, vec![c])),
        }
    }
    groups.into_iter().map(|(_, g)| g).collect()
}

/// Samples `n` random configurations by drawing each axis log-uniformly
/// from its `(low, high)` range — the random-search baseline of
/// Bergstra & Bengio (2012), which the paper cites as the standard tuning
/// practice.
///
/// # Panics
///
/// Panics if any range is empty or non-positive (log-uniform domain).
pub fn random_search(axes: &[(&str, f32, f32)], n: usize, seed: u64) -> Vec<Vec<(String, f32)>> {
    let mut rng = Rng::seed_from(seed);
    for (name, lo, hi) in axes {
        assert!(
            *lo > 0.0 && hi > lo,
            "axis {name} needs a positive, non-empty range for log-uniform sampling"
        );
    }
    (0..n)
        .map(|_| {
            axes.iter()
                .map(|(name, lo, hi)| {
                    let u = rng.uniform(lo.ln(), hi.ln());
                    (name.to_string(), u.exp())
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_packs_and_ranks() {
        // Score = -(lr - 0.3)^2: the candidate nearest 0.3 must win.
        let lrs = vec![0.1f32, 0.2, 0.31, 0.5, 0.9];
        let report = sweep(lrs.clone(), 2, |chunk| {
            chunk.iter().map(|lr| -(lr - 0.3) * (lr - 0.3)).collect()
        })
        .unwrap();
        assert_eq!(report.trials.len(), 5);
        assert_eq!(report.arrays_trained, 3); // ceil(5 / 2)
        assert_eq!(report.serial_jobs_replaced, 5);
        assert!((report.best().config - 0.31).abs() < 1e-6);
        // Sorted best-first.
        assert!(report.trials.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn sweep_validates_inputs() {
        assert!(matches!(
            sweep(Vec::<f32>::new(), 2, |_| vec![]),
            Err(FusionError::Empty)
        ));
        assert!(matches!(
            sweep(vec![1.0f32], 0, |_| vec![0.0]),
            Err(FusionError::InvalidWidth)
        ));
        assert!(matches!(
            sweep(vec![1.0f32, 2.0], 4, |_| vec![0.0]),
            Err(FusionError::HyperParamLength { .. })
        ));
    }

    #[test]
    fn sweep_records_tuner_metrics_when_profiled() {
        let p = Profiler::new("tuner-test");
        let _g = p.install();
        let report = sweep(vec![0.1f32, 0.2, 0.3], 2, |chunk| {
            chunk.iter().map(|x| -x).collect()
        })
        .unwrap();
        assert_eq!(report.arrays_trained, 2);
        let r = p.report();
        let exp = &r.experiments[0];
        let counter = |name: &str| exp.counters.iter().find(|c| c.name == name).unwrap().value;
        assert_eq!(counter("tuner.arrays"), 2.0);
        assert_eq!(counter("tuner.trials"), 3.0);
        assert_eq!(exp.histograms[0].count, 3);
        // One B/E span pair per array.
        assert_eq!(p.event_count(), 4);
    }

    #[test]
    fn monitored_sweep_kills_poisoned_trials() {
        use crate::ops::FusedParameter;
        use crate::optim::{FusedOptimizer, FusedSgd, PerModel};
        use crate::scope::poison_model_lane;
        use hfta_nn::Parameter;
        use hfta_tensor::Tensor;

        // Five LR candidates, arrays of width 2. The trainer runs a toy
        // quadratic descent; any candidate with lr > 1 is poisoned at step
        // 1 to simulate divergence.
        let lrs = vec![0.1f32, 0.2, 5.0, 0.3, 0.05];
        let report = sweep_monitored(lrs, 2, SentinelCfg::default(), |chunk, monitor| {
            let b = chunk.len();
            let fused = FusedParameter {
                param: Parameter::new(Tensor::ones([b]), "w"),
                b,
            };
            let params = vec![fused.clone()];
            let mut opt =
                FusedSgd::new(params.clone(), PerModel::new(chunk.to_vec()), 0.0).unwrap();
            for step in 0..3u64 {
                opt.zero_grad();
                // grad of 0.5 w^2 is w.
                fused.param.accumulate_grad(&fused.param.value_cloned());
                if step == 1 {
                    for (i, &lr) in chunk.iter().enumerate() {
                        if lr > 1.0 {
                            poison_model_lane(&params, i);
                        }
                    }
                }
                let losses: Vec<f32> = (0..b)
                    .map(|i| {
                        let w = fused.param.value_cloned().to_vec()[i];
                        0.5 * w * w
                    })
                    .collect();
                monitor.after_backward(step, &losses, &params, &mut opt);
                opt.step();
                monitor.after_step(step, &params);
            }
            // Score = -final loss.
            fused
                .param
                .value_cloned()
                .to_vec()
                .iter()
                .map(|w| -0.5 * w * w)
                .collect()
        })
        .unwrap();
        assert_eq!(report.trials.len(), 5);
        assert_eq!(report.arrays_trained, 3);
        assert_eq!(report.killed, 1);
        let dead: Vec<f32> = report
            .trials
            .iter()
            .filter(|t| t.killed)
            .map(|t| t.config)
            .collect();
        assert_eq!(dead, vec![5.0]);
        // Killed trials rank last; the best healthy trial is the largest
        // surviving LR (fastest descent on the quadratic).
        assert!(report.trials.last().unwrap().killed);
        assert!((report.best().unwrap().config - 0.3).abs() < 1e-6);
    }

    #[test]
    fn partition_groups_same_architectures() {
        // (width, lr) candidates: only same-width models fuse.
        let cands = vec![
            (64, 0.1f32),
            (128, 0.1),
            (64, 0.01),
            (128, 0.01),
            (64, 0.001),
        ];
        let groups = partition_fusable(cands, |c| c.0);
        assert_eq!(groups.len(), 2);
        let g64 = groups.iter().find(|g| g[0].0 == 64).unwrap();
        assert_eq!(g64.len(), 3);
        let g128 = groups.iter().find(|g| g[0].0 == 128).unwrap();
        assert_eq!(g128.len(), 2);
    }

    #[test]
    fn random_search_respects_ranges_and_is_deterministic() {
        let axes = [("lr", 1e-4f32, 1e-1), ("wd", 1e-6f32, 1e-3)];
        let a = random_search(&axes, 16, 7);
        let b = random_search(&axes, 16, 7);
        assert_eq!(a, b);
        for cfg in &a {
            assert_eq!(cfg.len(), 2);
            let lr = cfg[0].1;
            assert!((1e-4..=1e-1).contains(&lr), "lr {lr}");
        }
        // Log-uniform: a decent share of samples lands below the geometric
        // midpoint (~3e-3), which linear sampling would almost never do.
        let low = a.iter().filter(|c| c[0].1 < 3.2e-3).count();
        assert!(low >= 4, "only {low} low samples");
    }

    #[test]
    #[should_panic(expected = "log-uniform")]
    fn random_search_rejects_bad_ranges() {
        let _ = random_search(&[("lr", 0.0, 1.0)], 1, 0);
    }
}
