//! The hfta-scope quarantine acceptance test: NaN-seeding one model of a
//! B-way array and quarantining it must leave the surviving B − 1 models
//! **bit-identical** to a (B − 1)-way run that never contained the bad
//! model.
//!
//! This is a stronger claim than the Figure-3 fused-vs-serial equivalence
//! (which holds to fp32 round-off): here both runs are fused, every fused
//! op computes each lane independently (per-batch `baddbmm`, per-lane
//! elementwise optimizer math, the §3.2-scaled loss whose per-model
//! gradients do not depend on B), and the kernels are bit-deterministic —
//! so the comparison is exact `f32` equality, not `allclose`.

use hfta_core::array::ModelArray;
use hfta_core::loss::{fused_cross_entropy, Reduction};
use hfta_core::ops::{FusedLinear, FusedParameter};
use hfta_core::optim::{FusedAdam, FusedOptimizer, FusedSgd, PerModel};
use hfta_core::scope::{per_model_ce_losses, poison_model_lane, ScopeMonitor, SentinelCfg};
use hfta_core::surgery::{extract_lane, splice_lanes, LaneState};
use hfta_nn::layers::LinearCfg;
use hfta_telemetry::SentinelKind;
use hfta_tensor::{Rng, Tensor};
use proptest::prelude::*;

const STEPS: usize = 5;
const POISON_STEP: u64 = 2;
const N: usize = 5;
const F_IN: usize = 6;
const CLASSES: usize = 4;

struct RunResult {
    /// Final fused weight storage, model-major.
    weight: Vec<f32>,
    /// Final fused bias storage, model-major.
    bias: Vec<f32>,
    /// `losses[t][m]` = model `m`'s own loss at step `t`.
    losses: Vec<Vec<f32>>,
    /// Fused weight storage snapshot after each step.
    weight_history: Vec<Vec<f32>>,
    monitor: ScopeMonitor,
}

/// Trains a fused array on fixed per-model batches; when `poison` is set,
/// NaN-seeds that model's gradient lane after `backward()` at step
/// `POISON_STEP` (the sentinel then quarantines it).
fn train(
    model: FusedLinear,
    lrs: &[f32],
    batches: &[(Vec<Tensor>, Vec<Vec<usize>>)],
    poison: Option<usize>,
) -> RunResult {
    let b = lrs.len();
    let array = ModelArray::new(model);
    let params = array.fused_parameters();
    let mut opt = FusedSgd::new(params.clone(), PerModel::new(lrs.to_vec()), 0.9).unwrap();
    let mut monitor = ScopeMonitor::new(b, SentinelCfg::default());
    let mut losses = Vec::with_capacity(STEPS);
    let mut weight_history = Vec::with_capacity(STEPS);
    for (step, (xs, ys)) in batches.iter().enumerate() {
        opt.zero_grad();
        let (_tape, logits) = array.forward_array(xs).unwrap();
        let targets: Vec<usize> = ys.iter().flatten().copied().collect();
        losses.push(per_model_ce_losses(&logits, &targets));
        let loss = fused_cross_entropy(&logits, &targets, Reduction::Mean);
        loss.backward();
        if step as u64 == POISON_STEP {
            if let Some(victim) = poison {
                poison_model_lane(&params, victim);
            }
        }
        monitor.after_backward(step as u64, losses.last().unwrap(), &params, &mut opt);
        opt.step();
        monitor.after_step(step as u64, &params);
        weight_history.push(array.module().weight.value_cloned().to_vec());
    }
    let module = array.into_module();
    RunResult {
        weight: module.weight.value_cloned().to_vec(),
        bias: module.bias.as_ref().unwrap().value_cloned().to_vec(),
        losses,
        weight_history,
        monitor,
    }
}

#[test]
fn quarantined_survivors_match_a_smaller_array_bitwise() {
    let mut rng = Rng::seed_from(0xC0FFEE);
    // Build the 3-way array, then a 2-way array from the *same* first two
    // per-model initializations.
    let fused3 = FusedLinear::new(3, LinearCfg::new(F_IN, CLASSES), &mut rng);
    let members = fused3.unfuse();
    let fused2 = FusedLinear::from_models(&members[..2]).unwrap();

    // Fixed per-model data; the 2-way run sees models 0 and 1's batches.
    let batches3: Vec<(Vec<Tensor>, Vec<Vec<usize>>)> = (0..STEPS)
        .map(|_| {
            let xs: Vec<Tensor> = (0..3).map(|_| rng.randn([N, F_IN])).collect();
            let ys: Vec<Vec<usize>> = (0..3)
                .map(|_| (0..N).map(|_| rng.below(CLASSES)).collect())
                .collect();
            (xs, ys)
        })
        .collect();
    let batches2: Vec<(Vec<Tensor>, Vec<Vec<usize>>)> = batches3
        .iter()
        .map(|(xs, ys)| (xs[..2].to_vec(), ys[..2].to_vec()))
        .collect();

    let lrs3 = [0.2f32, 0.05, 0.1];
    let with_victim = train(fused3, &lrs3, &batches3, Some(2));
    let without_victim = train(fused2, &lrs3[..2], &batches2, None);

    // The sentinel fired exactly once, on model 2, and quarantined it.
    let events = with_victim.monitor.events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].model, 2);
    assert_eq!(events[0].step, POISON_STEP);
    assert_eq!(events[0].kind, SentinelKind::NonFiniteGrad);
    assert!(events[0].quarantined);
    assert!(without_victim.monitor.events().is_empty());

    // Survivors' parameters are bit-identical to the 2-way run: exact f32
    // equality over each surviving lane, not allclose.
    let w_lane = with_victim.weight.len() / 3;
    assert_eq!(
        &with_victim.weight[..2 * w_lane],
        &without_victim.weight[..],
        "surviving weight lanes must match the (B-1)-way run bit-for-bit"
    );
    let b_lane = with_victim.bias.len() / 3;
    assert_eq!(
        &with_victim.bias[..2 * b_lane],
        &without_victim.bias[..],
        "surviving bias lanes must match the (B-1)-way run bit-for-bit"
    );

    // Per-model loss curves of the survivors are bit-identical too.
    for (t, (l3, l2)) in with_victim
        .losses
        .iter()
        .zip(&without_victim.losses)
        .enumerate()
    {
        assert_eq!(&l3[..2], &l2[..], "step {t} survivor losses differ");
    }

    // The quarantined model froze: its lane never went NaN (only its
    // gradient did), and from the step before the quarantine onward its
    // weights never move again (the quarantine masked that step's update
    // and every later one).
    assert!(with_victim.weight[2 * w_lane..]
        .iter()
        .all(|v| v.is_finite()));
    let frozen = &with_victim.weight_history[POISON_STEP as usize - 1][2 * w_lane..];
    for t in POISON_STEP as usize..STEPS {
        assert_eq!(
            &with_victim.weight_history[t][2 * w_lane..],
            frozen,
            "victim lane moved at step {t} despite quarantine"
        );
    }
    // ...whereas it was still training before the fault.
    assert_ne!(&with_victim.weight_history[0][2 * w_lane..], frozen);
}

#[test]
fn unquarantined_nan_poisons_its_own_lane_only() {
    // Without quarantine the NaN gradient wrecks the victim's parameters at
    // the next step — but still never crosses into the survivors' lanes.
    let mut rng = Rng::seed_from(42);
    let fused = FusedLinear::new(2, LinearCfg::new(F_IN, CLASSES), &mut rng);
    let array = ModelArray::new(fused);
    let params = array.fused_parameters();
    let mut opt = FusedSgd::new(params.clone(), PerModel::uniform(2, 0.1), 0.9).unwrap();
    let xs: Vec<Tensor> = (0..2).map(|_| rng.randn([N, F_IN])).collect();
    let targets: Vec<usize> = (0..2 * N).map(|_| rng.below(CLASSES)).collect();
    for _ in 0..2 {
        opt.zero_grad();
        let (_tape, logits) = array.forward_array(&xs).unwrap();
        fused_cross_entropy(&logits, &targets, Reduction::Mean).backward();
        poison_model_lane(&params, 1);
        opt.step(); // no monitor: the NaN reaches the victim's parameters
    }
    let w = array.module().weight.value_cloned().to_vec();
    let lane = w.len() / 2;
    assert!(w[..lane].iter().all(|v| v.is_finite()), "survivor poisoned");
    assert!(w[lane..].iter().any(|v| v.is_nan()), "victim should be NaN");
}

// ---------------------------------------------------------------------------
// Lane-surgery property: pack → train → extract → splice → continue is
// invisible to the survivors.
// ---------------------------------------------------------------------------

/// The per-(model, step) batch. Keyed by the model's *identity*, never by
/// array width or lane position — the data-stream contract the scheduler's
/// lane surgery relies on.
fn surgery_batch(seed: u64, id: usize, step: usize) -> (Tensor, Vec<usize>) {
    let mut h = seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h = h.wrapping_add((step as u64).wrapping_mul(0xFF51_AFD7_ED55_8CCD));
    let mut rng = Rng::seed_from(h);
    let x = rng.randn([N, F_IN]);
    let y = (0..N).map(|_| rng.below(CLASSES)).collect();
    (x, y)
}

fn make_opt(adam: bool, params: Vec<FusedParameter>, lrs: Vec<f32>) -> Box<dyn FusedOptimizer> {
    if adam {
        Box::new(FusedAdam::new(params, PerModel::new(lrs)).unwrap())
    } else {
        Box::new(FusedSgd::new(params, PerModel::new(lrs), 0.9).unwrap())
    }
}

/// Trains `array` for global steps `steps`, lane `j` consuming model
/// `ids[j]`'s data stream.
fn train_ids(
    array: &ModelArray<FusedLinear>,
    opt: &mut dyn FusedOptimizer,
    seed: u64,
    ids: &[usize],
    steps: std::ops::Range<usize>,
) {
    for step in steps {
        opt.zero_grad();
        let mut xs = Vec::with_capacity(ids.len());
        let mut targets = Vec::with_capacity(ids.len() * N);
        for &id in ids {
            let (x, y) = surgery_batch(seed, id, step);
            xs.push(x);
            targets.extend(y);
        }
        let (_tape, logits) = array.forward_array(&xs).unwrap();
        fused_cross_entropy(&logits, &targets, Reduction::Mean).backward();
        opt.step();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Over random survivor subsets, split points, and both optimizer
    /// families: train a 3-way array, extract the survivors, splice them
    /// into a fresh width-|survivors| array, train on — every survivor
    /// must end bit-identical (parameters *and* optimizer-state lanes) to
    /// an uninterrupted full-width run. Adam additionally checks that
    /// [`splice_lanes`] restores the shared step counter its bias
    /// correction depends on.
    #[test]
    fn lane_surgery_resumes_survivors_bitwise(
        seed in 0u64..1000,
        n1 in 1usize..4,
        n2 in 1usize..4,
        mask in 1usize..8,
        adam in 0usize..2,
    ) {
        let adam = adam == 1;
        let lrs = [0.2f32, 0.05, 0.1];
        let survivors: Vec<usize> = (0..3).filter(|i| mask & (1 << i) != 0).collect();

        let mut rng = Rng::seed_from(seed);
        let cfg = LinearCfg::new(F_IN, CLASSES);
        let members = FusedLinear::new(3, cfg, &mut rng).unfuse();

        // Uninterrupted reference: width 3 for n1 + n2 steps.
        let reference = ModelArray::new(FusedLinear::from_models(&members).unwrap());
        let ref_params = reference.fused_parameters();
        let mut ref_opt = make_opt(adam, ref_params.clone(), lrs.to_vec());
        train_ids(&reference, ref_opt.as_mut(), seed, &[0, 1, 2], 0..n1 + n2);

        // Subject: the same width-3 array for the first n1 steps...
        let subject = ModelArray::new(FusedLinear::from_models(&members).unwrap());
        let sub_params = subject.fused_parameters();
        let mut sub_opt = make_opt(adam, sub_params.clone(), lrs.to_vec());
        train_ids(&subject, sub_opt.as_mut(), seed, &[0, 1, 2], 0..n1);

        // ...then surgery: extract the survivors and splice them into a
        // fresh narrow array (whose own random init and zeroed optimizer
        // state are fully overwritten)...
        let lanes: Vec<LaneState> = survivors
            .iter()
            .map(|&i| extract_lane(&sub_params, sub_opt.as_ref(), i))
            .collect();
        let packed = ModelArray::new(FusedLinear::new(survivors.len(), cfg, &mut rng));
        let packed_params = packed.fused_parameters();
        let packed_lrs: Vec<f32> = survivors.iter().map(|&i| lrs[i]).collect();
        let mut packed_opt = make_opt(adam, packed_params.clone(), packed_lrs);
        splice_lanes(&lanes, &packed_params, packed_opt.as_mut());

        // ...and train the remaining n2 steps on the survivors' streams.
        train_ids(&packed, packed_opt.as_mut(), seed, &survivors, n1..n1 + n2);

        for (lane, &id) in survivors.iter().enumerate() {
            let got = extract_lane(&packed_params, packed_opt.as_ref(), lane);
            let want = extract_lane(&ref_params, ref_opt.as_ref(), id);
            prop_assert_eq!(got.step_count, want.step_count);
            for (g, w) in got.params.iter().zip(&want.params) {
                prop_assert!(g.to_vec() == w.to_vec(), "model {} params diverged", id);
            }
            for (gs, ws) in got.opt_state.iter().zip(&want.opt_state) {
                for (g, w) in gs.iter().zip(ws) {
                    prop_assert!(
                        g.to_vec() == w.to_vec(),
                        "model {} optimizer state diverged",
                        id
                    );
                }
            }
        }
    }
}
