//! Property-based tests of the HFTA fusion invariants: every Table 6 rule
//! is a mathematical identity over random shapes, weights and inputs;
//! fuse → unfuse round-trips; the loss-scaling rule reconstructs serial
//! gradients; fused optimizers match serial ones.

use hfta_core::format::{stack_array, stack_conv, unstack_array, unstack_conv};
use hfta_core::loss::{fused_cross_entropy, Reduction};
use hfta_core::ops::{FusedBatchNorm, FusedConv1d, FusedConv2d, FusedLinear, FusedParameter};
use hfta_core::optim::{FusedAdam, FusedOptimizer, PerModel};
use hfta_core::rules::{fuse, OpSpec};
use hfta_nn::layers::{BatchNorm, Conv1d, Conv2d, Conv2dCfg, Linear, LinearCfg};
use hfta_nn::{Adam, Module, Optimizer, Parameter, Tape};
use hfta_tensor::{Rng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fused_conv2d_identity(
        seed in 0u64..1000,
        b in 1usize..4,
        cin in 1usize..3,
        cout in 1usize..4,
        kernel in 1usize..4,
    ) {
        let mut rng = Rng::seed_from(seed);
        let cfg = Conv2dCfg::new(cin, cout, kernel).padding(kernel / 2);
        let models: Vec<Conv2d> = (0..b).map(|_| Conv2d::new(cfg, &mut rng.split())).collect();
        let fused = FusedConv2d::from_models(&models).unwrap();
        let inputs: Vec<Tensor> = (0..b).map(|_| rng.randn([2, cin, 5, 5])).collect();
        let tape = Tape::new();
        let fx = tape.leaf(stack_conv(&inputs).unwrap());
        let outs = unstack_conv(&fused.forward(&fx).value(), b);
        for (i, m) in models.iter().enumerate() {
            let tape = Tape::new();
            let y = m.forward(&tape.leaf(inputs[i].clone())).value();
            prop_assert!(outs[i].allclose(&y, 1e-3), "model {i}");
        }
    }

    #[test]
    fn fused_conv1d_identity(seed in 0u64..1000, b in 1usize..5, cout in 1usize..5) {
        let mut rng = Rng::seed_from(seed);
        let models: Vec<Conv1d> = (0..b)
            .map(|_| Conv1d::new(3, cout, 1, 1, 0, 1, &mut rng.split()))
            .collect();
        let fused = FusedConv1d::from_models(&models).unwrap();
        let inputs: Vec<Tensor> = (0..b).map(|_| rng.randn([2, 3, 10])).collect();
        let tape = Tape::new();
        let fx = tape.leaf(stack_conv(&inputs).unwrap());
        let outs = unstack_conv(&fused.forward(&fx).value(), b);
        for (i, m) in models.iter().enumerate() {
            let tape = Tape::new();
            let y = m.forward(&tape.leaf(inputs[i].clone())).value();
            prop_assert!(outs[i].allclose(&y, 1e-3));
        }
    }

    #[test]
    fn fused_linear_identity(seed in 0u64..1000, b in 1usize..5, fin in 1usize..6, fout in 1usize..6) {
        let mut rng = Rng::seed_from(seed);
        let models: Vec<Linear> = (0..b)
            .map(|_| Linear::new(LinearCfg::new(fin, fout), &mut rng.split()))
            .collect();
        let fused = FusedLinear::from_models(&models).unwrap();
        let inputs: Vec<Tensor> = (0..b).map(|_| rng.randn([3, fin])).collect();
        let tape = Tape::new();
        let fx = tape.leaf(stack_array(&inputs).unwrap());
        let outs = unstack_array(&fused.forward(&fx).value(), b);
        for (i, m) in models.iter().enumerate() {
            let tape = Tape::new();
            let y = m.forward(&tape.leaf(inputs[i].clone())).value();
            prop_assert!(outs[i].allclose(&y, 1e-3));
        }
    }

    #[test]
    fn fused_batchnorm_identity(seed in 0u64..1000, b in 1usize..4, c in 1usize..4) {
        let mut rng = Rng::seed_from(seed);
        let models: Vec<BatchNorm> = (0..b).map(|_| BatchNorm::new(c)).collect();
        let fused = FusedBatchNorm::from_models(&models).unwrap();
        let inputs: Vec<Tensor> = (0..b).map(|_| rng.randn([4, c, 3])).collect();
        let tape = Tape::new();
        let fx = tape.leaf(stack_conv(&inputs).unwrap());
        let outs = unstack_conv(&fused.forward(&fx).value(), b);
        for (i, m) in models.iter().enumerate() {
            let tape = Tape::new();
            let y = m.forward(&tape.leaf(inputs[i].clone())).value();
            prop_assert!(outs[i].allclose(&y, 1e-3));
        }
    }

    #[test]
    fn unfuse_round_trips_weights(seed in 0u64..1000, b in 1usize..5) {
        let mut rng = Rng::seed_from(seed);
        let cfg = Conv2dCfg::new(2, 4, 3);
        let models: Vec<Conv2d> = (0..b).map(|_| Conv2d::new(cfg, &mut rng.split())).collect();
        let fused = FusedConv2d::from_models(&models).unwrap();
        for (m, u) in models.iter().zip(fused.unfuse()) {
            prop_assert_eq!(m.weight.value_cloned(), u.weight.value_cloned());
        }
        let linears: Vec<Linear> = (0..b)
            .map(|_| Linear::new(LinearCfg::new(3, 2), &mut rng.split()))
            .collect();
        let flin = FusedLinear::from_models(&linears).unwrap();
        for (m, u) in linears.iter().zip(flin.unfuse()) {
            prop_assert_eq!(m.weight.value_cloned(), u.weight.value_cloned());
        }
    }

    #[test]
    fn loss_scaling_reconstructs_serial_gradients(
        seed in 0u64..1000,
        b in 1usize..5,
        n in 1usize..5,
        c in 2usize..5,
    ) {
        let mut rng = Rng::seed_from(seed);
        let weights: Vec<Parameter> = (0..b)
            .map(|i| Parameter::new(rng.randn([4, c]), format!("w{i}")))
            .collect();
        let xs: Vec<Tensor> = (0..b).map(|_| rng.randn([n, 4])).collect();
        let ys: Vec<Vec<usize>> = (0..b)
            .map(|_| (0..n).map(|_| rng.below(c)).collect())
            .collect();
        // Serial gradients.
        let mut serial = Vec::new();
        for ((w, x), y) in weights.iter().zip(&xs).zip(&ys) {
            w.zero_grad();
            let tape = Tape::new();
            tape.leaf(x.clone())
                .matmul(&tape.param(w))
                .cross_entropy(y)
                .backward();
            serial.push(w.grad_cloned());
        }
        // Fused gradients via the scaled loss.
        let stacked = {
            let vs: Vec<_> = weights.iter().map(|w| w.value_cloned().unsqueeze(0)).collect();
            Parameter::new(Tensor::concat(&vs.iter().collect::<Vec<_>>(), 0), "wf")
        };
        let tape = Tape::new();
        let fx = tape.leaf(stack_array(&xs).unwrap());
        let logits = fx.bmm(&tape.param(&stacked));
        let targets: Vec<usize> = ys.iter().flatten().copied().collect();
        fused_cross_entropy(&logits, &targets, Reduction::Mean).backward();
        let fused = stacked.grad_cloned();
        for (i, expected) in serial.iter().enumerate() {
            let gi = fused.narrow(0, i, 1).squeeze(0);
            prop_assert!(
                gi.allclose(expected, 1e-4),
                "model {i} grad diff {}",
                gi.max_abs_diff(expected)
            );
        }
    }

    #[test]
    fn fused_adam_matches_serial_over_random_steps(
        seed in 0u64..1000,
        b in 1usize..4,
        steps in 1usize..6,
    ) {
        let mut rng = Rng::seed_from(seed);
        let serial: Vec<Parameter> = (0..b)
            .map(|i| Parameter::new(rng.randn([3]), format!("w{i}")))
            .collect();
        let lrs: Vec<f32> = (0..b).map(|i| 0.1 / (i + 1) as f32).collect();
        let stacked = {
            let vs: Vec<_> = serial.iter().map(|p| p.value_cloned()).collect();
            FusedParameter {
                param: Parameter::new(Tensor::concat(&vs.iter().collect::<Vec<_>>(), 0), "wf"),
                b,
            }
        };
        let mut serial_opts: Vec<Adam> = serial
            .iter()
            .zip(&lrs)
            .map(|(p, &lr)| Adam::new(vec![p.clone()], lr))
            .collect();
        let mut fused_opt =
            FusedAdam::new(vec![stacked.clone()], PerModel::new(lrs.clone())).unwrap();
        for _ in 0..steps {
            let grads: Vec<Tensor> = (0..b).map(|_| rng.randn([3])).collect();
            for (p, g) in serial.iter().zip(&grads) {
                p.zero_grad();
                p.accumulate_grad(g);
            }
            stacked.param.zero_grad();
            stacked
                .param
                .accumulate_grad(&Tensor::concat(&grads.iter().collect::<Vec<_>>(), 0));
            for o in &mut serial_opts {
                o.step();
            }
            fused_opt.step();
        }
        for (i, p) in serial.iter().enumerate() {
            let slice = stacked.model_slice(i);
            prop_assert!(slice.allclose(&p.value_cloned(), 1e-5), "model {i}");
        }
    }

    #[test]
    fn op_spec_fusion_is_associative_in_width(b1 in 1usize..4, b2 in 1usize..4) {
        // Fusing b1 then b2 equals fusing b1 * b2 at once.
        let spec = OpSpec::Conv2d {
            n: 4, c_in: 3, c_out: 8, h: 8, w: 8, kernel: 3, stride: 1, padding: 1, groups: 1,
        };
        prop_assert_eq!(spec.fused(b1).fused(b2), spec.fused(b1 * b2));
    }

    #[test]
    fn fuse_checker_accepts_replicas_rejects_mutants(copies in 1usize..6, mutate in 0usize..3) {
        let base = OpSpec::Linear { n: 8, f_in: 16, f_out: 4, arrays: 1 };
        let mut specs = vec![base; copies];
        prop_assert!(fuse(&specs).is_ok());
        if copies > 1 {
            specs[copies - 1] = match mutate {
                0 => OpSpec::Linear { n: 9, f_in: 16, f_out: 4, arrays: 1 },
                1 => OpSpec::Linear { n: 8, f_in: 17, f_out: 4, arrays: 1 },
                _ => OpSpec::Relu { numel: 10 },
            };
            prop_assert!(fuse(&specs).is_err());
        }
    }
}
