//! Property test of the checkpoint/restore contract behind `hfta-serve`:
//! snapshotting every lane of a fused array (`save_lane`), decoding the
//! bytes (`load_lane`), and splicing the decoded states into a *fresh*
//! array must continue training bit-identically to an array that was
//! never interrupted — for SGD-with-momentum AND Adam, across random
//! widths, checkpoint points, and resume lengths. The CI thread matrix
//! runs this at `HFTA_NUM_THREADS` 1 and 4, so the property also pins
//! down thread-count independence of the restored trajectory.

use hfta_core::array::ModelArray;
use hfta_core::ops::{FusedLinear, FusedParameter};
use hfta_core::optim::{FusedAdam, FusedOptimizer, FusedSgd, PerModel};
use hfta_core::snapshot::{load_lane, save_lane};
use hfta_core::surgery::{extract_lane, splice_lanes, LaneState};
use hfta_nn::layers::LinearCfg;
use hfta_tensor::Rng;
use proptest::prelude::*;

fn build(b: usize, seed: u64) -> (ModelArray<FusedLinear>, Vec<FusedParameter>) {
    let mut rng = Rng::seed_from(seed);
    let array = ModelArray::new(FusedLinear::new(b, LinearCfg::new(4, 3), &mut rng));
    let params = array.fused_parameters();
    (array, params)
}

fn make_opt(adam: bool, params: Vec<FusedParameter>, b: usize) -> Box<dyn FusedOptimizer> {
    // Distinct per-lane learning rates so lanes have genuinely different
    // trajectories and a lane mix-up cannot cancel out.
    let lrs = PerModel::new((0..b).map(|i| 0.05 / (i + 1) as f32).collect());
    if adam {
        Box::new(FusedAdam::new(params, lrs).unwrap())
    } else {
        Box::new(FusedSgd::new(params, lrs, 0.9).unwrap())
    }
}

/// Deterministic gradient for global step `s`: depends only on the step
/// index and the parameter shapes, never on when or where it is applied.
fn apply_grad(params: &[FusedParameter], s: u64) {
    let mut rng = Rng::seed_from(0xC0FF_EE00 ^ (s.wrapping_mul(0x9E37_79B9)));
    for p in params {
        let dims = p.param.value().dims().to_vec();
        p.param.zero_grad();
        p.param.accumulate_grad(&rng.randn(dims));
    }
}

fn param_bits(params: &[FusedParameter]) -> Vec<u32> {
    params
        .iter()
        .flat_map(|p| {
            p.param
                .value()
                .as_slice()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        })
        .collect()
}

fn state_bits(params: &[FusedParameter], opt: &dyn FusedOptimizer) -> Vec<u32> {
    (0..params.len())
        .flat_map(|pi| {
            (0..opt.state_slots())
                .flat_map(|slot| {
                    opt.state(pi, slot)
                        .as_slice()
                        .iter()
                        .map(|x| x.to_bits())
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn snapshot_restore_continues_bit_identically(
        seed in 0u64..500,
        b in 1usize..6,
        pre in 0u64..5,
        post in 1u64..5,
        adam in any::<bool>(),
    ) {
        // Uninterrupted reference: pre + post steps straight through.
        let (_ref_array, ref_params) = build(b, seed);
        let mut ref_opt = make_opt(adam, ref_params.clone(), b);
        for s in 0..pre + post {
            apply_grad(&ref_params, s);
            ref_opt.step();
        }

        // Checkpointed run: train `pre` steps, snapshot every lane to
        // bytes, decode, splice into a freshly built array with different
        // init (everything must be overwritten), and train `post` more.
        let (_src_array, src_params) = build(b, seed);
        let mut src_opt = make_opt(adam, src_params.clone(), b);
        for s in 0..pre {
            apply_grad(&src_params, s);
            src_opt.step();
        }
        let restored: Vec<LaneState> = (0..b)
            .map(|lane| {
                let bytes = save_lane(&extract_lane(&src_params, src_opt.as_ref(), lane));
                load_lane(&bytes).expect("snapshot decodes")
            })
            .collect();
        drop(src_opt);

        let (_dst_array, dst_params) = build(b, seed ^ 0xDEAD);
        let mut dst_opt = make_opt(adam, dst_params.clone(), b);
        splice_lanes(&restored, &dst_params, dst_opt.as_mut());
        if adam {
            // Adam's bias correction depends on the restored counter.
            prop_assert_eq!(dst_opt.step_count(), pre);
        }
        for s in pre..pre + post {
            apply_grad(&dst_params, s);
            dst_opt.step();
        }

        prop_assert_eq!(param_bits(&dst_params), param_bits(&ref_params));
        prop_assert_eq!(
            state_bits(&dst_params, dst_opt.as_ref()),
            state_bits(&ref_params, ref_opt.as_ref())
        );
    }
}
