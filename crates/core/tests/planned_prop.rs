//! Property-based tests of planned (partially fused) execution: over
//! random mixed model sets, widths, and optimizers, a planner-driven
//! run is bit-identical per lane to the all-serial plan; lane surgery
//! round-trips through serial and sub-width blocks; and quarantining a
//! lane inside fused blocks leaves every other lane bit-identical.

use hfta_core::planned::{per_lane_ce, PlannedArray, PlannedOptimizer};
use hfta_core::surgery::LaneState;
use hfta_nn::layers::{Conv2dCfg, LinearCfg};
use hfta_plan::{FusionPlan, ModelGraph, OpSpec};
use hfta_tensor::{Rng, Tensor};
use proptest::prelude::*;

const SIDE: usize = 4;
const CLASSES: usize = 3;

/// A small conv-net family: shared stem and head, with `refine`
/// shape-preserving refinement blocks in the middle and a per-arch
/// channel width. Lanes sharing `(channels, refine)` are isomorphic;
/// others fuse only where tokens happen to agree.
fn arch(channels: usize, refine: usize) -> Vec<OpSpec> {
    let mut ops = vec![
        OpSpec::conv2d(
            Conv2dCfg::new(2, channels, 3)
                .stride(1)
                .padding(1)
                .bias(false),
        ),
        OpSpec::relu(),
    ];
    for _ in 0..refine {
        ops.push(OpSpec::conv2d(
            Conv2dCfg::new(channels, channels, 3)
                .stride(1)
                .padding(1)
                .bias(false),
        ));
        ops.push(OpSpec::leaky_relu(0.1));
    }
    ops.push(OpSpec::flatten());
    ops.push(OpSpec::linear(LinearCfg::new(
        channels * SIDE * SIDE,
        CLASSES,
    )));
    ops
}

fn graphs_from(arch_ids: &[(usize, usize)]) -> Vec<ModelGraph> {
    arch_ids
        .iter()
        .enumerate()
        .map(|(l, &(c, r))| {
            ModelGraph::new(format!("lane{l}-c{c}r{r}"), vec![2, SIDE, SIDE], arch(c, r))
        })
        .collect()
}

fn seeds(lanes: usize) -> Vec<u64> {
    (0..lanes as u64).map(|l| 900 + l).collect()
}

fn lrs(lanes: usize) -> hfta_core::optim::PerModel {
    hfta_core::optim::PerModel::new((0..lanes).map(|l| 0.03 + 0.005 * l as f32).collect())
}

fn data(lanes: usize, seed: u64) -> (Vec<Tensor>, Vec<Vec<usize>>) {
    let mut rng = Rng::seed_from(seed);
    let inputs = (0..lanes).map(|_| rng.randn([2, 2, SIDE, SIDE])).collect();
    let targets = (0..lanes)
        .map(|_| (0..2).map(|_| rng.below(CLASSES)).collect())
        .collect();
    (inputs, targets)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.to_vec().iter().map(|v| v.to_bits()).collect()
}

type StateBits = (Vec<Vec<u32>>, Vec<Vec<Vec<u32>>>, u64);

fn state_bits(s: &LaneState) -> StateBits {
    (
        s.params.iter().map(bits).collect(),
        s.opt_state
            .iter()
            .map(|slots| slots.iter().map(bits).collect())
            .collect(),
        s.step_count,
    )
}

/// Trains `plan` for `steps` and returns per-step per-lane loss bits and
/// each lane's extracted final state.
fn run(
    graphs: &[ModelGraph],
    plan: &FusionPlan,
    adam: bool,
    steps: usize,
    quarantine: Option<usize>,
    data_seed: u64,
) -> (Vec<Vec<u32>>, Vec<LaneState>) {
    let array = PlannedArray::build(graphs, plan, &seeds(graphs.len())).unwrap();
    let lr = lrs(graphs.len());
    let mut opt = if adam {
        PlannedOptimizer::adam(&array, &lr).unwrap()
    } else {
        PlannedOptimizer::sgd(&array, &lr, 0.9).unwrap()
    };
    if let Some(lane) = quarantine {
        opt.quarantine(lane);
    }
    let (inputs, targets) = data(graphs.len(), data_seed);
    let mut loss_bits = Vec::new();
    for _ in 0..steps {
        let (_tape, outs) = array.forward(&inputs).unwrap();
        let (losses, total) = per_lane_ce(&outs, &targets);
        total.backward();
        opt.step();
        opt.zero_grad();
        loss_bits.push(losses.iter().map(|l| l.to_bits()).collect());
    }
    let states = (0..graphs.len())
        .map(|l| opt.extract_lane(&array, l))
        .collect();
    (loss_bits, states)
}

/// Encodes `(channels, refine)` as one id: channels in {2, 3}, refine in
/// {0, 1, 2} — the vendored proptest has no tuple strategies.
fn decode(ids: &[usize]) -> Vec<(usize, usize)> {
    ids.iter().map(|id| (2 + id % 2, id / 2)).collect()
}

fn arch_ids_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..6, 2..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn planned_is_bit_identical_to_serial_over_random_mixed_sets(
        arch_ids in arch_ids_strategy(),
        adam in any::<bool>(),
        data_seed in 0u64..1000,
    ) {
        let graphs = graphs_from(&decode(&arch_ids));
        let fused = FusionPlan::plan(&graphs).unwrap();
        let serial = FusionPlan::serial(&graphs).unwrap();
        let (fl, fs) = run(&graphs, &fused, adam, 2, None, data_seed);
        let (sl, ss) = run(&graphs, &serial, adam, 2, None, data_seed);
        prop_assert_eq!(fl, sl);
        for (lane, (a, b)) in fs.iter().zip(&ss).enumerate() {
            let _ = lane;
            prop_assert_eq!(state_bits(a), state_bits(b));
        }
    }

    #[test]
    fn extract_splice_round_trips_through_serial_blocks(
        arch_ids in arch_ids_strategy(),
        data_seed in 0u64..1000,
    ) {
        let graphs = graphs_from(&decode(&arch_ids));
        let plan = FusionPlan::plan(&graphs).unwrap();
        let array = PlannedArray::build(&graphs, &plan, &seeds(graphs.len())).unwrap();
        let mut opt = PlannedOptimizer::sgd(&array, &lrs(graphs.len()), 0.9).unwrap();
        let (inputs, targets) = data(graphs.len(), data_seed);
        let (_tape, outs) = array.forward(&inputs).unwrap();
        let (_, total) = per_lane_ce(&outs, &targets);
        total.backward();
        opt.step();
        opt.zero_grad();
        let before: Vec<LaneState> = (0..graphs.len())
            .map(|l| opt.extract_lane(&array, l))
            .collect();
        opt.splice_lanes(&array, &before);
        for (lane, b) in before.iter().enumerate() {
            let after = opt.extract_lane(&array, lane);
            let _ = lane;
            prop_assert_eq!(state_bits(b), state_bits(&after));
        }
    }

    #[test]
    fn quarantine_in_fused_blocks_leaves_other_lanes_bit_identical(
        arch_ids in arch_ids_strategy(),
        lane_pick in 0usize..8,
        data_seed in 0u64..1000,
    ) {
        let graphs = graphs_from(&decode(&arch_ids));
        let lane = lane_pick % graphs.len();
        let plan = FusionPlan::plan(&graphs).unwrap();
        let (_, clean) = run(&graphs, &plan, false, 2, None, data_seed);
        let (_, isolated) = run(&graphs, &plan, false, 2, Some(lane), data_seed);
        for l in 0..graphs.len() {
            if l == lane {
                continue;
            }
            prop_assert_eq!(state_bits(&clean[l]), state_bits(&isolated[l]));
        }
    }
}
