//! The paper's three benchmark workloads, packaged for the simulator:
//! per-model and fused [`TrainingJob`] builders with calibrated host-side
//! data-pipeline costs.

use hfta_core::rules::OpSpec;
use hfta_sim::TrainingJob;

use crate::lower::{build_job, fused_trace};
use crate::traces;

/// A simulator-ready workload: its per-model trace plus metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name matching the paper's figures.
    pub name: &'static str,
    /// Forward trace of one model.
    pub trace: Vec<OpSpec>,
    /// Per-model minibatch size.
    pub batch: usize,
    /// Host data-pipeline time per iteration per process, µs.
    pub host_us: f64,
    /// Per-kernel framework gap, µs (see
    /// [`TrainingJob::sync_us_per_kernel`]); calibrated per workload so
    /// serial `sm_active` lands in the paper's measured 0.1–0.3 band.
    pub sync_us: f64,
    /// Fraction of the gap that is per-process CPU work (see
    /// [`TrainingJob::cpu_gap_fraction`]).
    pub cpu_gap: f64,
}

impl Workload {
    /// PointNet classification on ShapeNet-part (memory-bound; light host
    /// pipeline — point clouds are small — but a gap-heavy eager loop,
    /// per the paper's serial counter profiles).
    pub fn pointnet_cls() -> Self {
        Workload {
            name: "PointNet-cls",
            trace: traces::pointnet_cls(),
            batch: traces::POINTNET_BATCH,
            host_us: 2_000.0,
            sync_us: 600.0,
            cpu_gap: 0.1,
        }
    }

    /// PointNet segmentation on ShapeNet-part.
    pub fn pointnet_seg() -> Self {
        Workload {
            name: "PointNet-seg",
            trace: traces::pointnet_seg(4),
            batch: traces::POINTNET_BATCH,
            host_us: 2_500.0,
            sync_us: 550.0,
            cpu_gap: 0.1,
        }
    }

    /// DCGAN on LSUN (compute-bound; heavy host pipeline — JPEG decode of
    /// 64 bedroom crops per iteration, the source of the paper's
    /// `concurrent` degradation in Figure 4c).
    pub fn dcgan() -> Self {
        Workload {
            name: "DCGAN",
            trace: traces::dcgan_iteration(),
            batch: traces::DCGAN_BATCH,
            host_us: 60_000.0,
            sync_us: 250.0,
            cpu_gap: 0.75,
        }
    }

    /// ResNet-18 on CIFAR-10 at batch 1000 (the Figure 5 conventional
    /// model; host pipeline heavy at this batch size).
    pub fn resnet18() -> Self {
        Workload {
            name: "ResNet-18",
            trace: traces::resnet18(),
            batch: traces::RESNET_BATCH,
            host_us: 100_000.0,
            sync_us: 300.0,
            cpu_gap: 0.4,
        }
    }

    /// All three paper benchmarks, in figure order.
    pub fn paper_benchmarks() -> Vec<Workload> {
        vec![Self::pointnet_cls(), Self::pointnet_seg(), Self::dcgan()]
    }

    /// The per-model (serial / concurrent / MPS / MIG) job.
    pub fn serial_job(&self) -> TrainingJob {
        build_job(
            self.name,
            &self.trace,
            1,
            self.batch,
            self.host_us,
            self.sync_us,
            self.cpu_gap,
        )
    }

    /// The HFTA-fused `b`-wide job. The host pipeline is *shared*: the
    /// array trains on the same input batch (the hyper-parameter-tuning
    /// use case), so host time does not scale with `b`; neither does the
    /// per-kernel framework gap (same number of fused kernels).
    pub fn fused_job(&self, b: usize) -> TrainingJob {
        build_job(
            format!("{}-hfta-x{b}", self.name),
            &fused_trace(&self.trace, b),
            b,
            self.batch,
            self.host_us,
            self.sync_us,
            self.cpu_gap,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_sim::{DeviceSpec, GpuSim, SharingPolicy};

    #[test]
    fn workloads_build_jobs() {
        for w in Workload::paper_benchmarks() {
            let serial = w.serial_job();
            assert_eq!(serial.models_per_job, 1);
            let fused = w.fused_job(4);
            assert_eq!(fused.models_per_job, 4);
            assert_eq!(fused.kernel_count(), serial.kernel_count());
            assert!(fused.total_flops() >= 4 * serial.total_flops());
        }
    }

    #[test]
    fn hfta_beats_serial_on_every_benchmark() {
        let sim = GpuSim::new(DeviceSpec::v100(), false);
        for w in Workload::paper_benchmarks() {
            let serial = sim.simulate(SharingPolicy::Serial, &w.serial_job(), 1);
            let b = sim
                .max_jobs(SharingPolicy::Hfta, 64, |b| w.fused_job(b))
                .max(2);
            let hfta = sim.simulate(SharingPolicy::Hfta, &w.fused_job(b), 1);
            let speedup = hfta.throughput_eps / serial.throughput_eps;
            assert!(
                speedup > 1.5,
                "{}: HFTA speedup only {speedup:.2} at B = {b}",
                w.name
            );
        }
    }

    #[test]
    fn v100_fits_multiple_pointnet_models() {
        let sim = GpuSim::new(DeviceSpec::v100(), false);
        let w = Workload::pointnet_cls();
        let max_hfta = sim.max_jobs(SharingPolicy::Hfta, 64, |b| w.fused_job(b));
        let max_mps = sim.max_jobs(SharingPolicy::Mps, 64, |_| w.serial_job());
        assert!(max_hfta >= 4, "HFTA max {max_hfta}");
        assert!(max_hfta > max_mps, "HFTA {max_hfta} vs MPS {max_mps}");
    }
}
