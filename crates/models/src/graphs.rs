//! `hfta-plan` graph extraction for the paper's benchmark models.
//!
//! Each function mirrors the corresponding serial constructor layer for
//! layer, so a [`hfta_plan::FusionPlan`] computed over these graphs
//! describes exactly the programs `Discriminator::new` & co. execute. The
//! DCGAN graphs are fully executable by `hfta_core::planned::PlannedArray`;
//! the PointNet and ResNet graphs contain planner-only markers
//! (`GlobalMaxPool`, `ResidualAdd`) and support planning/packing decisions
//! but not planned execution.

use hfta_nn::layers::{Conv2dCfg, LinearCfg};
use hfta_plan::{ModelGraph, OpSpec};

use crate::dcgan::DcganCfg;
use crate::pointnet::PointNetCfg;
use crate::resnet::ResNetCfg;

fn dcgan_stages(image: usize) -> usize {
    match image {
        16 => 2,
        _ => 4,
    }
}

/// Graph of [`crate::dcgan::Discriminator`]: image `[3, S, S]` →
/// logit, with the trailing reshape modeled as `Flatten`.
pub fn discriminator_graph(cfg: DcganCfg) -> ModelGraph {
    let s = dcgan_stages(cfg.image);
    let mut ops = vec![
        OpSpec::conv2d(
            Conv2dCfg::new(3, cfg.width, 4)
                .stride(2)
                .padding(1)
                .bias(false),
        ),
        OpSpec::leaky_relu(0.2),
    ];
    let mut c = cfg.width;
    for _ in 0..s - 1 {
        ops.push(OpSpec::conv2d(
            Conv2dCfg::new(c, c * 2, 4).stride(2).padding(1).bias(false),
        ));
        ops.push(OpSpec::batch_norm(c * 2));
        ops.push(OpSpec::leaky_relu(0.2));
        c *= 2;
    }
    ops.push(OpSpec::conv2d(
        Conv2dCfg::new(c, 1, 4).stride(1).padding(0).bias(false),
    ));
    ops.push(OpSpec::flatten());
    ModelGraph::new("dcgan-d", vec![3, cfg.image, cfg.image], ops)
}

/// A discriminator variant with `extra` shape-preserving refinement
/// blocks (3x3 conv + LeakyReLU at constant width) spliced in after the
/// first downsampling stage. Lanes running the variant share a fusible
/// prefix and suffix with the base [`discriminator_graph`], leaving the
/// refinement blocks to sub-width or serial plan blocks — the mixed-arch
/// sweep `bench_plan` measures.
pub fn discriminator_variant_graph(cfg: DcganCfg, extra: usize) -> ModelGraph {
    let base = discriminator_graph(cfg);
    let mut ops = base.ops;
    for i in 0..extra {
        ops.insert(
            2 + 2 * i,
            OpSpec::conv2d(
                Conv2dCfg::new(cfg.width, cfg.width, 3)
                    .stride(1)
                    .padding(1)
                    .bias(false),
            ),
        );
        ops.insert(3 + 2 * i, OpSpec::leaky_relu(0.2));
    }
    ModelGraph::new(
        format!("dcgan-d+{extra}"),
        vec![3, cfg.image, cfg.image],
        ops,
    )
}

/// Graph of [`crate::dcgan::Generator`]: latent `[nz, 1, 1]` → image
/// `[3, S, S]`.
pub fn generator_graph(cfg: DcganCfg) -> ModelGraph {
    let s = dcgan_stages(cfg.image);
    let mut c = cfg.width << (s - 1);
    let mut ops = vec![
        OpSpec::conv_transpose2d(
            Conv2dCfg::new(cfg.latent, c, 4)
                .stride(1)
                .padding(0)
                .bias(false),
        ),
        OpSpec::batch_norm(c),
        OpSpec::relu(),
    ];
    for _ in 0..s - 1 {
        ops.push(OpSpec::conv_transpose2d(
            Conv2dCfg::new(c, c / 2, 4).stride(2).padding(1).bias(false),
        ));
        ops.push(OpSpec::batch_norm(c / 2));
        ops.push(OpSpec::relu());
        c /= 2;
    }
    ops.push(OpSpec::conv_transpose2d(
        Conv2dCfg::new(c, 3, 4).stride(2).padding(1).bias(false),
    ));
    ops.push(OpSpec::tanh());
    ModelGraph::new("dcgan-g", vec![cfg.latent, 1, 1], ops)
}

/// Graph of [`crate::pointnet::PointNetCls`] (STN-free form) over
/// `points` input points: the three `Conv1d`+BN+ReLU trunk stages, the
/// global max-pool, and the FC classifier head. The dropout between
/// `fc2` and `fc3` is stochastic and carries no parameters, so it is not
/// part of the planning IR. Planner-only: `GlobalMaxPool` does not
/// execute in a `PlannedArray`.
pub fn pointnet_cls_graph(cfg: PointNetCfg, points: usize) -> ModelGraph {
    let (c1, c2, c3) = (cfg.width, 2 * cfg.width, 16 * cfg.width);
    let (f1, f2) = (8 * cfg.width, 4 * cfg.width);
    let mut ops = Vec::new();
    for (cin, cout) in [(3, c1), (c1, c2), (c2, c3)] {
        ops.push(OpSpec::conv1d(cin, cout, 1, 1, 0));
        ops.push(OpSpec::batch_norm(cout));
        ops.push(OpSpec::relu());
    }
    ops.push(OpSpec::global_max_pool());
    ops.push(OpSpec::linear(LinearCfg::new(c3, f1)));
    ops.push(OpSpec::batch_norm(f1));
    ops.push(OpSpec::relu());
    ops.push(OpSpec::linear(LinearCfg::new(f1, f2)));
    ops.push(OpSpec::batch_norm(f2));
    ops.push(OpSpec::relu());
    ops.push(OpSpec::linear(LinearCfg::new(f2, cfg.classes)));
    ModelGraph::new("pointnet-cls", vec![3, points], ops)
}

/// Graph of the [`crate::resnet::ResNet`] main path: stem, basic blocks,
/// global flatten, classifier. Identity-skip blocks carry a
/// `ResidualAdd` marker spanning back to the block entry; stride-2
/// blocks' downsample projections live on the skip path, outside this
/// linear IR, so those blocks appear as their main path only (a planning
/// approximation — the planner still sees matching structure across
/// lanes of the same depth). Planner-only: `ResidualAdd` does not
/// execute in a `PlannedArray`.
pub fn resnet_graph(cfg: ResNetCfg, side: usize) -> ModelGraph {
    let conv3 = |cin: usize, cout: usize, s: usize| {
        OpSpec::conv2d(
            Conv2dCfg::new(cin, cout, 3)
                .stride(s)
                .padding(1)
                .bias(false),
        )
    };
    let w = cfg.width;
    let mut ops = vec![conv3(3, w, 1), OpSpec::batch_norm(w), OpSpec::relu()];
    let mut cin = w;
    let mut spatial = side;
    for stage in 0..cfg.stages {
        let cout = w << stage;
        let stride = if stage == 0 { 1 } else { 2 };
        for block in 0..2 {
            let (s, ci) = if block == 0 { (stride, cin) } else { (1, cout) };
            let identity_skip = ci == cout && s == 1;
            ops.push(conv3(ci, cout, s));
            ops.push(OpSpec::batch_norm(cout));
            ops.push(OpSpec::relu());
            ops.push(conv3(cout, cout, 1));
            ops.push(OpSpec::batch_norm(cout));
            if identity_skip {
                // Back across both conv+bn pairs and the mid relu.
                ops.push(OpSpec::residual_add(5));
            }
            ops.push(OpSpec::relu());
            if s == 2 {
                spatial /= 2;
            }
        }
        cin = cout;
    }
    ops.push(OpSpec::flatten());
    ops.push(OpSpec::linear(LinearCfg::new(
        cin * spatial * spatial,
        cfg.classes,
    )));
    ModelGraph::new("resnet", vec![3, side, side], ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_plan::FusionPlan;

    #[test]
    fn dcgan_graphs_shape_check() {
        let cfg = DcganCfg::mini();
        let d = discriminator_graph(cfg);
        let shapes = d.shapes().unwrap();
        assert_eq!(shapes.last().unwrap(), &vec![1], "logit output");
        let g = generator_graph(cfg);
        let shapes = g.shapes().unwrap();
        assert_eq!(
            shapes.last().unwrap(),
            &vec![3, cfg.image, cfg.image],
            "image output"
        );
    }

    #[test]
    fn variant_shares_prefix_and_suffix_with_base() {
        let cfg = DcganCfg::mini();
        let graphs = vec![
            discriminator_graph(cfg),
            discriminator_variant_graph(cfg, 1),
            discriminator_graph(cfg),
            discriminator_variant_graph(cfg, 1),
        ];
        for g in &graphs {
            g.shapes().unwrap();
        }
        let plan = FusionPlan::plan(&graphs).unwrap();
        assert!(
            plan.fused_fraction() > 0.5,
            "prefix+suffix dominate: {plan:?}"
        );
        assert_eq!(plan.max_fused_width(), 4);
    }

    #[test]
    fn pointnet_and_resnet_graphs_shape_check_and_plan() {
        let pn = pointnet_cls_graph(PointNetCfg::mini(4), 32);
        let shapes = pn.shapes().unwrap();
        assert_eq!(shapes.last().unwrap(), &vec![4], "class logits");

        let rn = resnet_graph(ResNetCfg::mini(10), 8);
        let shapes = rn.shapes().unwrap();
        assert_eq!(shapes.last().unwrap(), &vec![10], "class logits");

        // Homogeneous sets of either arch fuse fully.
        for graphs in [vec![pn.clone(), pn], vec![rn.clone(), rn]] {
            let plan = FusionPlan::plan(&graphs).unwrap();
            assert_eq!(plan.fused_fraction(), 1.0);
        }
    }
}
