//! Full-size operator traces of the paper's benchmark models.
//!
//! These are shape-level `OpSpec` sequences at the *paper's* batch sizes
//! and resolutions (kept the same as the original publications, per §4 of
//! the paper). They drive the `hfta-sim` cost model through
//! [`crate::lower`]; the fused counterpart of a trace is obtained by
//! mapping [`OpSpec::fused`] over it, which is exactly the Table 6
//! transform.

use hfta_core::rules::OpSpec;

/// PointNet classification batch size (reference implementation default).
pub const POINTNET_BATCH: usize = 32;
/// Points per cloud (reference implementation default).
pub const POINTNET_POINTS: usize = 2500;
/// ShapeNet categories.
pub const POINTNET_CLASSES: usize = 16;
/// DCGAN batch size (PyTorch example default).
pub const DCGAN_BATCH: usize = 64;
/// ResNet-18 batch size used in the paper's Figures 3 and 5.
pub const RESNET_BATCH: usize = 1000;

fn conv1d_bn_relu(ops: &mut Vec<OpSpec>, n: usize, c_in: usize, c_out: usize, l: usize) {
    ops.push(OpSpec::Conv1d {
        n,
        c_in,
        c_out,
        l,
        kernel: 1,
        stride: 1,
        padding: 0,
        groups: 1,
    });
    ops.push(OpSpec::BatchNorm1d { n, c: c_out, l });
    ops.push(OpSpec::Relu {
        numel: n * c_out * l,
    });
}

fn linear_bn_relu(ops: &mut Vec<OpSpec>, n: usize, f_in: usize, f_out: usize) {
    ops.push(OpSpec::Linear {
        n,
        f_in,
        f_out,
        arrays: 1,
    });
    ops.push(OpSpec::BatchNorm1d { n, c: f_out, l: 1 });
    ops.push(OpSpec::Relu { numel: n * f_out });
}

/// The STN3d/STNkd spatial transformer of the reference implementation
/// (shared trunk shapes, `k*k` regression output).
fn stn(ops: &mut Vec<OpSpec>, n: usize, p: usize, k: usize) {
    conv1d_bn_relu(ops, n, k, 64, p);
    conv1d_bn_relu(ops, n, 64, 128, p);
    conv1d_bn_relu(ops, n, 128, 1024, p);
    // Global max over points (reduce; elementwise-cost stand-in).
    ops.push(OpSpec::Relu {
        numel: n * 1024 * p,
    });
    linear_bn_relu(ops, n, 1024, 512);
    linear_bn_relu(ops, n, 512, 256);
    ops.push(OpSpec::Linear {
        n,
        f_in: 256,
        f_out: k * k,
        arrays: 1,
    });
    // Applying the transform: batched [n, p, k] x [n, k, k] matmul,
    // counted as a Linear over n*p rows.
    ops.push(OpSpec::Linear {
        n: n * p,
        f_in: k,
        f_out: k,
        arrays: 1,
    });
}

/// Shared PointNet feature trunk; returns with the global feature
/// computed. `with_stn` includes the input transformer.
fn pointnet_feat(ops: &mut Vec<OpSpec>, n: usize, p: usize, with_stn: bool) {
    if with_stn {
        stn(ops, n, p, 3);
    }
    conv1d_bn_relu(ops, n, 3, 64, p);
    conv1d_bn_relu(ops, n, 64, 128, p);
    ops.push(OpSpec::Conv1d {
        n,
        c_in: 128,
        c_out: 1024,
        l: p,
        kernel: 1,
        stride: 1,
        padding: 0,
        groups: 1,
    });
    ops.push(OpSpec::BatchNorm1d { n, c: 1024, l: p });
    // Global max pool over points.
    ops.push(OpSpec::Relu {
        numel: n * 1024 * p,
    });
}

/// PointNet classification forward trace (reference architecture with
/// STN3d, 16 ShapeNet categories).
pub fn pointnet_cls() -> Vec<OpSpec> {
    let (n, p) = (POINTNET_BATCH, POINTNET_POINTS);
    let mut ops = Vec::new();
    pointnet_feat(&mut ops, n, p, true);
    linear_bn_relu(&mut ops, n, 1024, 512);
    ops.push(OpSpec::Linear {
        n,
        f_in: 512,
        f_out: 256,
        arrays: 1,
    });
    ops.push(OpSpec::Dropout { numel: n * 256 });
    ops.push(OpSpec::BatchNorm1d { n, c: 256, l: 1 });
    ops.push(OpSpec::Relu { numel: n * 256 });
    ops.push(OpSpec::Linear {
        n,
        f_in: 256,
        f_out: POINTNET_CLASSES,
        arrays: 1,
    });
    ops.push(OpSpec::Relu {
        numel: n * POINTNET_CLASSES, // log-softmax stand-in
    });
    ops
}

/// PointNet segmentation forward trace (per-point part prediction; the
/// variant the paper notes is rich in non-GEMM operators — the layout
/// shuffles around the local/global concat appear as elementwise ops).
pub fn pointnet_seg(part_classes: usize) -> Vec<OpSpec> {
    let (n, p) = (POINTNET_BATCH, POINTNET_POINTS);
    let mut ops = Vec::new();
    pointnet_feat(&mut ops, n, p, true);
    // Broadcast global feature over points + concat with 64-d local
    // features (copy-heavy, non-GEMM).
    ops.push(OpSpec::Relu {
        numel: n * 1024 * p,
    });
    ops.push(OpSpec::Relu {
        numel: n * 1088 * p,
    });
    conv1d_bn_relu(&mut ops, n, 1088, 512, p);
    conv1d_bn_relu(&mut ops, n, 512, 256, p);
    conv1d_bn_relu(&mut ops, n, 256, 128, p);
    ops.push(OpSpec::Conv1d {
        n,
        c_in: 128,
        c_out: part_classes,
        l: p,
        kernel: 1,
        stride: 1,
        padding: 0,
        groups: 1,
    });
    // Per-point transpose + log-softmax (layout + elementwise).
    ops.push(OpSpec::Relu {
        numel: 2 * n * part_classes * p,
    });
    ops
}

#[allow(clippy::too_many_arguments)]
fn convt_bn_relu(
    ops: &mut Vec<OpSpec>,
    n: usize,
    c_in: usize,
    c_out: usize,
    h: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> usize {
    ops.push(OpSpec::ConvTranspose2d {
        n,
        c_in,
        c_out,
        h,
        w: h,
        kernel,
        stride,
        padding,
        groups: 1,
    });
    let ho = (h - 1) * stride + kernel - 2 * padding;
    ops.push(OpSpec::BatchNorm2d {
        n,
        c: c_out,
        h: ho,
        w: ho,
    });
    ops.push(OpSpec::Relu {
        numel: n * c_out * ho * ho,
    });
    ho
}

fn conv_bn_lrelu(
    ops: &mut Vec<OpSpec>,
    n: usize,
    c_in: usize,
    c_out: usize,
    h: usize,
    bn: bool,
) -> usize {
    ops.push(OpSpec::Conv2d {
        n,
        c_in,
        c_out,
        h,
        w: h,
        kernel: 4,
        stride: 2,
        padding: 1,
        groups: 1,
    });
    let ho = h / 2;
    if bn {
        ops.push(OpSpec::BatchNorm2d {
            n,
            c: c_out,
            h: ho,
            w: ho,
        });
    }
    ops.push(OpSpec::LeakyRelu {
        numel: n * c_out * ho * ho,
    });
    ho
}

/// DCGAN generator forward trace (`nz = 100`, `ngf = 64`, 64x64 output).
pub fn dcgan_generator() -> Vec<OpSpec> {
    let n = DCGAN_BATCH;
    let mut ops = Vec::new();
    let mut h = convt_bn_relu(&mut ops, n, 100, 512, 1, 4, 1, 0); // 4
    h = convt_bn_relu(&mut ops, n, 512, 256, h, 4, 2, 1); // 8
    h = convt_bn_relu(&mut ops, n, 256, 128, h, 4, 2, 1); // 16
    h = convt_bn_relu(&mut ops, n, 128, 64, h, 4, 2, 1); // 32
    ops.push(OpSpec::ConvTranspose2d {
        n,
        c_in: 64,
        c_out: 3,
        h,
        w: h,
        kernel: 4,
        stride: 2,
        padding: 1,
        groups: 1,
    });
    ops.push(OpSpec::Tanh {
        numel: n * 3 * 64 * 64,
    });
    ops
}

/// DCGAN discriminator forward trace (`ndf = 64`, 64x64 input).
pub fn dcgan_discriminator() -> Vec<OpSpec> {
    let n = DCGAN_BATCH;
    let mut ops = Vec::new();
    let mut h = conv_bn_lrelu(&mut ops, n, 3, 64, 64, false); // 32
    h = conv_bn_lrelu(&mut ops, n, 64, 128, h, true); // 16
    h = conv_bn_lrelu(&mut ops, n, 128, 256, h, true); // 8
    h = conv_bn_lrelu(&mut ops, n, 256, 512, h, true); // 4
    ops.push(OpSpec::Conv2d {
        n,
        c_in: 512,
        c_out: 1,
        h,
        w: h,
        kernel: 4,
        stride: 1,
        padding: 0,
        groups: 1,
    });
    ops
}

/// One DCGAN training iteration: the generator forward plus two
/// discriminator passes (real and fake batches), matching the standard
/// alternating recipe. Backward costs are added by the lowering.
pub fn dcgan_iteration() -> Vec<OpSpec> {
    let mut ops = dcgan_generator();
    ops.extend(dcgan_discriminator());
    ops.extend(dcgan_discriminator());
    ops
}

fn res_block(
    ops: &mut Vec<OpSpec>,
    n: usize,
    c_in: usize,
    c_out: usize,
    h: usize,
    stride: usize,
) -> usize {
    let ho = h / stride;
    ops.push(OpSpec::Conv2d {
        n,
        c_in,
        c_out,
        h,
        w: h,
        kernel: 3,
        stride,
        padding: 1,
        groups: 1,
    });
    ops.push(OpSpec::BatchNorm2d {
        n,
        c: c_out,
        h: ho,
        w: ho,
    });
    ops.push(OpSpec::Relu {
        numel: n * c_out * ho * ho,
    });
    ops.push(OpSpec::Conv2d {
        n,
        c_in: c_out,
        c_out,
        h: ho,
        w: ho,
        kernel: 3,
        stride: 1,
        padding: 1,
        groups: 1,
    });
    ops.push(OpSpec::BatchNorm2d {
        n,
        c: c_out,
        h: ho,
        w: ho,
    });
    if stride != 1 || c_in != c_out {
        ops.push(OpSpec::Conv2d {
            n,
            c_in,
            c_out,
            h,
            w: h,
            kernel: 1,
            stride,
            padding: 0,
            groups: 1,
        });
        ops.push(OpSpec::BatchNorm2d {
            n,
            c: c_out,
            h: ho,
            w: ho,
        });
    }
    // Skip add + relu.
    ops.push(OpSpec::Relu {
        numel: 2 * n * c_out * ho * ho,
    });
    ho
}

/// ResNet-18 (CIFAR-10 stem) forward trace at the paper's batch size 1000.
pub fn resnet18() -> Vec<OpSpec> {
    let n = RESNET_BATCH;
    let mut ops = Vec::new();
    ops.push(OpSpec::Conv2d {
        n,
        c_in: 3,
        c_out: 64,
        h: 32,
        w: 32,
        kernel: 3,
        stride: 1,
        padding: 1,
        groups: 1,
    });
    ops.push(OpSpec::BatchNorm2d {
        n,
        c: 64,
        h: 32,
        w: 32,
    });
    ops.push(OpSpec::Relu {
        numel: n * 64 * 32 * 32,
    });
    let mut h = 32;
    let mut c = 64;
    for stage in 0..4 {
        let c_out = 64 << stage;
        let stride = if stage == 0 { 1 } else { 2 };
        h = res_block(&mut ops, n, c, c_out, h, stride);
        h = res_block(&mut ops, n, c_out, c_out, h, 1);
        c = c_out;
    }
    // Global average pool + FC.
    ops.push(OpSpec::Relu {
        numel: n * c * h * h,
    });
    ops.push(OpSpec::Linear {
        n,
        f_in: c,
        f_out: 10,
        arrays: 1,
    });
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_core::rules::fuse;

    #[test]
    fn traces_are_nonempty_and_fusable() {
        for trace in [
            pointnet_cls(),
            pointnet_seg(4),
            dcgan_iteration(),
            resnet18(),
        ] {
            assert!(trace.len() > 10);
            for op in &trace {
                // Every op must fuse with copies of itself (Table 6 check).
                let fused = fuse(&[*op, *op, *op]).unwrap();
                assert_eq!(fused, op.fused(3));
            }
        }
    }

    #[test]
    fn pointnet_cls_flops_scale() {
        let total: u64 = pointnet_cls().iter().map(|o| o.flops()).sum();
        // Rough magnitude check: hundreds of MFLOPs up to tens of GFLOPs
        // per iteration at batch 32 x 2500 points.
        assert!(total > 100_000_000, "total {total}");
        assert!(total < 2_000_000_000_000, "total {total}");
    }

    #[test]
    fn dcgan_is_compute_heavy_relative_to_pointnet() {
        // The paper classifies DCGAN as compute-bound and PointNet as
        // memory-bound: flop/byte ratio must be clearly higher for DCGAN.
        let intensity = |trace: &[OpSpec]| {
            let f: u64 = trace.iter().map(|o| o.flops()).sum();
            let b: u64 = trace.iter().map(|o| o.bytes()).sum();
            f as f64 / b as f64
        };
        assert!(intensity(&dcgan_iteration()) > 2.0 * intensity(&pointnet_cls()));
    }

    #[test]
    fn seg_has_more_non_gemm_traffic_than_cls() {
        // The paper attributes PointNet-seg's weak TPU result to its many
        // non-GEMM operators; those are memory-traffic-bound, so compare
        // byte shares.
        let non_gemm_bytes = |trace: &[OpSpec]| -> u64 {
            trace
                .iter()
                .filter(|o| !o.is_gemm())
                .map(|o| o.bytes())
                .sum()
        };
        assert!(non_gemm_bytes(&pointnet_seg(4)) > non_gemm_bytes(&pointnet_cls()));
    }

    #[test]
    fn dcgan_generator_ends_at_64px() {
        let ops = dcgan_generator();
        match ops[ops.len() - 2] {
            OpSpec::ConvTranspose2d {
                h,
                stride,
                kernel,
                padding,
                c_out,
                ..
            } => {
                assert_eq!(c_out, 3);
                assert_eq!((h - 1) * stride + kernel - 2 * padding, 64);
            }
            ref other => panic!("unexpected tail op {other:?}"),
        }
    }

    #[test]
    fn resnet_has_eight_blocks_worth_of_convs() {
        let convs = resnet18()
            .iter()
            .filter(|o| matches!(o, OpSpec::Conv2d { .. }))
            .count();
        // 1 stem + 16 block convs + 3 downsample convs.
        assert_eq!(convs, 20);
    }
}
