//! PointNet classification and segmentation (Qi et al., 2017) in serial
//! and HFTA-fused form.
//!
//! The architecture follows the third-party PyTorch implementation the
//! paper benchmarks (`fxia22/pointnet.pytorch`), including the optional
//! STN3d input transformer ([`Stn3d`] / [`FusedStn3d`]; enable with
//! [`PointNetCfg::stn`]). The feature transform (STNkd) is omitted, as in
//! the reference default. A `width` knob scales all channel counts so
//! convergence experiments run quickly on CPU while the structure matches
//! the paper's.

use hfta_core::format::{conv_to_array, fused_concat_channels};
use hfta_core::ops::{FusedBatchNorm, FusedConv1d, FusedLinear, FusedModule, FusedParameter};
use hfta_nn::layers::{BatchNorm, Conv1d, Dropout, Linear, LinearCfg};
use hfta_nn::{Module, Parameter, Var};
use hfta_tensor::Rng;

/// Configuration shared by the serial and fused PointNet variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointNetCfg {
    /// Base channel width (the paper's models use 64).
    pub width: usize,
    /// Number of output classes (16 categories for classification,
    /// part count for segmentation).
    pub classes: usize,
    /// Whether to include the STN3d input transformer of the reference
    /// implementation.
    pub with_stn: bool,
}

impl PointNetCfg {
    /// A CPU-friendly mini configuration (no STN).
    pub fn mini(classes: usize) -> Self {
        PointNetCfg {
            width: 8,
            classes,
            with_stn: false,
        }
    }

    /// The paper-scale configuration (width 64, with STN3d).
    pub fn paper(classes: usize) -> Self {
        PointNetCfg {
            width: 64,
            classes,
            with_stn: true,
        }
    }

    /// Enables or disables the STN3d input transformer.
    pub fn stn(mut self, on: bool) -> Self {
        self.with_stn = on;
        self
    }

    fn dims(&self) -> (usize, usize, usize) {
        // conv channels: (w, 2w, 16w) mirroring (64, 128, 1024).
        (self.width, 2 * self.width, 16 * self.width)
    }
}

/// The STN3d input spatial transformer of the reference implementation:
/// regresses a 3x3 alignment matrix from the cloud and applies it to the
/// input coordinates (initialized to the identity transform).
#[derive(Debug)]
pub struct Stn3d {
    trunk: PointNetFeat,
    fc1: Linear,
    bn1: BatchNorm,
    fc2: Linear,
    bn2: BatchNorm,
    fc3: Linear,
}

impl Stn3d {
    /// Builds the transformer at the given width.
    pub fn new(cfg: PointNetCfg, rng: &mut Rng) -> Self {
        let (_, _, c3) = cfg.dims();
        let (f1, f2) = (8 * cfg.width, 4 * cfg.width);
        let fc3 = Linear::new(LinearCfg::new(f2, 9), rng);
        // Reference init: zero weights, identity bias, so the transform
        // starts as the identity.
        fc3.weight.set_value(hfta_tensor::Tensor::zeros([f2, 9]));
        fc3.bias
            .as_ref()
            .expect("bias")
            .set_value(hfta_tensor::Tensor::from_vec(
                vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0],
                [9],
            ));
        Stn3d {
            trunk: PointNetFeat::new(cfg, rng),
            fc1: Linear::new(LinearCfg::new(c3, f1), rng),
            bn1: BatchNorm::new(f1),
            fc2: Linear::new(LinearCfg::new(f1, f2), rng),
            bn2: BatchNorm::new(f2),
            fc3,
        }
    }

    /// Regresses the transform and applies it: `x [N, 3, P] -> [N, 3, P]`.
    pub fn transform(&self, x: &Var) -> Var {
        let (global, _) = self.trunk.forward(x);
        let h = self.bn1.forward(&self.fc1.forward(&global)).relu();
        let h = self.bn2.forward(&self.fc2.forward(&h)).relu();
        let n = x.dim(0);
        let mat = self.fc3.forward(&h).reshape(&[n, 3, 3]);
        // [N, P, 3] x [N, 3, 3] -> [N, P, 3], then back to [N, 3, P].
        x.transpose(1, 2).bmm(&mat).transpose(1, 2)
    }

    fn parameters(&self) -> Vec<Parameter> {
        [
            self.trunk.parameters(),
            self.fc1.parameters(),
            self.bn1.parameters(),
            self.fc2.parameters(),
            self.bn2.parameters(),
            self.fc3.parameters(),
        ]
        .concat()
    }

    fn set_training(&self, t: bool) {
        self.trunk.set_training(t);
        self.bn1.set_training(t);
        self.bn2.set_training(t);
    }
}

/// Fused STN3d: regresses `B` per-model 3x3 transforms from conv-format
/// input `[N, B*3, P]` and applies each model's transform to its own
/// channel block — `B*N` batched 3x3 matmuls, exactly the fused form of
/// the reference `torch.bmm`.
#[derive(Debug)]
pub struct FusedStn3d {
    trunk: FusedPointNetFeat,
    fc1: FusedLinear,
    bn1: FusedBatchNorm,
    fc2: FusedLinear,
    bn2: FusedBatchNorm,
    fc3: FusedLinear,
    b: usize,
}

impl FusedStn3d {
    /// Builds a `b`-wide fused transformer.
    pub fn new(b: usize, cfg: PointNetCfg, rng: &mut Rng) -> Self {
        let (_, _, c3) = cfg.dims();
        let (f1, f2) = (8 * cfg.width, 4 * cfg.width);
        let fc3 = FusedLinear::new(b, LinearCfg::new(f2, 9), rng);
        fc3.weight.set_value(hfta_tensor::Tensor::zeros([b, f2, 9]));
        let eye: Vec<f32> = (0..b)
            .flat_map(|_| [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0])
            .collect();
        fc3.bias
            .as_ref()
            .expect("bias")
            .set_value(hfta_tensor::Tensor::from_vec(eye, [b, 1, 9]));
        FusedStn3d {
            trunk: FusedPointNetFeat::new(b, cfg, rng),
            fc1: FusedLinear::new(b, LinearCfg::new(c3, f1), rng),
            bn1: FusedBatchNorm::new(b, f1),
            fc2: FusedLinear::new(b, LinearCfg::new(f1, f2), rng),
            bn2: FusedBatchNorm::new(b, f2),
            fc3,
            b,
        }
    }

    fn bn_array(bn: &FusedBatchNorm, x: &Var) -> Var {
        let dims = x.dims();
        let (b, n, f) = (dims[0], dims[1], dims[2]);
        bn.forward(&x.permute(&[1, 0, 2]).reshape(&[n, b * f]))
            .reshape(&[n, b, f])
            .permute(&[1, 0, 2])
    }

    /// Applies the per-model transforms: `[N, B*3, P] -> [N, B*3, P]`.
    pub fn transform(&self, x: &Var) -> Var {
        let (global, _) = self.trunk.forward(x); // [N, B*16w]
        let arr = conv_to_array(&global, self.b); // [B, N, 16w]
        let h = Self::bn_array(&self.bn1, &self.fc1.forward(&arr)).relu();
        let h = Self::bn_array(&self.bn2, &self.fc2.forward(&h)).relu();
        let n = x.dim(0);
        let p = x.dim(2);
        let mats = self.fc3.forward(&h).reshape(&[self.b * n, 3, 3]);
        // [N, B*3, P] -> [B*N, P, 3], batched transform, and back.
        let points = x
            .reshape(&[n, self.b, 3, p])
            .permute(&[1, 0, 3, 2]) // [B, N, P, 3]
            .reshape(&[self.b * n, p, 3]);
        points
            .bmm(&mats)
            .reshape(&[self.b, n, p, 3])
            .permute(&[1, 0, 3, 2]) // [N, B, 3, P]
            .reshape(&[n, self.b * 3, p])
    }

    fn parameters(&self) -> Vec<Parameter> {
        [
            self.trunk.parameters(),
            self.fc1.parameters(),
            self.bn1.parameters(),
            self.fc2.parameters(),
            self.bn2.parameters(),
            self.fc3.parameters(),
        ]
        .concat()
    }

    fn set_training(&self, t: bool) {
        self.trunk.set_training(t);
        self.bn1.set_training(t);
        self.bn2.set_training(t);
    }
}

/// The shared PointNet feature extractor: three 1x1 `Conv1d`+BN+ReLU
/// stages followed by a global max-pool over points.
#[derive(Debug)]
struct PointNetFeat {
    conv1: Conv1d,
    bn1: BatchNorm,
    conv2: Conv1d,
    bn2: BatchNorm,
    conv3: Conv1d,
    bn3: BatchNorm,
}

impl PointNetFeat {
    fn new(cfg: PointNetCfg, rng: &mut Rng) -> Self {
        let (c1, c2, c3) = cfg.dims();
        PointNetFeat {
            conv1: Conv1d::new(3, c1, 1, 1, 0, 1, rng),
            bn1: BatchNorm::new(c1),
            conv2: Conv1d::new(c1, c2, 1, 1, 0, 1, rng),
            bn2: BatchNorm::new(c2),
            conv3: Conv1d::new(c2, c3, 1, 1, 0, 1, rng),
            bn3: BatchNorm::new(c3),
        }
    }

    /// Returns `(global [N, 16w], pointwise [N, w, P])`.
    fn forward(&self, x: &Var) -> (Var, Var) {
        let h1 = self.bn1.forward(&self.conv1.forward(x)).relu();
        let h2 = self.bn2.forward(&self.conv2.forward(&h1)).relu();
        let h3 = self.bn3.forward(&self.conv3.forward(&h2));
        (h3.max_axis(2), h1)
    }

    fn parameters(&self) -> Vec<Parameter> {
        [
            self.conv1.parameters(),
            self.bn1.parameters(),
            self.conv2.parameters(),
            self.bn2.parameters(),
            self.conv3.parameters(),
            self.bn3.parameters(),
        ]
        .concat()
    }

    fn set_training(&self, t: bool) {
        self.bn1.set_training(t);
        self.bn2.set_training(t);
        self.bn3.set_training(t);
    }
}

/// Serial PointNet classifier: feature extractor plus a 3-layer MLP head
/// with batch norm and dropout, emitting log-probabilities.
#[derive(Debug)]
pub struct PointNetCls {
    stn: Option<Stn3d>,
    feat: PointNetFeat,
    fc1: Linear,
    bnf1: BatchNorm,
    fc2: Linear,
    bnf2: BatchNorm,
    dropout: Dropout,
    fc3: Linear,
}

impl PointNetCls {
    /// Builds the classifier.
    pub fn new(cfg: PointNetCfg, rng: &mut Rng) -> Self {
        let (_, _, c3) = cfg.dims();
        let (f1, f2) = (8 * cfg.width, 4 * cfg.width);
        PointNetCls {
            stn: cfg.with_stn.then(|| Stn3d::new(cfg, rng)),
            feat: PointNetFeat::new(cfg, rng),
            fc1: Linear::new(LinearCfg::new(c3, f1), rng),
            bnf1: BatchNorm::new(f1),
            fc2: Linear::new(LinearCfg::new(f1, f2), rng),
            bnf2: BatchNorm::new(f2),
            dropout: Dropout::new(0.3, rng.split().below(u32::MAX as usize) as u64),
            fc3: Linear::new(LinearCfg::new(f2, cfg.classes), rng),
        }
    }
}

impl Module for PointNetCls {
    /// `x [N, 3, P]` → log-probabilities `[N, classes]`.
    fn forward(&self, x: &Var) -> Var {
        let x = match &self.stn {
            Some(stn) => stn.transform(x),
            None => x.clone(),
        };
        let (global, _) = self.feat.forward(&x);
        let h = self.bnf1.forward(&self.fc1.forward(&global)).relu();
        let h = self
            .dropout
            .forward(&self.bnf2.forward(&self.fc2.forward(&h)))
            .relu();
        self.fc3.forward(&h).log_softmax(1)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut ps = self
            .stn
            .as_ref()
            .map(|s| s.parameters())
            .unwrap_or_default();
        ps.extend(
            [
                self.feat.parameters(),
                self.fc1.parameters(),
                self.bnf1.parameters(),
                self.fc2.parameters(),
                self.bnf2.parameters(),
                self.fc3.parameters(),
            ]
            .concat(),
        );
        ps
    }

    fn set_training(&self, t: bool) {
        if let Some(stn) = &self.stn {
            stn.set_training(t);
        }
        self.feat.set_training(t);
        self.bnf1.set_training(t);
        self.bnf2.set_training(t);
        self.dropout.set_training(t);
    }
}

/// Fused feature extractor over conv format `[N, B*3, P]`.
#[derive(Debug)]
struct FusedPointNetFeat {
    conv1: FusedConv1d,
    bn1: FusedBatchNorm,
    conv2: FusedConv1d,
    bn2: FusedBatchNorm,
    conv3: FusedConv1d,
    bn3: FusedBatchNorm,
}

impl FusedPointNetFeat {
    fn new(b: usize, cfg: PointNetCfg, rng: &mut Rng) -> Self {
        let (c1, c2, c3) = cfg.dims();
        FusedPointNetFeat {
            conv1: FusedConv1d::new(b, 3, c1, 1, 1, 0, rng),
            bn1: FusedBatchNorm::new(b, c1),
            conv2: FusedConv1d::new(b, c1, c2, 1, 1, 0, rng),
            bn2: FusedBatchNorm::new(b, c2),
            conv3: FusedConv1d::new(b, c2, c3, 1, 1, 0, rng),
            bn3: FusedBatchNorm::new(b, c3),
        }
    }

    fn forward(&self, x: &Var) -> (Var, Var) {
        let h1 = self.bn1.forward(&self.conv1.forward(x)).relu();
        let h2 = self.bn2.forward(&self.conv2.forward(&h1)).relu();
        let h3 = self.bn3.forward(&self.conv3.forward(&h2));
        (h3.max_axis(2), h1)
    }

    fn parameters(&self) -> Vec<Parameter> {
        [
            self.conv1.parameters(),
            self.bn1.parameters(),
            self.conv2.parameters(),
            self.bn2.parameters(),
            self.conv3.parameters(),
            self.bn3.parameters(),
        ]
        .concat()
    }

    fn set_training(&self, t: bool) {
        self.bn1.set_training(t);
        self.bn2.set_training(t);
        self.bn3.set_training(t);
    }
}

/// HFTA-fused PointNet classifier array: `B` models trained together.
///
/// Input is conv format `[N, B*3, P]` (stack per-model clouds with
/// [`hfta_core::format::stack_conv`]); output is array format
/// `[B, N, classes]` log-probabilities, ready for
/// [`hfta_core::loss::fused_nll_loss`].
#[derive(Debug)]
pub struct FusedPointNetCls {
    stn: Option<FusedStn3d>,
    feat: FusedPointNetFeat,
    fc1: FusedLinear,
    bnf1: FusedBatchNorm,
    fc2: FusedLinear,
    bnf2: FusedBatchNorm,
    dropout: Dropout,
    fc3: FusedLinear,
    b: usize,
}

impl FusedPointNetCls {
    /// Builds a `b`-wide fused classifier array.
    pub fn new(b: usize, cfg: PointNetCfg, rng: &mut Rng) -> Self {
        let (_, _, c3) = cfg.dims();
        let (f1, f2) = (8 * cfg.width, 4 * cfg.width);
        FusedPointNetCls {
            stn: cfg.with_stn.then(|| FusedStn3d::new(b, cfg, rng)),
            feat: FusedPointNetFeat::new(b, cfg, rng),
            fc1: FusedLinear::new(b, LinearCfg::new(c3, f1), rng),
            bnf1: FusedBatchNorm::new(b, f1),
            fc2: FusedLinear::new(b, LinearCfg::new(f1, f2), rng),
            bnf2: FusedBatchNorm::new(b, f2),
            dropout: Dropout::new(0.3, rng.split().below(u32::MAX as usize) as u64),
            fc3: FusedLinear::new(b, LinearCfg::new(f2, cfg.classes), rng),
            b,
        }
    }

    /// Fused batch norm over an array-format activation `[B, N, F]`
    /// (convert to `[N, B*F]` conv format, normalize, convert back).
    fn bn_array(&self, bn: &FusedBatchNorm, x: &Var) -> Var {
        let dims = x.dims();
        let (b, n, f) = (dims[0], dims[1], dims[2]);
        let conv = x.permute(&[1, 0, 2]).reshape(&[n, b * f]);
        let normed = bn.forward(&conv);
        normed.reshape(&[n, b, f]).permute(&[1, 0, 2])
    }
}

impl Module for FusedPointNetCls {
    fn forward(&self, x: &Var) -> Var {
        let x = match &self.stn {
            Some(stn) => stn.transform(x),
            None => x.clone(),
        };
        let (global, _) = self.feat.forward(&x); // [N, B*16w]
        let arr = conv_to_array(&global, self.b); // [B, N, 16w]
        let h = self.bn_array(&self.bnf1, &self.fc1.forward(&arr)).relu();
        let h = self
            .dropout
            .forward(&self.bn_array(&self.bnf2, &self.fc2.forward(&h)))
            .relu();
        self.fc3.forward(&h).log_softmax(2)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut ps = self
            .stn
            .as_ref()
            .map(|s| s.parameters())
            .unwrap_or_default();
        ps.extend(
            [
                self.feat.parameters(),
                self.fc1.parameters(),
                self.bnf1.parameters(),
                self.fc2.parameters(),
                self.bnf2.parameters(),
                self.fc3.parameters(),
            ]
            .concat(),
        );
        ps
    }

    fn set_training(&self, t: bool) {
        if let Some(stn) = &self.stn {
            stn.set_training(t);
        }
        self.feat.set_training(t);
        self.bnf1.set_training(t);
        self.bnf2.set_training(t);
        self.dropout.set_training(t);
    }
}

impl FusedModule for FusedPointNetCls {
    fn b(&self) -> usize {
        self.b
    }

    fn fused_parameters(&self) -> Vec<FusedParameter> {
        self.parameters()
            .into_iter()
            .map(|param| FusedParameter { param, b: self.b })
            .collect()
    }
}

/// Serial PointNet segmentation head: per-point part logits from
/// concatenated local + global features.
#[derive(Debug)]
pub struct PointNetSeg {
    feat: PointNetFeat,
    conv1: Conv1d,
    bn1: BatchNorm,
    conv2: Conv1d,
    bn2: BatchNorm,
    conv3: Conv1d,
    cfg: PointNetCfg,
}

impl PointNetSeg {
    /// Builds the segmentation model.
    pub fn new(cfg: PointNetCfg, rng: &mut Rng) -> Self {
        let (c1, _, c3) = cfg.dims();
        let concat = c1 + c3; // local + global (1088 at paper scale)
        let (h1, h2) = (8 * cfg.width, 4 * cfg.width);
        PointNetSeg {
            feat: PointNetFeat::new(cfg, rng),
            conv1: Conv1d::new(concat, h1, 1, 1, 0, 1, rng),
            bn1: BatchNorm::new(h1),
            conv2: Conv1d::new(h1, h2, 1, 1, 0, 1, rng),
            bn2: BatchNorm::new(h2),
            conv3: Conv1d::new(h2, cfg.classes, 1, 1, 0, 1, rng),
            cfg,
        }
    }
}

impl Module for PointNetSeg {
    /// `x [N, 3, P]` → per-point log-probabilities `[N, classes, P]`.
    fn forward(&self, x: &Var) -> Var {
        let p = x.dim(2);
        let (global, local) = self.feat.forward(x);
        let (_, _, c3) = self.cfg.dims();
        let n = x.dim(0);
        // Broadcast the global feature over points and concat with local.
        let tape = x.tape().clone();
        let zeros = tape.leaf(hfta_tensor::Tensor::zeros([n, c3, p]));
        let global_rep = global.reshape(&[n, c3, 1]).add(&zeros);
        let h = Var::concat(&[&local, &global_rep], 1);
        let h = self.bn1.forward(&self.conv1.forward(&h)).relu();
        let h = self.bn2.forward(&self.conv2.forward(&h)).relu();
        self.conv3.forward(&h).log_softmax(1)
    }

    fn parameters(&self) -> Vec<Parameter> {
        [
            self.feat.parameters(),
            self.conv1.parameters(),
            self.bn1.parameters(),
            self.conv2.parameters(),
            self.bn2.parameters(),
            self.conv3.parameters(),
        ]
        .concat()
    }

    fn set_training(&self, t: bool) {
        self.feat.set_training(t);
        self.bn1.set_training(t);
        self.bn2.set_training(t);
    }
}

/// HFTA-fused PointNet segmentation array over conv format `[N, B*3, P]`,
/// producing `[N, B*classes, P]` per-point log-probabilities (per-model
/// channel blocks contiguous).
#[derive(Debug)]
pub struct FusedPointNetSeg {
    feat: FusedPointNetFeat,
    conv1: FusedConv1d,
    bn1: FusedBatchNorm,
    conv2: FusedConv1d,
    bn2: FusedBatchNorm,
    conv3: FusedConv1d,
    cfg: PointNetCfg,
    b: usize,
}

impl FusedPointNetSeg {
    /// Builds a `b`-wide fused segmentation array.
    pub fn new(b: usize, cfg: PointNetCfg, rng: &mut Rng) -> Self {
        let (c1, _, c3) = cfg.dims();
        let concat = c1 + c3;
        let (h1, h2) = (8 * cfg.width, 4 * cfg.width);
        FusedPointNetSeg {
            feat: FusedPointNetFeat::new(b, cfg, rng),
            conv1: FusedConv1d::new(b, concat, h1, 1, 1, 0, rng),
            bn1: FusedBatchNorm::new(b, h1),
            conv2: FusedConv1d::new(b, h1, h2, 1, 1, 0, rng),
            bn2: FusedBatchNorm::new(b, h2),
            conv3: FusedConv1d::new(b, h2, cfg.classes, 1, 1, 0, rng),
            cfg,
            b,
        }
    }

    /// Per-point log-softmax within each model's class block.
    fn fused_log_softmax(&self, logits: &Var) -> Var {
        // [N, B*K, P] -> [N, B, K, P]: softmax over K only.
        let dims = logits.dims();
        let (n, _, p) = (dims[0], dims[1], dims[2]);
        let k = self.cfg.classes;
        logits
            .reshape(&[n, self.b, k, p])
            .log_softmax(2)
            .reshape(&[n, self.b * k, p])
    }
}

impl Module for FusedPointNetSeg {
    fn forward(&self, x: &Var) -> Var {
        let p = x.dim(2);
        let n = x.dim(0);
        let (_, _, c3) = self.cfg.dims();
        let (global, local) = self.feat.forward(x); // [N, B*16w], [N, B*w, P]
        let tape = x.tape().clone();
        let zeros = tape.leaf(hfta_tensor::Tensor::zeros([n, self.b * c3, p]));
        let global_rep = global.reshape(&[n, self.b * c3, 1]).add(&zeros);
        let h = fused_concat_channels(&local, &global_rep, self.b);
        let h = self.bn1.forward(&self.conv1.forward(&h)).relu();
        let h = self.bn2.forward(&self.conv2.forward(&h)).relu();
        self.fused_log_softmax(&self.conv3.forward(&h))
    }

    fn parameters(&self) -> Vec<Parameter> {
        [
            self.feat.parameters(),
            self.conv1.parameters(),
            self.bn1.parameters(),
            self.conv2.parameters(),
            self.bn2.parameters(),
            self.conv3.parameters(),
        ]
        .concat()
    }

    fn set_training(&self, t: bool) {
        self.feat.set_training(t);
        self.bn1.set_training(t);
        self.bn2.set_training(t);
    }
}

impl FusedModule for FusedPointNetSeg {
    fn b(&self) -> usize {
        self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_nn::Tape;

    #[test]
    fn cls_forward_shapes() {
        let mut rng = Rng::seed_from(0);
        let m = PointNetCls::new(PointNetCfg::mini(6), &mut rng);
        let tape = Tape::new();
        let x = tape.leaf(rng.randn([4, 3, 32]));
        let y = m.forward(&x);
        assert_eq!(y.dims(), vec![4, 6]);
        // log-probs sum to 1 after exp.
        let probs = y.value().exp();
        let row = probs.narrow(0, 0, 1).sum().item();
        assert!((row - 1.0).abs() < 1e-4);
    }

    #[test]
    fn fused_cls_forward_shapes() {
        let mut rng = Rng::seed_from(1);
        let m = FusedPointNetCls::new(3, PointNetCfg::mini(6), &mut rng);
        let tape = Tape::new();
        let x = tape.leaf(rng.randn([4, 9, 32]));
        let y = m.forward(&x);
        assert_eq!(y.dims(), vec![3, 4, 6]);
    }

    #[test]
    fn seg_forward_shapes() {
        let mut rng = Rng::seed_from(2);
        let m = PointNetSeg::new(PointNetCfg::mini(4), &mut rng);
        let tape = Tape::new();
        let x = tape.leaf(rng.randn([2, 3, 16]));
        let y = m.forward(&x);
        assert_eq!(y.dims(), vec![2, 4, 16]);
    }

    #[test]
    fn fused_seg_forward_shapes() {
        let mut rng = Rng::seed_from(3);
        let m = FusedPointNetSeg::new(2, PointNetCfg::mini(4), &mut rng);
        let tape = Tape::new();
        let x = tape.leaf(rng.randn([2, 6, 16]));
        let y = m.forward(&x);
        assert_eq!(y.dims(), vec![2, 8, 16]);
    }

    #[test]
    fn fused_seg_matches_serial_values() {
        // The segmentation path exercises the trickiest fused plumbing:
        // per-model-contiguous channel concat of local + broadcast global
        // features, then per-model log-softmax over class blocks.
        use hfta_core::array::copy_model_weights;
        use hfta_core::format::stack_conv;
        let mut rng = Rng::seed_from(21);
        let cfg = PointNetCfg::mini(4);
        let b = 2;
        let fused = FusedPointNetSeg::new(b, cfg, &mut rng);
        fused.set_training(false);
        let serial: Vec<PointNetSeg> = (0..b)
            .map(|_| {
                let m = PointNetSeg::new(cfg, &mut rng);
                m.set_training(false);
                m
            })
            .collect();
        for (i, m) in serial.iter().enumerate() {
            copy_model_weights(&fused.fused_parameters(), i, &m.parameters());
        }
        let inputs: Vec<hfta_tensor::Tensor> = (0..b).map(|_| rng.randn([2, 3, 12])).collect();
        let tape = Tape::new();
        let out = fused
            .forward(&tape.leaf(stack_conv(&inputs).unwrap()))
            .value(); // [N, B*4, P]
        for (i, m) in serial.iter().enumerate() {
            let tape = Tape::new();
            let y = m.forward(&tape.leaf(inputs[i].clone())).value(); // [N, 4, P]
            let block = out.narrow(1, i * 4, 4);
            assert!(
                block.allclose(&y, 1e-3),
                "seg model {i} diff {}",
                block.max_abs_diff(&y)
            );
        }
    }

    #[test]
    fn training_backward_reduces_loss() {
        use hfta_nn::{Adam, Optimizer};
        let mut rng = Rng::seed_from(4);
        let m = PointNetCls::new(PointNetCfg::mini(3), &mut rng);
        let mut opt = Adam::new(m.parameters(), 1e-2);
        let x = rng.randn([8, 3, 16]);
        let targets: Vec<usize> = (0..8).map(|i| i % 3).collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..15 {
            opt.zero_grad();
            let tape = Tape::new();
            let y = m.forward(&tape.leaf(x.clone()));
            let loss = y.nll_loss(&targets);
            if step == 0 {
                first = loss.item();
            }
            last = loss.item();
            loss.backward();
            opt.step();
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn stn_starts_as_identity_transform() {
        let mut rng = Rng::seed_from(7);
        let cfg = PointNetCfg::mini(4).stn(true);
        let stn = Stn3d::new(cfg, &mut rng);
        stn.set_training(false);
        // With zeroed fc3 weight and identity bias, the regressed matrix is
        // the identity, so transform(x) == x.
        let tape = Tape::new();
        let x = rng.randn([2, 3, 16]);
        let y = stn.transform(&tape.leaf(x.clone()));
        assert!(y.value().allclose(&x, 1e-4));
    }

    #[test]
    fn fused_stn_cls_matches_serial() {
        use hfta_core::array::copy_model_weights;
        use hfta_core::format::stack_conv;
        let mut rng = Rng::seed_from(8);
        let cfg = PointNetCfg::mini(4).stn(true);
        let b = 2;
        let fused = FusedPointNetCls::new(b, cfg, &mut rng);
        fused.set_training(false);
        let serial: Vec<PointNetCls> = (0..b)
            .map(|_| {
                let m = PointNetCls::new(cfg, &mut rng);
                m.set_training(false);
                m
            })
            .collect();
        for (i, m) in serial.iter().enumerate() {
            copy_model_weights(&fused.fused_parameters(), i, &m.parameters());
        }
        let inputs: Vec<hfta_tensor::Tensor> = (0..b).map(|_| rng.randn([3, 3, 16])).collect();
        let tape = Tape::new();
        let out = fused
            .forward(&tape.leaf(stack_conv(&inputs).unwrap()))
            .value();
        for (i, m) in serial.iter().enumerate() {
            let tape = Tape::new();
            let y = m.forward(&tape.leaf(inputs[i].clone())).value();
            let slice = out.narrow(0, i, 1).reshape(&[3, 4]);
            assert!(
                slice.allclose(&y, 1e-3),
                "model {i} diff {}",
                slice.max_abs_diff(&y)
            );
        }
    }

    #[test]
    fn parameter_counts_match_between_serial_and_fused() {
        let mut rng = Rng::seed_from(5);
        let cfg = PointNetCfg::mini(6);
        let serial = PointNetCls::new(cfg, &mut rng);
        let fused = FusedPointNetCls::new(4, cfg, &mut rng);
        let serial_n: usize = serial.parameters().iter().map(|p| p.numel()).sum();
        let fused_n: usize = fused.parameters().iter().map(|p| p.numel()).sum();
        assert_eq!(fused_n, 4 * serial_n);
    }
}
