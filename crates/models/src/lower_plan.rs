//! Lowering `hfta-plan` fusion plans to simulator training jobs.
//!
//! [`crate::lower`] turns hand-written per-model op traces
//! ([`hfta_core::rules::OpSpec`]) into [`TrainingJob`]s; this module does
//! the same for planner-facing [`ModelGraph`]s — and, block-by-block, for
//! a whole [`FusionPlan`] — so a partially fused schedule can be priced
//! on the device model the paper's evaluation uses.
//!
//! The cost of a planned step is the sum of its blocks run back-to-back
//! on one device: a fused block of width `k` is one `k`-wide HFTA job
//! (per-kernel dispatch gap paid once per *fused* kernel), a serial block
//! is a width-1 job. The host data pipeline is shared across the array
//! (the hyper-parameter-tuning use case), so the planned step charges
//! `host_us` once — while the serial baseline pays it per lane, one full
//! per-model job after another.
//!
//! Zero-cost graph ops (`Flatten`) lower to no kernel. `GlobalMaxPool`
//! and `ResidualAdd` are plannable but have no dedicated trace op; both
//! cost one elementwise pass over their input, which is exactly a
//! ReLU-shaped kernel, so they lower as one.

use hfta_core::rules::OpSpec as TraceOp;
use hfta_plan::{FusionPlan, ModelGraph, OpKind, OpSpec, PlanError};
use hfta_sim::{fuse_job, GpuSim, SharingPolicy, TrainingJob};

use crate::lower::build_job;

/// Simulation parameters for pricing a plan: per-model minibatch plus the
/// host/framework constants of [`crate::Workload`] (the defaults are the
/// DCGAN-style tuning workload: modest host pipeline, eager-mode
/// per-kernel gap that fusion amortizes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanSimCfg {
    /// Per-model minibatch size.
    pub batch: usize,
    /// Host-side per-iteration time, µs (charged once per planned step —
    /// the array shares one input pipeline — and once per lane serially).
    pub host_us: f64,
    /// Per-kernel framework/driver gap, µs (see
    /// [`TrainingJob::sync_us_per_kernel`]).
    pub sync_us: f64,
    /// Fraction of the gap that is per-process CPU work (see
    /// [`TrainingJob::cpu_gap_fraction`]).
    pub cpu_gap: f64,
}

impl Default for PlanSimCfg {
    fn default() -> Self {
        PlanSimCfg {
            batch: 64,
            host_us: 2_000.0,
            sync_us: 250.0,
            cpu_gap: 0.5,
        }
    }
}

fn numel(batch: usize, shape: &[usize]) -> usize {
    batch * shape.iter().product::<usize>()
}

/// Lowers one graph op entered at `entry` (activation shape, sans batch)
/// to its simulator trace op; `None` for zero-cost ops (`Flatten`).
pub fn lower_op(op: &OpSpec, entry: &[usize], batch: usize) -> Option<TraceOp> {
    let groups = op.groups.max(1);
    match op.kind {
        OpKind::Conv2d => Some(TraceOp::Conv2d {
            n: batch,
            c_in: op.c_in,
            c_out: op.c_out,
            h: entry[1],
            w: entry[2],
            kernel: op.kernel,
            stride: op.stride,
            padding: op.padding,
            groups,
        }),
        OpKind::ConvTranspose2d => Some(TraceOp::ConvTranspose2d {
            n: batch,
            c_in: op.c_in,
            c_out: op.c_out,
            h: entry[1],
            w: entry[2],
            kernel: op.kernel,
            stride: op.stride,
            padding: op.padding,
            groups,
        }),
        OpKind::Conv1d => Some(TraceOp::Conv1d {
            n: batch,
            c_in: op.c_in,
            c_out: op.c_out,
            l: entry[1],
            kernel: op.kernel,
            stride: op.stride,
            padding: op.padding,
            groups,
        }),
        OpKind::BatchNorm => Some(match *entry {
            [c, h, w] => TraceOp::BatchNorm2d { n: batch, c, h, w },
            [c, l] => TraceOp::BatchNorm1d { n: batch, c, l },
            _ => TraceOp::BatchNorm1d {
                n: batch,
                c: entry[0],
                l: 1,
            },
        }),
        OpKind::Relu => Some(TraceOp::Relu {
            numel: numel(batch, entry),
        }),
        OpKind::LeakyRelu => Some(TraceOp::LeakyRelu {
            numel: numel(batch, entry),
        }),
        OpKind::Tanh => Some(TraceOp::Tanh {
            numel: numel(batch, entry),
        }),
        OpKind::MaxPool2d => Some(TraceOp::MaxPool2d {
            n: batch,
            c: entry[0],
            h: entry[1],
            w: entry[2],
            kernel: op.kernel,
            stride: op.kernel,
        }),
        OpKind::Flatten => None,
        OpKind::Linear => Some(TraceOp::Linear {
            n: batch,
            f_in: op.c_in,
            f_out: op.c_out,
            arrays: 1,
        }),
        // One elementwise pass over the entry activation: ReLU-shaped.
        OpKind::GlobalMaxPool | OpKind::ResidualAdd => Some(TraceOp::Relu {
            numel: numel(batch, entry),
        }),
    }
}

/// Lowers a graph's whole program to a per-model simulator trace.
///
/// # Errors
///
/// Propagates the graph's shape-check failure.
pub fn lower_graph(graph: &ModelGraph, batch: usize) -> Result<Vec<TraceOp>, PlanError> {
    let shapes = graph.shapes()?;
    Ok(graph
        .ops
        .iter()
        .zip(&shapes)
        .filter_map(|(op, entry)| lower_op(op, entry, batch))
        .collect())
}

/// Simulated seconds for one step of the all-serial baseline: each lane's
/// full per-model job, one after another on `sim`'s device, each paying
/// its own host pipeline.
///
/// # Errors
///
/// Propagates a lane's shape-check failure.
pub fn serial_step_time_s(
    sim: &GpuSim,
    graphs: &[ModelGraph],
    cfg: &PlanSimCfg,
) -> Result<f64, PlanError> {
    let mut total_us = 0.0;
    for g in graphs {
        let job = lane_job(g, cfg)?;
        total_us += sim.simulate(SharingPolicy::Serial, &job, 1).round_us;
    }
    Ok(total_us * 1e-6)
}

/// Simulated seconds for one step of `plan` over `graphs`: blocks run
/// back-to-back, fused blocks as width-`k` HFTA jobs, plus one shared
/// host-pipeline charge.
///
/// # Errors
///
/// Propagates a lane's shape-check failure.
pub fn planned_step_time_s(
    sim: &GpuSim,
    graphs: &[ModelGraph],
    plan: &FusionPlan,
    cfg: &PlanSimCfg,
) -> Result<f64, PlanError> {
    let mut total_us = cfg.host_us;
    for (bi, block) in plan.blocks.iter().enumerate() {
        let lane = block.lanes[0];
        let start = block.starts[0];
        let shapes = graphs[lane].shapes()?;
        let trace: Vec<TraceOp> = block
            .ops
            .iter()
            .enumerate()
            .filter_map(|(i, op)| lower_op(op, &shapes[start + i], cfg.batch))
            .collect();
        if trace.is_empty() {
            continue;
        }
        let job = build_job(
            format!("block{bi}"),
            &trace,
            1,
            cfg.batch,
            0.0,
            cfg.sync_us,
            cfg.cpu_gap,
        );
        let fused = fuse_job(&job, block.width());
        total_us += sim.simulate(SharingPolicy::Hfta, &fused, 1).round_us;
    }
    Ok(total_us * 1e-6)
}

fn lane_job(graph: &ModelGraph, cfg: &PlanSimCfg) -> Result<TrainingJob, PlanError> {
    Ok(build_job(
        graph.name.clone(),
        &lower_graph(graph, cfg.batch)?,
        1,
        cfg.batch,
        cfg.host_us,
        cfg.sync_us,
        cfg.cpu_gap,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::{discriminator_graph, discriminator_variant_graph};
    use crate::DcganCfg;
    use hfta_sim::DeviceSpec;

    fn sweep() -> Vec<ModelGraph> {
        let cfg = DcganCfg::mini();
        vec![
            discriminator_graph(cfg),
            discriminator_variant_graph(cfg, 1),
            discriminator_graph(cfg),
            discriminator_variant_graph(cfg, 2),
        ]
    }

    #[test]
    fn lowering_skips_flatten_and_keeps_gemm_shapes() {
        let g = discriminator_graph(DcganCfg::mini());
        let trace = lower_graph(&g, 16).unwrap();
        let flat_ops = g.ops.iter().filter(|o| o.kind == OpKind::Flatten).count();
        assert_eq!(trace.len(), g.ops.len() - flat_ops);
        assert!(trace
            .iter()
            .any(|t| matches!(t, TraceOp::Conv2d { stride: 2, .. })));
    }

    #[test]
    fn partial_fusion_beats_the_serial_baseline_on_the_device_model() {
        let graphs = sweep();
        let plan = FusionPlan::plan(&graphs).unwrap();
        assert!(plan.fused_fraction() > 0.0 && plan.fused_fraction() < 1.0);
        let sim = GpuSim::new(DeviceSpec::v100(), false);
        let cfg = PlanSimCfg::default();
        let serial = serial_step_time_s(&sim, &graphs, &cfg).unwrap();
        let planned = planned_step_time_s(&sim, &graphs, &plan, &cfg).unwrap();
        assert!(
            planned < serial,
            "planned {planned}s not below serial {serial}s"
        );
        // And the all-serial plan prices above the planner's plan: fusing
        // is what saves, not the block decomposition itself.
        let trivial = FusionPlan::serial(&graphs).unwrap();
        let trivial_t = planned_step_time_s(&sim, &graphs, &trivial, &cfg).unwrap();
        assert!(planned < trivial_t);
    }

    #[test]
    fn pricing_is_deterministic() {
        let graphs = sweep();
        let plan = FusionPlan::plan(&graphs).unwrap();
        let sim = GpuSim::new(DeviceSpec::v100(), false);
        let cfg = PlanSimCfg::default();
        let a = planned_step_time_s(&sim, &graphs, &plan, &cfg).unwrap();
        let b = planned_step_time_s(&sim, &graphs, &plan, &cfg).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
