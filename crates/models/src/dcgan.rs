//! DCGAN (Radford et al., 2016) generator and discriminator in serial and
//! HFTA-fused form, following the PyTorch official example the paper
//! benchmarks.
//!
//! A `width`/`image` knob scales the networks so CPU training is feasible;
//! the paper-scale op traces live in [`crate::traces`].

use hfta_core::ops::{FusedBatchNorm, FusedConv2d, FusedConvTranspose2d, FusedModule};
use hfta_nn::layers::{BatchNorm, Conv2d, Conv2dCfg, ConvTranspose2d};
use hfta_nn::{Module, Parameter, Var};
use hfta_tensor::Rng;

/// DCGAN configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DcganCfg {
    /// Latent dimension (`nz`, 100 in the paper).
    pub latent: usize,
    /// Base feature width (`ngf`/`ndf`, 64 in the paper).
    pub width: usize,
    /// Output image side; 16 (mini) or 64 (paper). Must be 16 or 64.
    pub image: usize,
}

impl DcganCfg {
    /// CPU-friendly mini configuration: 16x16 images.
    pub fn mini() -> Self {
        DcganCfg {
            latent: 16,
            width: 8,
            image: 16,
        }
    }

    /// Paper-scale configuration: 64x64 images, width 64, nz 100.
    pub fn paper() -> Self {
        DcganCfg {
            latent: 100,
            width: 64,
            image: 64,
        }
    }

    fn check(&self) {
        assert!(
            self.image == 16 || self.image == 64,
            "DCGAN image size must be 16 or 64"
        );
    }

    /// Number of stride-2 up/down-sampling stages between 4x4 and the
    /// image resolution.
    fn stages(&self) -> usize {
        match self.image {
            16 => 2,
            _ => 4,
        }
    }
}

/// DCGAN generator: latent `[N, nz, 1, 1]` → image `[N, 3, S, S]` in
/// `[-1, 1]`.
#[derive(Debug)]
pub struct Generator {
    layers: Vec<(ConvTranspose2d, Option<BatchNorm>)>,
}

impl Generator {
    /// Builds the generator.
    pub fn new(cfg: DcganCfg, rng: &mut Rng) -> Self {
        cfg.check();
        let s = cfg.stages();
        let mut layers = Vec::new();
        // Project latent to (width * 2^(s-1)) x 4 x 4.
        let mut c = cfg.width << (s - 1);
        layers.push((
            ConvTranspose2d::new(
                Conv2dCfg::new(cfg.latent, c, 4)
                    .stride(1)
                    .padding(0)
                    .bias(false),
                rng,
            ),
            Some(BatchNorm::new(c)),
        ));
        for _ in 0..s - 1 {
            layers.push((
                ConvTranspose2d::new(
                    Conv2dCfg::new(c, c / 2, 4).stride(2).padding(1).bias(false),
                    rng,
                ),
                Some(BatchNorm::new(c / 2)),
            ));
            c /= 2;
        }
        layers.push((
            ConvTranspose2d::new(
                Conv2dCfg::new(c, 3, 4).stride(2).padding(1).bias(false),
                rng,
            ),
            None,
        ));
        Generator { layers }
    }
}

impl Module for Generator {
    fn forward(&self, z: &Var) -> Var {
        let mut h = z.clone();
        let last = self.layers.len() - 1;
        for (i, (deconv, bn)) in self.layers.iter().enumerate() {
            h = deconv.forward(&h);
            if let Some(bn) = bn {
                h = bn.forward(&h).relu();
            }
            if i == last {
                h = h.tanh();
            }
        }
        h
    }

    fn parameters(&self) -> Vec<Parameter> {
        self.layers
            .iter()
            .flat_map(|(d, bn)| {
                let mut ps = d.parameters();
                if let Some(bn) = bn {
                    ps.extend(bn.parameters());
                }
                ps
            })
            .collect()
    }

    fn set_training(&self, t: bool) {
        for (_, bn) in &self.layers {
            if let Some(bn) = bn {
                bn.set_training(t);
            }
        }
    }
}

/// DCGAN discriminator: image `[N, 3, S, S]` → real/fake logit `[N, 1]`.
#[derive(Debug)]
pub struct Discriminator {
    layers: Vec<(Conv2d, Option<BatchNorm>)>,
}

impl Discriminator {
    /// Builds the discriminator.
    pub fn new(cfg: DcganCfg, rng: &mut Rng) -> Self {
        cfg.check();
        let s = cfg.stages();
        let mut layers = Vec::new();
        let mut c = cfg.width;
        layers.push((
            Conv2d::new(
                Conv2dCfg::new(3, c, 4).stride(2).padding(1).bias(false),
                rng,
            ),
            None, // first layer has no BN, per the DCGAN recipe
        ));
        for _ in 0..s - 1 {
            layers.push((
                Conv2d::new(
                    Conv2dCfg::new(c, c * 2, 4).stride(2).padding(1).bias(false),
                    rng,
                ),
                Some(BatchNorm::new(c * 2)),
            ));
            c *= 2;
        }
        layers.push((
            Conv2d::new(
                Conv2dCfg::new(c, 1, 4).stride(1).padding(0).bias(false),
                rng,
            ),
            None,
        ));
        Discriminator { layers }
    }
}

impl Module for Discriminator {
    fn forward(&self, x: &Var) -> Var {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, (conv, bn)) in self.layers.iter().enumerate() {
            h = conv.forward(&h);
            if let Some(bn) = bn {
                h = bn.forward(&h);
            }
            if i != last {
                h = h.leaky_relu(0.2);
            }
        }
        let n = h.dim(0);
        h.reshape(&[n, 1])
    }

    fn parameters(&self) -> Vec<Parameter> {
        self.layers
            .iter()
            .flat_map(|(c, bn)| {
                let mut ps = c.parameters();
                if let Some(bn) = bn {
                    ps.extend(bn.parameters());
                }
                ps
            })
            .collect()
    }

    fn set_training(&self, t: bool) {
        for (_, bn) in &self.layers {
            if let Some(bn) = bn {
                bn.set_training(t);
            }
        }
    }
}

/// HFTA-fused DCGAN generator array: latent `[N, B*nz, 1, 1]` → images
/// `[N, B*3, S, S]`.
#[derive(Debug)]
pub struct FusedGenerator {
    layers: Vec<(FusedConvTranspose2d, Option<FusedBatchNorm>)>,
    b: usize,
}

impl FusedGenerator {
    /// Builds a `b`-wide fused generator array.
    pub fn new(b: usize, cfg: DcganCfg, rng: &mut Rng) -> Self {
        cfg.check();
        let s = cfg.stages();
        let mut layers = Vec::new();
        let mut c = cfg.width << (s - 1);
        layers.push((
            FusedConvTranspose2d::new(
                b,
                Conv2dCfg::new(cfg.latent, c, 4)
                    .stride(1)
                    .padding(0)
                    .bias(false),
                rng,
            ),
            Some(FusedBatchNorm::new(b, c)),
        ));
        for _ in 0..s - 1 {
            layers.push((
                FusedConvTranspose2d::new(
                    b,
                    Conv2dCfg::new(c, c / 2, 4).stride(2).padding(1).bias(false),
                    rng,
                ),
                Some(FusedBatchNorm::new(b, c / 2)),
            ));
            c /= 2;
        }
        layers.push((
            FusedConvTranspose2d::new(
                b,
                Conv2dCfg::new(c, 3, 4).stride(2).padding(1).bias(false),
                rng,
            ),
            None,
        ));
        FusedGenerator { layers, b }
    }
}

impl Module for FusedGenerator {
    fn forward(&self, z: &Var) -> Var {
        let mut h = z.clone();
        let last = self.layers.len() - 1;
        for (i, (deconv, bn)) in self.layers.iter().enumerate() {
            h = deconv.forward(&h);
            if let Some(bn) = bn {
                h = bn.forward(&h).relu();
            }
            if i == last {
                h = h.tanh();
            }
        }
        h
    }

    fn parameters(&self) -> Vec<Parameter> {
        self.layers
            .iter()
            .flat_map(|(d, bn)| {
                let mut ps = d.parameters();
                if let Some(bn) = bn {
                    ps.extend(bn.parameters());
                }
                ps
            })
            .collect()
    }

    fn set_training(&self, t: bool) {
        for (_, bn) in &self.layers {
            if let Some(bn) = bn {
                bn.set_training(t);
            }
        }
    }
}

impl FusedModule for FusedGenerator {
    fn b(&self) -> usize {
        self.b
    }
}

/// HFTA-fused DCGAN discriminator array: images `[N, B*3, S, S]` → logits
/// `[N, B]` (one column per model).
#[derive(Debug)]
pub struct FusedDiscriminator {
    layers: Vec<(FusedConv2d, Option<FusedBatchNorm>)>,
    b: usize,
}

impl FusedDiscriminator {
    /// Builds a `b`-wide fused discriminator array.
    pub fn new(b: usize, cfg: DcganCfg, rng: &mut Rng) -> Self {
        cfg.check();
        let s = cfg.stages();
        let mut layers = Vec::new();
        let mut c = cfg.width;
        layers.push((
            FusedConv2d::new(
                b,
                Conv2dCfg::new(3, c, 4).stride(2).padding(1).bias(false),
                rng,
            ),
            None,
        ));
        for _ in 0..s - 1 {
            layers.push((
                FusedConv2d::new(
                    b,
                    Conv2dCfg::new(c, c * 2, 4).stride(2).padding(1).bias(false),
                    rng,
                ),
                Some(FusedBatchNorm::new(b, c * 2)),
            ));
            c *= 2;
        }
        layers.push((
            FusedConv2d::new(
                b,
                Conv2dCfg::new(c, 1, 4).stride(1).padding(0).bias(false),
                rng,
            ),
            None,
        ));
        FusedDiscriminator { layers, b }
    }
}

impl Module for FusedDiscriminator {
    fn forward(&self, x: &Var) -> Var {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, (conv, bn)) in self.layers.iter().enumerate() {
            h = conv.forward(&h);
            if let Some(bn) = bn {
                h = bn.forward(&h);
            }
            if i != last {
                h = h.leaky_relu(0.2);
            }
        }
        let n = h.dim(0);
        h.reshape(&[n, self.b])
    }

    fn parameters(&self) -> Vec<Parameter> {
        self.layers
            .iter()
            .flat_map(|(c, bn)| {
                let mut ps = c.parameters();
                if let Some(bn) = bn {
                    ps.extend(bn.parameters());
                }
                ps
            })
            .collect()
    }

    fn set_training(&self, t: bool) {
        for (_, bn) in &self.layers {
            if let Some(bn) = bn {
                bn.set_training(t);
            }
        }
    }
}

impl FusedModule for FusedDiscriminator {
    fn b(&self) -> usize {
        self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_nn::Tape;

    #[test]
    fn generator_produces_images_in_range() {
        let mut rng = Rng::seed_from(0);
        let g = Generator::new(DcganCfg::mini(), &mut rng);
        let tape = Tape::new();
        let z = tape.leaf(rng.randn([2, 16, 1, 1]));
        let img = g.forward(&z);
        assert_eq!(img.dims(), vec![2, 3, 16, 16]);
        let v = img.value();
        assert!(v.max_value() <= 1.0 && v.min_value() >= -1.0);
    }

    #[test]
    fn discriminator_emits_one_logit() {
        let mut rng = Rng::seed_from(1);
        let d = Discriminator::new(DcganCfg::mini(), &mut rng);
        let tape = Tape::new();
        let x = tape.leaf(rng.randn([3, 3, 16, 16]));
        assert_eq!(d.forward(&x).dims(), vec![3, 1]);
    }

    #[test]
    fn fused_gan_shapes() {
        let mut rng = Rng::seed_from(2);
        let b = 3;
        let g = FusedGenerator::new(b, DcganCfg::mini(), &mut rng);
        let d = FusedDiscriminator::new(b, DcganCfg::mini(), &mut rng);
        let tape = Tape::new();
        let z = tape.leaf(rng.randn([2, b * 16, 1, 1]));
        let img = g.forward(&z);
        assert_eq!(img.dims(), vec![2, b * 3, 16, 16]);
        let logits = d.forward(&img);
        assert_eq!(logits.dims(), vec![2, b]);
    }

    #[test]
    fn one_gan_training_step_runs() {
        use hfta_nn::{Adam, Optimizer};
        let mut rng = Rng::seed_from(3);
        let cfg = DcganCfg::mini();
        let g = Generator::new(cfg, &mut rng);
        let d = Discriminator::new(cfg, &mut rng);
        let mut opt_d = Adam::new(d.parameters(), 2e-4);
        let mut opt_g = Adam::new(g.parameters(), 2e-4);
        let real = rng.rand([4, 3, 16, 16], -1.0, 1.0);
        // D step.
        opt_d.zero_grad();
        let tape = Tape::new();
        let d_real = d.forward(&tape.leaf(real));
        let loss_real = d_real.bce_with_logits(&hfta_tensor::Tensor::ones([4, 1]));
        let z = tape.leaf(rng.randn([4, 16, 1, 1]));
        let fake = g.forward(&z);
        let d_fake = d.forward(&tape.leaf(fake.value())); // detached fake
        let loss_fake = d_fake.bce_with_logits(&hfta_tensor::Tensor::zeros([4, 1]));
        let d_loss = loss_real.add(&loss_fake);
        d_loss.backward();
        opt_d.step();
        // G step.
        opt_g.zero_grad();
        let tape = Tape::new();
        let z = tape.leaf(rng.randn([4, 16, 1, 1]));
        let fake = g.forward(&z);
        let d_out = d.forward(&fake);
        let g_loss = d_out.bce_with_logits(&hfta_tensor::Tensor::ones([4, 1]));
        let before = g_loss.item();
        g_loss.backward();
        opt_g.step();
        assert!(before.is_finite());
        assert!(d_loss.item().is_finite());
    }

    #[test]
    fn paper_cfg_builds_deep_stacks() {
        let cfg = DcganCfg::paper();
        assert_eq!(cfg.stages(), 4);
        let mut rng = Rng::seed_from(4);
        let g = Generator::new(cfg, &mut rng);
        // 5 deconvs: 4->8->16->32->64 plus the latent projection.
        assert_eq!(g.layers.len(), 5);
    }
}
