//! ResNet-18 (He et al., 2016), CIFAR variant, in serial and HFTA-fused
//! form — the paper's conventional-model check (Figures 3 and 5).

use hfta_core::format::conv_to_array;
use hfta_core::ops::{FusedBatchNorm, FusedConv2d, FusedLinear, FusedModule};
use hfta_nn::layers::{BatchNorm, Conv2d, Conv2dCfg, Linear, LinearCfg};
use hfta_nn::{Module, Parameter, Var};
use hfta_tensor::Rng;

/// ResNet configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResNetCfg {
    /// Stem width (64 in the paper's ResNet-18).
    pub width: usize,
    /// Blocks per stage (ResNet-18 uses `[2, 2, 2, 2]`; the mini config
    /// trims stages for CPU runs).
    pub stages: usize,
    /// Output classes.
    pub classes: usize,
}

impl ResNetCfg {
    /// CPU-friendly mini: width 8, 2 stages.
    pub fn mini(classes: usize) -> Self {
        ResNetCfg {
            width: 8,
            stages: 2,
            classes,
        }
    }

    /// Paper-scale ResNet-18 (CIFAR stem): width 64, 4 stages of 2 blocks.
    pub fn paper(classes: usize) -> Self {
        ResNetCfg {
            width: 64,
            stages: 4,
            classes,
        }
    }
}

/// A residual basic block, generic over conv/norm layer types so the same
/// structure serves the serial (`Conv2d`/`BatchNorm`) and fused
/// (`FusedConv2d`/`FusedBatchNorm`) variants.
#[derive(Debug)]
struct BasicBlock<C, B> {
    conv1: C,
    bn1: B,
    conv2: C,
    bn2: B,
    down: Option<(C, B)>,
}

impl<C: Module, B: Module> BasicBlock<C, B> {
    fn forward(&self, x: &Var) -> Var {
        let h = self.bn1.forward(&self.conv1.forward(x)).relu();
        let h = self.bn2.forward(&self.conv2.forward(&h));
        let skip = match &self.down {
            Some((conv, bn)) => bn.forward(&conv.forward(x)),
            None => x.clone(),
        };
        h.add(&skip).relu()
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut ps = [
            self.conv1.parameters(),
            self.bn1.parameters(),
            self.conv2.parameters(),
            self.bn2.parameters(),
        ]
        .concat();
        if let Some((c, b)) = &self.down {
            ps.extend(c.parameters());
            ps.extend(b.parameters());
        }
        ps
    }

    fn set_training(&self, t: bool) {
        self.bn1.set_training(t);
        self.bn2.set_training(t);
        if let Some((_, b)) = &self.down {
            b.set_training(t);
        }
    }
}

fn conv3(cin: usize, cout: usize, stride: usize) -> Conv2dCfg {
    Conv2dCfg::new(cin, cout, 3)
        .stride(stride)
        .padding(1)
        .bias(false)
}

fn conv1(cin: usize, cout: usize, stride: usize) -> Conv2dCfg {
    Conv2dCfg::new(cin, cout, 1).stride(stride).bias(false)
}

/// Serial ResNet (CIFAR stem, 2 basic blocks per stage).
#[derive(Debug)]
pub struct ResNet {
    stem: Conv2d,
    stem_bn: BatchNorm,
    blocks: Vec<BasicBlock<Conv2d, BatchNorm>>,
    fc: Linear,
}

impl ResNet {
    /// Builds the network.
    pub fn new(cfg: ResNetCfg, rng: &mut Rng) -> Self {
        let w = cfg.width;
        let mut blocks = Vec::new();
        let mut cin = w;
        for stage in 0..cfg.stages {
            let cout = w << stage;
            let stride = if stage == 0 { 1 } else { 2 };
            for block in 0..2 {
                let (s, ci) = if block == 0 { (stride, cin) } else { (1, cout) };
                let down = (s != 1 || ci != cout)
                    .then(|| (Conv2d::new(conv1(ci, cout, s), rng), BatchNorm::new(cout)));
                blocks.push(BasicBlock {
                    conv1: Conv2d::new(conv3(ci, cout, s), rng),
                    bn1: BatchNorm::new(cout),
                    conv2: Conv2d::new(conv3(cout, cout, 1), rng),
                    bn2: BatchNorm::new(cout),
                    down,
                });
            }
            cin = cout;
        }
        ResNet {
            stem: Conv2d::new(conv3(3, w, 1), rng),
            stem_bn: BatchNorm::new(w),
            blocks,
            fc: Linear::new(LinearCfg::new(cin, cfg.classes), rng),
        }
    }
}

impl Module for ResNet {
    /// `x [N, 3, S, S]` → logits `[N, classes]`.
    fn forward(&self, x: &Var) -> Var {
        let mut h = self.stem_bn.forward(&self.stem.forward(x)).relu();
        for b in &self.blocks {
            h = b.forward(&h);
        }
        // Global average pool.
        let pooled = h.mean_axis_keep(3).mean_axis_keep(2);
        let dims = pooled.dims();
        let flat = pooled.reshape(&[dims[0], dims[1]]);
        self.fc.forward(&flat)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut ps = self.stem.parameters();
        ps.extend(self.stem_bn.parameters());
        for b in &self.blocks {
            ps.extend(b.parameters());
        }
        ps.extend(self.fc.parameters());
        ps
    }

    fn set_training(&self, t: bool) {
        self.stem_bn.set_training(t);
        for b in &self.blocks {
            b.set_training(t);
        }
    }
}

/// HFTA-fused ResNet array over conv format `[N, B*3, S, S]`, producing
/// array-format logits `[B, N, classes]`.
#[derive(Debug)]
pub struct FusedResNet {
    stem: FusedConv2d,
    stem_bn: FusedBatchNorm,
    blocks: Vec<BasicBlock<FusedConv2d, FusedBatchNorm>>,
    fc: FusedLinear,
    b: usize,
}

impl FusedResNet {
    /// Builds a `b`-wide fused array.
    pub fn new(b: usize, cfg: ResNetCfg, rng: &mut Rng) -> Self {
        let w = cfg.width;
        let mut blocks = Vec::new();
        let mut cin = w;
        for stage in 0..cfg.stages {
            let cout = w << stage;
            let stride = if stage == 0 { 1 } else { 2 };
            for block in 0..2 {
                let (s, ci) = if block == 0 { (stride, cin) } else { (1, cout) };
                let down = (s != 1 || ci != cout).then(|| {
                    (
                        FusedConv2d::new(b, conv1(ci, cout, s), rng),
                        FusedBatchNorm::new(b, cout),
                    )
                });
                blocks.push(BasicBlock {
                    conv1: FusedConv2d::new(b, conv3(ci, cout, s), rng),
                    bn1: FusedBatchNorm::new(b, cout),
                    conv2: FusedConv2d::new(b, conv3(cout, cout, 1), rng),
                    bn2: FusedBatchNorm::new(b, cout),
                    down,
                });
            }
            cin = cout;
        }
        FusedResNet {
            stem: FusedConv2d::new(b, conv3(3, w, 1), rng),
            stem_bn: FusedBatchNorm::new(b, w),
            blocks,
            fc: FusedLinear::new(b, LinearCfg::new(cin, cfg.classes), rng),
            b,
        }
    }
}

impl Module for FusedResNet {
    fn forward(&self, x: &Var) -> Var {
        let mut h = self.stem_bn.forward(&self.stem.forward(x)).relu();
        for blk in &self.blocks {
            h = blk.forward(&h);
        }
        let pooled = h.mean_axis_keep(3).mean_axis_keep(2);
        let dims = pooled.dims();
        let flat = pooled.reshape(&[dims[0], dims[1]]); // [N, B*C]
        self.fc.forward(&conv_to_array(&flat, self.b))
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut ps = self.stem.parameters();
        ps.extend(self.stem_bn.parameters());
        for b in &self.blocks {
            ps.extend(b.parameters());
        }
        ps.extend(self.fc.parameters());
        ps
    }

    fn set_training(&self, t: bool) {
        self.stem_bn.set_training(t);
        for b in &self.blocks {
            b.set_training(t);
        }
    }
}

impl FusedModule for FusedResNet {
    fn b(&self) -> usize {
        self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_nn::Tape;

    #[test]
    fn serial_forward_shapes() {
        let mut rng = Rng::seed_from(0);
        let m = ResNet::new(ResNetCfg::mini(10), &mut rng);
        let tape = Tape::new();
        let y = m.forward(&tape.leaf(rng.randn([2, 3, 8, 8])));
        assert_eq!(y.dims(), vec![2, 10]);
    }

    #[test]
    fn fused_forward_shapes() {
        let mut rng = Rng::seed_from(1);
        let m = FusedResNet::new(3, ResNetCfg::mini(10), &mut rng);
        let tape = Tape::new();
        let y = m.forward(&tape.leaf(rng.randn([2, 9, 8, 8])));
        assert_eq!(y.dims(), vec![3, 2, 10]);
    }

    #[test]
    fn downsample_blocks_present() {
        let mut rng = Rng::seed_from(2);
        let m = ResNet::new(ResNetCfg::mini(10), &mut rng);
        // Stage 2's first block downsamples.
        assert!(m.blocks[2].down.is_some());
        assert!(m.blocks[0].down.is_none());
    }

    #[test]
    fn training_step_decreases_loss() {
        use hfta_nn::{Optimizer, Sgd};
        let mut rng = Rng::seed_from(3);
        let m = ResNet::new(ResNetCfg::mini(4), &mut rng);
        let mut opt = Sgd::new(m.parameters(), 0.05, 0.9);
        let x = rng.randn([8, 3, 8, 8]);
        let t: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..10 {
            opt.zero_grad();
            let tape = Tape::new();
            let loss = m.forward(&tape.leaf(x.clone())).cross_entropy(&t);
            if step == 0 {
                first = loss.item();
            }
            last = loss.item();
            loss.backward();
            opt.step();
        }
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn fused_param_count_is_b_times_serial() {
        let mut rng = Rng::seed_from(4);
        let cfg = ResNetCfg::mini(10);
        let serial: usize = ResNet::new(cfg, &mut rng)
            .parameters()
            .iter()
            .map(|p| p.numel())
            .sum();
        let fused: usize = FusedResNet::new(5, cfg, &mut rng)
            .parameters()
            .iter()
            .map(|p| p.numel())
            .sum();
        assert_eq!(fused, 5 * serial);
    }
}
