//! AlexNet (Krizhevsky et al., 2012) — the paper's Figure 2 example of
//! "how to enable HFTA": the model definition is identical between the
//! serial and fused variants; only the operator classes change.

use hfta_core::format::conv_to_array;
use hfta_core::ops::{FusedConv2d, FusedLinear, FusedModule};
use hfta_nn::layers::{Conv2d, Conv2dCfg, Dropout, Linear, LinearCfg, MaxPool2d};
use hfta_nn::{Module, Parameter, Var};
use hfta_tensor::Rng;

/// AlexNet configuration (CIFAR-scale mini by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlexNetCfg {
    /// Base width (64 in the original).
    pub width: usize,
    /// Output classes.
    pub classes: usize,
    /// Input image side (must be divisible by 8).
    pub image: usize,
}

impl AlexNetCfg {
    /// CPU-friendly mini configuration for 16x16 inputs.
    pub fn mini(classes: usize) -> Self {
        AlexNetCfg {
            width: 8,
            classes,
            image: 16,
        }
    }

    fn spatial_out(&self) -> usize {
        self.image / 8 // three stride-2 max pools
    }
}

/// Serial AlexNet (CIFAR-style kernel sizes).
#[derive(Debug)]
pub struct AlexNet {
    convs: Vec<Conv2d>,
    pool: MaxPool2d,
    drop1: Dropout,
    fc1: Linear,
    drop2: Dropout,
    fc2: Linear,
    fc3: Linear,
}

impl AlexNet {
    /// Builds the network.
    pub fn new(cfg: AlexNetCfg, rng: &mut Rng) -> Self {
        let w = cfg.width;
        let convs = vec![
            Conv2d::new(Conv2dCfg::new(3, w, 3).padding(1), rng),
            Conv2d::new(Conv2dCfg::new(w, 2 * w, 3).padding(1), rng),
            Conv2d::new(Conv2dCfg::new(2 * w, 4 * w, 3).padding(1), rng),
            Conv2d::new(Conv2dCfg::new(4 * w, 4 * w, 3).padding(1), rng),
            Conv2d::new(Conv2dCfg::new(4 * w, 2 * w, 3).padding(1), rng),
        ];
        let s = cfg.spatial_out();
        let flat = 2 * w * s * s;
        AlexNet {
            convs,
            pool: MaxPool2d::new(2),
            drop1: Dropout::new(0.5, rng.split().below(u32::MAX as usize) as u64),
            fc1: Linear::new(LinearCfg::new(flat, 4 * w), rng),
            drop2: Dropout::new(0.5, rng.split().below(u32::MAX as usize) as u64),
            fc2: Linear::new(LinearCfg::new(4 * w, 4 * w), rng),
            fc3: Linear::new(LinearCfg::new(4 * w, cfg.classes), rng),
        }
    }
}

impl Module for AlexNet {
    /// `x [N, 3, S, S]` → logits `[N, classes]`.
    fn forward(&self, x: &Var) -> Var {
        let mut h = x.clone();
        for (i, conv) in self.convs.iter().enumerate() {
            h = conv.forward(&h).relu();
            // Pools after conv 0, 1 and 4 (the classic 3-pool layout).
            if i == 0 || i == 1 || i == 4 {
                h = self.pool.forward(&h);
            }
        }
        let h = h.flatten_from(1);
        let h = self.fc1.forward(&self.drop1.forward(&h)).relu();
        let h = self.fc2.forward(&self.drop2.forward(&h)).relu();
        self.fc3.forward(&h)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut ps: Vec<Parameter> = self.convs.iter().flat_map(|c| c.parameters()).collect();
        ps.extend(self.fc1.parameters());
        ps.extend(self.fc2.parameters());
        ps.extend(self.fc3.parameters());
        ps
    }

    fn set_training(&self, t: bool) {
        self.drop1.set_training(t);
        self.drop2.set_training(t);
    }
}

/// HFTA-fused AlexNet array — per the paper's Figure 2, the definition
/// mirrors [`AlexNet`] with the operator classes swapped for their fused
/// counterparts.
#[derive(Debug)]
pub struct FusedAlexNet {
    convs: Vec<FusedConv2d>,
    pool: MaxPool2d,
    drop1: Dropout,
    fc1: FusedLinear,
    drop2: Dropout,
    fc2: FusedLinear,
    fc3: FusedLinear,
    b: usize,
}

impl FusedAlexNet {
    /// Builds a `b`-wide fused array.
    pub fn new(b: usize, cfg: AlexNetCfg, rng: &mut Rng) -> Self {
        let w = cfg.width;
        let convs = vec![
            FusedConv2d::new(b, Conv2dCfg::new(3, w, 3).padding(1), rng),
            FusedConv2d::new(b, Conv2dCfg::new(w, 2 * w, 3).padding(1), rng),
            FusedConv2d::new(b, Conv2dCfg::new(2 * w, 4 * w, 3).padding(1), rng),
            FusedConv2d::new(b, Conv2dCfg::new(4 * w, 4 * w, 3).padding(1), rng),
            FusedConv2d::new(b, Conv2dCfg::new(4 * w, 2 * w, 3).padding(1), rng),
        ];
        let s = cfg.spatial_out();
        let flat = 2 * w * s * s;
        FusedAlexNet {
            convs,
            pool: MaxPool2d::new(2),
            drop1: Dropout::new(0.5, rng.split().below(u32::MAX as usize) as u64),
            fc1: FusedLinear::new(b, LinearCfg::new(flat, 4 * w), rng),
            drop2: Dropout::new(0.5, rng.split().below(u32::MAX as usize) as u64),
            fc2: FusedLinear::new(b, LinearCfg::new(4 * w, 4 * w), rng),
            fc3: FusedLinear::new(b, LinearCfg::new(4 * w, cfg.classes), rng),
            b,
        }
    }
}

impl Module for FusedAlexNet {
    /// Conv format `[N, B*3, S, S]` → array format `[B, N, classes]`.
    fn forward(&self, x: &Var) -> Var {
        let mut h = x.clone();
        for (i, conv) in self.convs.iter().enumerate() {
            h = conv.forward(&h).relu();
            if i == 0 || i == 1 || i == 4 {
                h = self.pool.forward(&h);
            }
        }
        // [N, B*C, s, s]: flatten each model's block, then to array format.
        let dims = h.dims();
        let (n, bc, s1, s2) = (dims[0], dims[1], dims[2], dims[3]);
        let c = bc / self.b;
        let flat = h
            .reshape(&[n, self.b, c * s1 * s2])
            .reshape(&[n, self.b * c * s1 * s2]);
        let arr = conv_to_array(&flat, self.b);
        let h = self.fc1.forward(&self.drop1.forward(&arr)).relu();
        let h = self.fc2.forward(&self.drop2.forward(&h)).relu();
        self.fc3.forward(&h)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut ps: Vec<Parameter> = self.convs.iter().flat_map(|c| c.parameters()).collect();
        ps.extend(self.fc1.parameters());
        ps.extend(self.fc2.parameters());
        ps.extend(self.fc3.parameters());
        ps
    }

    fn set_training(&self, t: bool) {
        self.drop1.set_training(t);
        self.drop2.set_training(t);
    }
}

impl FusedModule for FusedAlexNet {
    fn b(&self) -> usize {
        self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_nn::Tape;

    #[test]
    fn serial_forward_shapes() {
        let mut rng = Rng::seed_from(0);
        let m = AlexNet::new(AlexNetCfg::mini(10), &mut rng);
        let tape = Tape::new();
        let y = m.forward(&tape.leaf(rng.randn([2, 3, 16, 16])));
        assert_eq!(y.dims(), vec![2, 10]);
    }

    #[test]
    fn fused_forward_shapes() {
        let mut rng = Rng::seed_from(1);
        let m = FusedAlexNet::new(4, AlexNetCfg::mini(10), &mut rng);
        let tape = Tape::new();
        let y = m.forward(&tape.leaf(rng.randn([2, 12, 16, 16])));
        assert_eq!(y.dims(), vec![4, 2, 10]);
    }

    #[test]
    fn param_scaling() {
        let mut rng = Rng::seed_from(2);
        let cfg = AlexNetCfg::mini(10);
        let serial: usize = AlexNet::new(cfg, &mut rng)
            .parameters()
            .iter()
            .map(|p| p.numel())
            .sum();
        let fused: usize = FusedAlexNet::new(3, cfg, &mut rng)
            .parameters()
            .iter()
            .map(|p| p.numel())
            .sum();
        assert_eq!(fused, 3 * serial);
    }
}
