//! Lowering operator traces to simulator kernels.
//!
//! Each forward [`OpSpec`] becomes one GPU kernel; stateful GEMM ops add
//! two backward kernels (data-gradient and weight-gradient GEMMs, the
//! standard 3x-forward-cost rule of thumb), other ops add one. One
//! optimizer kernel per ~4M parameters closes the iteration. The same
//! lowering annotates TPU information (GEMM dims for systolic padding,
//! channel widths for XLA layout padding).

use hfta_core::rules::OpSpec;
use hfta_sim::{GemmDims, JobMemory, Kernel, TrainingJob};

/// Output-tile granularity of GEMM-backed kernels.
const GEMM_TILE_ELEMS: u64 = 128 * 128;
/// Flat-tile granularity of elementwise kernels.
const ELT_TILE_ELEMS: u64 = 16 * 1024;

fn conv_out(sz: usize, k: usize, s: usize, p: usize) -> usize {
    (sz + 2 * p - k) / s + 1
}

/// GEMM view of a spec, when it has one.
fn gemm_dims(spec: &OpSpec) -> Option<GemmDims> {
    match *spec {
        OpSpec::Conv2d {
            n,
            c_in,
            c_out,
            h,
            w,
            kernel,
            stride,
            padding,
            groups,
        } => Some(GemmDims {
            m: (n * conv_out(h, kernel, stride, padding) * conv_out(w, kernel, stride, padding))
                as u64,
            n: c_out as u64,
            k: ((c_in / groups) * kernel * kernel) as u64,
            batch: 1,
        }),
        OpSpec::Conv1d {
            n,
            c_in,
            c_out,
            l,
            kernel,
            stride,
            padding,
            groups,
        } => Some(GemmDims {
            m: (n * conv_out(l, kernel, stride, padding)) as u64,
            n: c_out as u64,
            k: ((c_in / groups) * kernel) as u64,
            batch: 1,
        }),
        OpSpec::ConvTranspose2d {
            n,
            c_in,
            c_out,
            h,
            w,
            kernel,
            stride,
            padding,
            groups,
        } => {
            let ho = (h - 1) * stride + kernel - 2 * padding;
            let wo = (w - 1) * stride + kernel - 2 * padding;
            Some(GemmDims {
                m: (n * ho * wo) as u64,
                n: c_out as u64,
                k: ((c_in / groups) * kernel * kernel) as u64,
                batch: 1,
            })
        }
        OpSpec::Linear {
            n,
            f_in,
            f_out,
            arrays,
        } => Some(GemmDims {
            m: n as u64,
            n: f_out as u64,
            k: f_in as u64,
            batch: arrays as u64,
        }),
        _ => None,
    }
}

/// The channel-like axis XLA pads on TPUs.
fn pad_dim(spec: &OpSpec) -> Option<u64> {
    match *spec {
        OpSpec::Conv2d { c_out, .. }
        | OpSpec::Conv1d { c_out, .. }
        | OpSpec::ConvTranspose2d { c_out, .. } => Some(c_out as u64),
        OpSpec::Linear { f_out, .. } => Some(f_out as u64),
        OpSpec::BatchNorm1d { c, .. } | OpSpec::BatchNorm2d { c, .. } => Some(c as u64),
        OpSpec::MaxPool2d { c, .. } | OpSpec::Dropout2d { c, .. } => Some(c as u64),
        _ => None,
    }
}

/// Lowers one forward spec to a kernel.
pub fn forward_kernel(spec: &OpSpec) -> Kernel {
    let gemm = gemm_dims(spec);
    let tiles = match gemm {
        Some(g) => (g.m.div_ceil(128) * g.n.div_ceil(128) * g.batch).max(1),
        None => (spec.activation_elems() as u64).div_ceil(ELT_TILE_ELEMS),
    }
    .max(1);
    let _ = GEMM_TILE_ELEMS;
    Kernel {
        flops: spec.flops(),
        bytes: spec.bytes(),
        tiles,
        gemm,
        pad_dim: pad_dim(spec),
        // cuDNN of the paper's era lacked tensor-core kernels for
        // transposed convolutions (the paper's §5.1 DCGAN AMP anomaly).
        tc_eligible: !matches!(spec, OpSpec::ConvTranspose2d { .. }),
    }
}

/// Lowers a forward trace into the full iteration kernel stream
/// (forward + backward + optimizer).
pub fn iteration_kernels(trace: &[OpSpec]) -> Vec<Kernel> {
    let mut kernels = Vec::new();
    for spec in trace {
        kernels.push(forward_kernel(spec));
    }
    // Backward, in reverse order.
    for spec in trace.iter().rev() {
        let fwd = forward_kernel(spec);
        if spec.is_gemm() {
            // Data-grad and weight-grad GEMMs.
            kernels.push(fwd);
            kernels.push(fwd);
        } else {
            kernels.push(fwd);
        }
    }
    // Optimizer: one elementwise kernel per parameter-holding op.
    let params: usize = trace.iter().map(|s| s.param_count()).sum();
    if params > 0 {
        let holders = trace.iter().filter(|s| s.param_count() > 0).count() as u64;
        let per = (params as u64 / holders.max(1)).max(1);
        for _ in 0..holders {
            // Adam reads/writes weight, grad, m, v: ~8 values per param.
            kernels.push(Kernel {
                flops: 8 * per,
                bytes: 32 * per,
                tiles: per.div_ceil(ELT_TILE_ELEMS).max(1),
                gemm: None,
                pad_dim: None,
                tc_eligible: false,
            });
        }
    }
    kernels
}

/// Device memory model for one job running `trace` (per model, GiB):
/// weights + Adam state, saved activations + their gradients, and a
/// cuDNN-style workspace.
pub fn job_memory(trace: &[OpSpec]) -> JobMemory {
    let params: usize = trace.iter().map(|s| s.param_count()).sum();
    // Only outputs that must be *saved* for the backward pass count:
    // stateful ops and pooling. Activation-function and dropout outputs
    // are recomputed-from/folded-into their producer in practice.
    let activations: usize = trace
        .iter()
        .filter(|s| s.param_count() > 0 || matches!(s, OpSpec::MaxPool2d { .. }))
        .map(|s| s.activation_elems())
        .sum();
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    JobMemory {
        // value + grad + Adam m + v = 4 copies.
        weights_gib: (params * 4 * 4) as f64 / GIB,
        // saved forward activations (gradient buffers are transient).
        activations_gib: (activations * 4) as f64 / GIB,
        workspace_gib: 0.15,
    }
}

/// Builds a complete simulator job from a forward trace.
///
/// `models` is 1 for serial jobs or `B` for a fused trace (i.e. a trace
/// already mapped through [`OpSpec::fused`]); `examples` is the per-model
/// minibatch size, `host_us` the per-iteration host data-pipeline time and
/// `sync_us` the per-kernel framework gap (see
/// [`TrainingJob::sync_us_per_kernel`]).
pub fn build_job(
    name: impl Into<String>,
    trace: &[OpSpec],
    models: usize,
    examples: usize,
    host_us: f64,
    sync_us: f64,
    cpu_gap_fraction: f64,
) -> TrainingJob {
    TrainingJob {
        name: name.into(),
        kernels: iteration_kernels(trace),
        host_us,
        sync_us_per_kernel: sync_us,
        cpu_gap_fraction,
        memory: job_memory(trace),
        models_per_job: models,
        examples_per_iteration: examples,
    }
}

/// Maps a per-model trace through the Table 6 fusion transform.
pub fn fused_trace(trace: &[OpSpec], b: usize) -> Vec<OpSpec> {
    trace.iter().map(|s| s.fused(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces;

    #[test]
    fn forward_kernel_carries_gemm_info() {
        let spec = OpSpec::Conv2d {
            n: 8,
            c_in: 3,
            c_out: 64,
            h: 32,
            w: 32,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        };
        let k = forward_kernel(&spec);
        assert!(k.is_gemm());
        assert_eq!(k.gemm.unwrap().n, 64);
        assert_eq!(k.pad_dim, Some(64));
        assert!(k.tiles > 1);
    }

    #[test]
    fn backward_roughly_doubles_kernels() {
        let trace = traces::pointnet_cls();
        let kernels = iteration_kernels(&trace);
        assert!(kernels.len() > 2 * trace.len());
        // GEMM flops in one iteration are ~3x forward GEMM flops.
        let fwd_gemm: u64 = trace
            .iter()
            .filter(|s| s.is_gemm())
            .map(|s| s.flops())
            .sum();
        let all_gemm: u64 = kernels
            .iter()
            .filter(|k| k.is_gemm())
            .map(|k| k.flops)
            .sum();
        assert_eq!(all_gemm, 3 * fwd_gemm);
    }

    #[test]
    fn fused_trace_multiplies_work_linearly() {
        let trace = traces::dcgan_iteration();
        let fused = fused_trace(&trace, 4);
        let f1: u64 = trace.iter().map(|s| s.flops()).sum();
        let f4: u64 = fused.iter().map(|s| s.flops()).sum();
        assert_eq!(f4, 4 * f1);
        // Same kernel count — that is the whole point of fusion.
        assert_eq!(fused.len(), trace.len());
    }

    #[test]
    fn memory_grows_with_fusion_width() {
        let trace = traces::pointnet_cls();
        let m1 = job_memory(&trace);
        let m4 = job_memory(&fused_trace(&trace, 4));
        assert!(m4.weights_gib > 3.9 * m1.weights_gib);
        assert!(m4.activations_gib > 3.9 * m1.activations_gib);
        // Workspace is shared, not duplicated.
        assert_eq!(m4.workspace_gib, m1.workspace_gib);
    }

    #[test]
    fn pointnet_memory_magnitude_is_plausible() {
        // The paper fits ~5-9 PointNet-cls models on a 16 GiB V100; the
        // per-model footprint must land in the ~0.5-2.5 GiB range.
        let m = job_memory(&traces::pointnet_cls());
        let total = m.total_gib();
        assert!((0.3..3.0).contains(&total), "footprint {total} GiB");
    }

    #[test]
    fn build_job_wires_fields() {
        let trace = traces::resnet18();
        let job = build_job(
            "resnet18",
            &trace,
            1,
            traces::RESNET_BATCH,
            5_000.0,
            100.0,
            0.3,
        );
        assert_eq!(job.models_per_job, 1);
        assert_eq!(job.examples_per_iteration, 1000);
        assert!(job.kernel_count() > 40);
    }
}
