//! # hfta-models
//!
//! The HFTA paper's benchmark models in three forms:
//!
//! 1. **Executable serial models** on `hfta-nn` (PointNet classification
//!    and segmentation, DCGAN, ResNet-18, AlexNet) at CPU-tractable mini
//!    scales — used for the convergence-equivalence experiments (paper
//!    §3.3 / Figure 3);
//! 2. **Executable fused arrays** on `hfta-core` — the same architectures
//!    with every operator swapped for its horizontally fused counterpart
//!    (the paper's Figure 2 recipe);
//! 3. **Full-size operator traces** at the paper's batch sizes, lowered to
//!    `hfta-sim` kernels for the throughput experiments (Figures 4–8).

#![warn(missing_docs)]

pub mod alexnet;
pub mod dcgan;
pub mod graphs;
pub mod lower;
pub mod lower_plan;
pub mod pointnet;
pub mod resnet;
pub mod traces;
pub mod workloads;

pub use alexnet::{AlexNet, AlexNetCfg, FusedAlexNet};
pub use dcgan::{DcganCfg, Discriminator, FusedDiscriminator, FusedGenerator, Generator};
pub use graphs::{
    discriminator_graph, discriminator_variant_graph, generator_graph, pointnet_cls_graph,
    resnet_graph,
};
pub use lower_plan::{lower_graph, lower_op, planned_step_time_s, serial_step_time_s, PlanSimCfg};
pub use pointnet::{
    FusedPointNetCls, FusedPointNetSeg, FusedStn3d, PointNetCfg, PointNetCls, PointNetSeg, Stn3d,
};
pub use resnet::{FusedResNet, ResNet, ResNetCfg};
pub use workloads::Workload;
