//! Flight-journal integrity for the serve engine: every trial must emit
//! a well-formed causal event sequence through preemption, checkpoint,
//! and restore — and because recovery re-emits the journaled flight
//! history before resuming, the stream stays well-formed *across a
//! service restart*, with the four SLO buckets still telescoping
//! bit-exactly to end-to-end latency.

use std::fs;
use std::path::PathBuf;

use hfta_sched::asha::RungPolicy;
use hfta_sched::linear::{LinearBackend, LinearTrialCfg};
use hfta_serve::engine::{ServeCfg, ServeCmd, ServeEngine, SweepSpec};
use hfta_serve::AdmitPolicy;
use hfta_sim::{DeviceFleet, DeviceSpec};
use hfta_telemetry::flight::{derive_all_strict, SloRollup};
use hfta_telemetry::{FlightKind, Profiler};

fn fleet() -> DeviceFleet {
    DeviceFleet::heterogeneous(
        &[(DeviceSpec::v100(), 1), (DeviceSpec::rtx6000(), 1)],
        false,
    )
}

fn cfg(dir: Option<PathBuf>) -> ServeCfg {
    ServeCfg {
        policy: AdmitPolicy::FairShare,
        rung: RungPolicy {
            base_steps: 2,
            eta: 2,
            rungs: 3,
        },
        width_cap: 6,
        checkpoint_dir: dir,
    }
}

fn sweep(tenant: &str, priority: f64, n: usize, salt: usize) -> SweepSpec<LinearTrialCfg> {
    SweepSpec {
        tenant: tenant.to_string(),
        priority,
        configs: (0..n)
            .map(|k| LinearTrialCfg {
                lr: 0.004 * (1.0 + ((k + salt) % 12) as f32),
                poison_at: ((k + salt) % 9 == 4).then_some(1),
            })
            .collect(),
        archs: Vec::new(),
    }
}

fn commands() -> Vec<(f64, ServeCmd<LinearTrialCfg>)> {
    vec![
        (0.0, ServeCmd::Submit(sweep("batch-a", 1.0, 10, 0))),
        (0.0003, ServeCmd::Submit(sweep("batch-b", 1.0, 8, 3))),
        (0.0012, ServeCmd::Submit(sweep("urgent", 6.0, 4, 7))),
    ]
}

#[test]
fn serve_journal_is_well_formed_with_preemption_and_checkpoints() {
    let profiler = Profiler::new("serve-flight");
    let _guard = profiler.install();
    let _exp = profiler.experiment("fair-share");
    let dir = std::env::temp_dir().join(format!("hfta-serve-slo-full-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let mut eng = ServeEngine::new(
        LinearBackend::default(),
        fleet(),
        cfg(Some(dir.clone())),
        commands(),
    )
    .unwrap();
    eng.drain().unwrap();
    let run = eng.finish();
    assert!(run.report.preemptions > 0, "stream should preempt");
    assert!(run.report.checkpoints > 0);

    let events = profiler.flight_events();
    assert!(events.iter().any(|e| e.kind == FlightKind::Preempt));
    assert!(events.iter().any(|e| e.kind == FlightKind::Checkpoint));
    let slos = derive_all_strict(&events).expect("well-formed serve journal");
    assert_eq!(slos.len(), run.outcomes.len());
    for slo in &slos {
        assert_eq!(
            slo.queue_ns + slo.compute_ns + slo.surgery_ns + slo.quarantine_ns,
            slo.e2e_ns(),
            "trial {}: SLO buckets must telescope to e2e",
            slo.trial
        );
    }
    // Preempted/buffered time lands in the surgery bucket, so the fleet
    // rollup must attribute nonzero surgery (barrier + preemption waits).
    let rollup = SloRollup::from_slos(slos);
    assert!(rollup.surgery_us > 0.0);
    assert!(rollup.compute_us > 0.0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn slo_decomposition_spans_a_service_restart() {
    let profiler = Profiler::new("serve-flight-restart");
    let _guard = profiler.install();
    let dir = std::env::temp_dir().join(format!("hfta-serve-slo-restart-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    // Crash half-way through, in its own experiment scope.
    let crashed_batches = {
        let _exp = profiler.experiment("crashed-half");
        let mut eng = ServeEngine::new(
            LinearBackend::default(),
            fleet(),
            cfg(Some(dir.clone())),
            commands(),
        )
        .unwrap();
        let mut n = 0;
        while n < 14 && eng.step().unwrap() {
            n += 1;
        }
        n
    };
    assert!(crashed_batches > 4, "crash site must be mid-run");

    // Recover in a fresh scope: the journaled flight history is
    // re-emitted first, so this scope holds each trial's *complete*
    // timeline — pre-crash events, the Restore marker, and everything
    // after — and strict derivation must accept it.
    let _exp = profiler.experiment("recovered");
    let mut eng = ServeEngine::recover(
        LinearBackend::default(),
        fleet(),
        cfg(Some(dir.clone())),
        commands(),
    )
    .unwrap();
    eng.drain().unwrap();
    let run = eng.finish();
    assert!(run.report.restores > 0);

    let events = profiler.flight_events();
    assert!(
        events.iter().any(|e| e.kind == FlightKind::Restore),
        "recovery must mark restored trials"
    );
    let slos = derive_all_strict(&events).expect("restart-spanning journal is well-formed");
    assert_eq!(slos.len(), run.outcomes.len());
    for slo in &slos {
        assert_eq!(
            slo.queue_ns + slo.compute_ns + slo.surgery_ns + slo.quarantine_ns,
            slo.e2e_ns(),
            "trial {}: buckets must telescope across the restart",
            slo.trial
        );
    }
    // The report's fleet decomposition is the same fold.
    let rollup = SloRollup::from_slos(slos);
    let sum = rollup.queue_us + rollup.compute_us + rollup.surgery_us + rollup.quarantine_us;
    let e2e_total: f64 = rollup.e2e_us.iter().sum();
    assert!((sum - e2e_total).abs() < 1e-6);
    let _ = fs::remove_dir_all(&dir);
}
