//! Kill-and-restart bit-identity: a service killed mid-soak and
//! recovered from its checkpoint directory must settle every trial with
//! exactly the same terminal status and final loss bits as an
//! uninterrupted run of the same command stream.
//!
//! This holds because per-trial trajectories depend only on
//! `(trial id, global step)` — never on device, array width, or
//! scheduling order — and rung decisions are synchronous barriers
//! ranked by `(score, trial id)` alone. The restart changes *when* and
//! *where* lanes train (in-flight segments at the crash retrain from
//! their last snapshot), but not what they compute.

use std::fs;
use std::path::PathBuf;

use hfta_sched::asha::RungPolicy;
use hfta_sched::linear::{LinearBackend, LinearTrialCfg};
use hfta_serve::engine::{ServeCfg, ServeCmd, ServeEngine, ServeRun, SweepSpec};
use hfta_serve::AdmitPolicy;
use hfta_sim::{DeviceFleet, DeviceSpec};

fn fleet() -> DeviceFleet {
    DeviceFleet::heterogeneous(&[(DeviceSpec::v100(), 1), (DeviceSpec::a100(), 1)], false)
}

fn cfg(policy: AdmitPolicy, dir: Option<PathBuf>) -> ServeCfg {
    ServeCfg {
        policy,
        rung: RungPolicy {
            base_steps: 2,
            eta: 2,
            rungs: 3,
        },
        width_cap: 6,
        checkpoint_dir: dir,
    }
}

fn sweep(tenant: &str, priority: f64, n: usize, salt: usize) -> SweepSpec<LinearTrialCfg> {
    SweepSpec {
        tenant: tenant.to_string(),
        priority,
        configs: (0..n)
            .map(|k| LinearTrialCfg {
                lr: 0.004 * (1.0 + ((k + salt) % 12) as f32),
                poison_at: ((k + salt) % 9 == 4).then_some(1),
            })
            .collect(),
        archs: Vec::new(),
    }
}

/// A stream that saturates the two-device fleet with big low-priority
/// sweeps, then lands high-priority arrivals that trigger preemption.
fn commands() -> Vec<(f64, ServeCmd<LinearTrialCfg>)> {
    vec![
        (0.0, ServeCmd::Submit(sweep("batch-a", 1.0, 12, 0))),
        (0.0002, ServeCmd::Submit(sweep("batch-b", 1.0, 10, 3))),
        (0.0010, ServeCmd::Submit(sweep("urgent-a", 4.0, 4, 7))),
        (0.0018, ServeCmd::Submit(sweep("urgent-b", 8.0, 4, 11))),
        (0.0026, ServeCmd::Submit(sweep("batch-c", 2.0, 8, 5))),
    ]
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hfta-serve-restart-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Uninterrupted run; returns the result and its batch count.
fn run_full(policy: AdmitPolicy) -> (ServeRun, u64) {
    let mut eng = ServeEngine::new(
        LinearBackend::default(),
        fleet(),
        cfg(policy, None),
        commands(),
    )
    .unwrap();
    eng.drain().unwrap();
    let batches = eng.batches();
    (eng.finish(), batches)
}

/// Run that is killed after `crash_after` batches, then recovered from
/// its journal and drained.
fn run_with_crash(policy: AdmitPolicy, tag: &str, crash_after: u64) -> ServeRun {
    let dir = tmpdir(tag);
    {
        let mut eng = ServeEngine::new(
            LinearBackend::default(),
            fleet(),
            cfg(policy, Some(dir.clone())),
            commands(),
        )
        .unwrap();
        for _ in 0..crash_after {
            if !eng.step().unwrap() {
                break;
            }
        }
        // Hard kill: the engine (with every booked in-flight segment)
        // is dropped on the floor; only journal + snapshots survive.
    }
    let mut eng = ServeEngine::recover(
        LinearBackend::default(),
        fleet(),
        cfg(policy, Some(dir.clone())),
        commands(),
    )
    .unwrap();
    eng.drain().unwrap();
    let run = eng.finish();
    let _ = fs::remove_dir_all(&dir);
    run
}

#[test]
fn fair_share_restart_is_bit_identical_mid_soak() {
    let (full, batches) = run_full(AdmitPolicy::FairShare);
    assert!(
        full.report.preemptions > 0,
        "stream should exercise priority preemption"
    );
    assert!(batches > 4, "need room to crash mid-run, got {batches}");
    let restarted = run_with_crash(AdmitPolicy::FairShare, "fair", batches / 2);
    assert!(
        restarted.report.restores > 0,
        "recovery should restore lanes from snapshots"
    );
    assert!(restarted.report.checkpoints > 0);
    assert_eq!(
        full.outcomes, restarted.outcomes,
        "statuses and final loss bits must survive the restart bit-identically"
    );
}

#[test]
fn restart_at_every_early_batch_converges_to_the_same_outcomes() {
    // Crashing at different points must never change outcomes: probe a
    // few crash sites including "before anything ran" and "almost done".
    let (full, batches) = run_full(AdmitPolicy::FairShare);
    for crash_after in [0, 1, batches / 4, (3 * batches) / 4, batches] {
        let restarted = run_with_crash(
            AdmitPolicy::FairShare,
            &format!("site{crash_after}"),
            crash_after,
        );
        assert_eq!(
            full.outcomes, restarted.outcomes,
            "crash after {crash_after} batches changed the outcome"
        );
    }
}

#[test]
fn static_policy_restart_is_bit_identical() {
    let (full, batches) = run_full(AdmitPolicy::Static);
    assert!(batches > 4);
    let restarted = run_with_crash(AdmitPolicy::Static, "static", batches / 2);
    assert_eq!(full.outcomes, restarted.outcomes);
}

#[test]
fn preempted_lanes_resume_on_any_device_bit_identically() {
    // The same stream on a fleet with the device order swapped: trial
    // trajectories (hence outcomes) must not change even though every
    // placement decision does.
    let (full, _) = run_full(AdmitPolicy::FairShare);
    let swapped =
        DeviceFleet::heterogeneous(&[(DeviceSpec::a100(), 1), (DeviceSpec::v100(), 1)], false);
    let mut eng = ServeEngine::new(
        LinearBackend::default(),
        swapped,
        cfg(AdmitPolicy::FairShare, None),
        commands(),
    )
    .unwrap();
    eng.drain().unwrap();
    let other = eng.finish();
    assert_eq!(full.outcomes, other.outcomes);
}
