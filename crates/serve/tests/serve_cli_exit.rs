//! End-to-end exit-code contract of `serve_cli`'s planner-gated
//! admission: an unfusible mixed-architecture sweep is rejected with a
//! typed error and a non-zero exit, while the normal path stays zero.

use std::process::Command;

#[test]
fn mixed_arch_submission_exits_nonzero_with_typed_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_serve_cli"))
        .arg("--mixed-arch")
        .output()
        .expect("serve_cli runs");
    assert!(
        !out.status.success(),
        "unfusible sweep must fail: stdout={} stderr={}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("not fusible"),
        "stderr carries the typed ServeError message: {stderr}"
    );
    assert!(
        stderr.contains("mixed"),
        "stderr names the rejected tenant: {stderr}"
    );
}

#[test]
fn homogeneous_submission_still_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_serve_cli"))
        .args(["--tenants", "1", "--trials", "2"])
        .output()
        .expect("serve_cli runs");
    assert!(
        out.status.success(),
        "stdout={} stderr={}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn usage_error_still_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_serve_cli"))
        .arg("--bogus")
        .output()
        .expect("serve_cli runs");
    assert_eq!(out.status.code(), Some(2));
}
