//! hfta-serve: an online multi-tenant tuning service over HFTA arrays.
//!
//! Where `hfta-sched` runs one closed batch of trials to completion, this
//! crate runs an *open* service: tenants submit tuning sweeps while the
//! fleet is busy, a fair-share admission controller decides who trains
//! next, high-priority arrivals preempt running arrays mid-segment via
//! lane surgery, and every lane crossing a rung boundary is checkpointed
//! so a killed-and-restarted service resumes bit-identically.
//!
//! Layers:
//!
//! - [`admission`] — the deficit-weighted fair-share queue and the
//!   [`admission::AdmitPolicy`] choice (strict-FIFO static baseline vs.
//!   preemptive fair share).
//! - [`checkpoint`] — crash-safe persistence: an append-only JSONL
//!   journal of service decisions plus per-trial lane snapshots
//!   (`hfta-core::snapshot`) written atomically via tmp + rename.
//! - [`engine`] — the event-driven service core: lazy-trained segments
//!   on a simulated heterogeneous fleet, synchronous per-rung cohort
//!   barriers, preemptive lane migration, and journal replay / restore.
//! - [`service`] — a thread-backed in-process API (`submit` / `status` /
//!   `cancel` over a command channel) wrapping the engine.

pub mod admission;
pub mod checkpoint;
pub mod engine;
pub mod error;
pub mod service;

pub use admission::AdmitPolicy;
pub use checkpoint::CheckpointStore;
pub use engine::{ServeCfg, ServeCmd, ServeEngine, ServeReport, ServeRun, SweepSpec, TrialState};
pub use error::ServeError;
pub use service::{ServeHandle, SweepStatus};
