//! Command-line client for the in-process tuning service.
//!
//! Spawns a service over a simulated heterogeneous fleet, submits a
//! scripted set of tenant sweeps through the async API, polls status,
//! optionally cancels a sweep mid-flight, and prints the final
//! per-tenant outcome table.
//!
//! Usage: serve_cli [--tenants N] [--trials N] [--cancel SWEEP]
//!                  [--policy static|fair-share] [--ckpt-dir DIR]
//!                  [--mixed-arch]
//!
//! `--mixed-arch` demonstrates planner-gated admission: it submits a
//! deliberately unfusible two-architecture sweep, prints the typed
//! `ServeError` the service replies with, and exits non-zero.

use std::path::PathBuf;
use std::process::ExitCode;

use hfta_nn::layers::{Conv2dCfg, LinearCfg};
use hfta_plan::{ModelGraph, OpSpec};
use hfta_sched::asha::RungPolicy;
use hfta_sched::linear::{LinearBackend, LinearTrialCfg};
use hfta_serve::engine::{ServeCfg, SweepSpec};
use hfta_serve::{AdmitPolicy, ServeHandle};
use hfta_sim::{DeviceFleet, DeviceSpec};

const USAGE: &str = "usage: serve_cli [--tenants N] [--trials N] [--cancel SWEEP] \
                     [--policy static|fair-share] [--ckpt-dir DIR] [--mixed-arch]";

struct Args {
    tenants: usize,
    trials: usize,
    cancel: Option<u64>,
    policy: AdmitPolicy,
    ckpt_dir: Option<PathBuf>,
    mixed_arch: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tenants: 3,
        trials: 8,
        cancel: None,
        policy: AdmitPolicy::FairShare,
        ckpt_dir: None,
        mixed_arch: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--tenants" => {
                args.tenants = value("--tenants")?.parse().map_err(|e| format!("{e}"))?
            }
            "--trials" => args.trials = value("--trials")?.parse().map_err(|e| format!("{e}"))?,
            "--cancel" => {
                args.cancel = Some(value("--cancel")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--policy" => {
                args.policy = match value("--policy")?.as_str() {
                    "static" => AdmitPolicy::Static,
                    "fair-share" => AdmitPolicy::FairShare,
                    other => return Err(format!("unknown policy {other:?}")),
                }
            }
            "--ckpt-dir" => args.ckpt_dir = Some(PathBuf::from(value("--ckpt-dir")?)),
            "--mixed-arch" => args.mixed_arch = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let fleet = DeviceFleet::heterogeneous(
        &[
            (DeviceSpec::v100(), 2),
            (DeviceSpec::rtx6000(), 1),
            (DeviceSpec::a100(), 1),
        ],
        false,
    );
    let cfg = ServeCfg {
        policy: args.policy,
        rung: RungPolicy {
            base_steps: 2,
            eta: 2,
            rungs: 3,
        },
        width_cap: 8,
        checkpoint_dir: args.ckpt_dir,
    };
    println!(
        "serve_cli: policy {} over {} devices",
        args.policy.name(),
        fleet.len()
    );

    let handle = ServeHandle::spawn(LinearBackend::default(), fleet, cfg);
    if args.mixed_arch {
        // Two model graphs with no isomorphic same-shaped structure: the
        // planner fuses nothing, so admission must reject the sweep with
        // a typed error rather than degrade to all-serial execution.
        let spec = SweepSpec {
            tenant: "mixed".into(),
            priority: 1.0,
            configs: vec![
                LinearTrialCfg {
                    lr: 0.01,
                    poison_at: None,
                },
                LinearTrialCfg {
                    lr: 0.02,
                    poison_at: None,
                },
            ],
            archs: vec![
                ModelGraph::new(
                    "convnet",
                    vec![2, 4, 4],
                    vec![
                        OpSpec::conv2d(Conv2dCfg::new(2, 3, 3).stride(1).padding(1).bias(false)),
                        OpSpec::relu(),
                    ],
                ),
                ModelGraph::new(
                    "mlp",
                    vec![8],
                    vec![OpSpec::linear(LinearCfg::new(8, 4)), OpSpec::tanh()],
                ),
            ],
        };
        return match handle.submit(spec) {
            Err(e) => {
                eprintln!("admission rejected: {e}");
                let _ = handle.shutdown();
                ExitCode::FAILURE
            }
            Ok(sweep) => {
                eprintln!("error: unfusible sweep {sweep} was admitted");
                let _ = handle.shutdown();
                ExitCode::SUCCESS
            }
        };
    }
    for u in 0..args.tenants {
        // Later tenants get higher priority so fair-share preemption has
        // something to do on a saturated fleet.
        let spec = SweepSpec {
            tenant: format!("tenant-{u}"),
            priority: (u + 1) as f64,
            configs: (0..args.trials)
                .map(|k| LinearTrialCfg {
                    lr: 0.004 * (1.0 + (k % 12) as f32),
                    poison_at: (k % 9 == 4).then_some(1),
                })
                .collect(),
            archs: Vec::new(),
        };
        let sweep = match handle.submit(spec) {
            Ok(id) => id,
            Err(e) => {
                eprintln!("submission rejected: {e}");
                let _ = handle.shutdown();
                return ExitCode::FAILURE;
            }
        };
        println!(
            "submitted sweep {sweep} for tenant-{u} ({} trials)",
            args.trials
        );
    }
    if let Some(sweep) = args.cancel {
        handle.cancel(sweep);
        println!("cancelled sweep {sweep}");
    }
    for s in handle.status() {
        println!(
            "status: sweep {} trials {} queued {} running {} buffered {} done {}",
            s.sweep,
            s.trials,
            s.queued,
            s.running,
            s.buffered,
            s.finished + s.stopped + s.killed + s.cancelled
        );
    }

    let run = match handle.shutdown() {
        Ok(run) => run,
        Err(e) => {
            eprintln!("service failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let r = &run.report;
    println!(
        "done: {} sweeps, {} trials -> {} finished / {} stopped / {} killed / {} cancelled",
        r.sweeps, r.trials, r.finished, r.stopped, r.killed, r.cancelled
    );
    println!(
        "fleet: makespan {:.4}s occupancy {:.3} arrays {} preemptions {} checkpoints {}",
        r.makespan_s, r.occupancy, r.arrays_built, r.preemptions, r.checkpoints
    );
    for o in run.outcomes.iter().filter(|o| o.has_loss).take(8) {
        println!(
            "  trial {:>3} ({}) loss {:.6}",
            o.trial,
            o.tenant,
            f32::from_bits(o.loss_bits)
        );
    }
    ExitCode::SUCCESS
}
