//! The in-process service API: a worker thread owns the engine and
//! clients talk to it over a command channel.
//!
//! [`ServeHandle::spawn`] builds the engine *inside* the worker thread
//! (the engine itself is not `Send`: it may hold a thread-local profiler
//! handle) and returns a cheap cloneable handle. `submit`, `status`, and
//! `cancel` enqueue a request and block on a reply channel — the async
//! boundary is the mpsc queue, so many client threads can feed one
//! service. Commands land at the engine's *current simulated time*: the
//! worker interleaves request handling with event processing, so a
//! submission arriving while the fleet is busy queues behind the
//! admission policy exactly like a pre-scripted arrival.
//!
//! `shutdown` drains the remaining simulation and returns the final
//! [`ServeRun`].

use std::sync::mpsc;
use std::thread::{self, JoinHandle};

use hfta_sched::backend::ArrayBackend;
use hfta_sim::DeviceFleet;

use crate::engine::{ServeCfg, ServeEngine, ServeRun, SweepSpec, TrialState};

/// Per-sweep progress summary returned by `status`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SweepStatus {
    /// Sweep id.
    pub sweep: u64,
    /// Total trials in the sweep.
    pub trials: u64,
    /// Trials waiting for first dispatch.
    pub queued: u64,
    /// Trials currently training.
    pub running: u64,
    /// Trials buffered at a barrier or awaiting re-dispatch.
    pub buffered: u64,
    /// Trials that survived every rung.
    pub finished: u64,
    /// Trials early-stopped at barriers.
    pub stopped: u64,
    /// Trials killed by divergence sentinels.
    pub killed: u64,
    /// Trials cancelled.
    pub cancelled: u64,
}

enum Request<C> {
    Submit {
        spec: SweepSpec<C>,
        reply: mpsc::Sender<Result<u64, crate::ServeError>>,
    },
    Status {
        reply: mpsc::Sender<Vec<SweepStatus>>,
    },
    Cancel {
        sweep: u64,
        reply: mpsc::Sender<()>,
    },
    Shutdown {
        reply: mpsc::Sender<std::io::Result<ServeRun>>,
    },
}

/// Client handle to a running service thread.
pub struct ServeHandle<C> {
    tx: mpsc::Sender<Request<C>>,
    worker: Option<JoinHandle<()>>,
}

impl<C: Send + 'static> ServeHandle<C> {
    /// Starts the service: the worker thread builds the engine from
    /// `backend`, `fleet`, and `cfg`, then alternates between serving
    /// client requests and advancing the simulation.
    pub fn spawn<B>(backend: B, fleet: DeviceFleet, cfg: ServeCfg) -> ServeHandle<C>
    where
        B: ArrayBackend<Config = C> + Send + 'static,
    {
        let (tx, rx) = mpsc::channel::<Request<C>>();
        let worker = thread::spawn(move || {
            let mut engine = ServeEngine::new(backend, fleet, cfg, Vec::new())
                .expect("service engine construction failed");
            loop {
                // Serve every queued request at the current sim time,
                // blocking only when the simulation has nothing to do.
                let req = if engine_idle(&engine) {
                    match rx.recv() {
                        Ok(r) => Some(r),
                        Err(_) => break, // all handles dropped
                    }
                } else {
                    match rx.try_recv() {
                        Ok(r) => Some(r),
                        Err(mpsc::TryRecvError::Empty) => None,
                        Err(mpsc::TryRecvError::Disconnected) => break,
                    }
                };
                match req {
                    Some(Request::Submit { spec, reply }) => {
                        let _ = reply.send(engine.submit(spec));
                    }
                    Some(Request::Status { reply }) => {
                        let _ = reply.send(status_of(&engine));
                    }
                    Some(Request::Cancel { sweep, reply }) => {
                        engine.cancel(sweep);
                        let _ = reply.send(());
                    }
                    Some(Request::Shutdown { reply }) => {
                        let run = engine.drain().map(|()| engine.finish());
                        let _ = reply.send(run);
                        return;
                    }
                    None => {
                        // Advance one event batch, then look again.
                        if let Err(e) = engine.step() {
                            panic!("service engine failed: {e}");
                        }
                    }
                }
            }
            // Handles dropped without shutdown: finish the work quietly.
            let _ = engine.drain();
        });
        ServeHandle {
            tx,
            worker: Some(worker),
        }
    }

    /// Submits a sweep; returns its sweep id, or the typed admission
    /// error when the engine rejects it (empty sweep, uneven graph
    /// pairing, or an unfusible mixed-architecture model set).
    pub fn submit(&self, spec: SweepSpec<C>) -> Result<u64, crate::ServeError> {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(Request::Submit { spec, reply })
            .expect("service thread alive");
        rx.recv().expect("service replies")
    }

    /// Snapshot of every sweep's progress.
    pub fn status(&self) -> Vec<SweepStatus> {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(Request::Status { reply })
            .expect("service thread alive");
        rx.recv().expect("service replies")
    }

    /// Cancels a sweep (idempotent; unknown ids are ignored).
    pub fn cancel(&self, sweep: u64) {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(Request::Cancel { sweep, reply })
            .expect("service thread alive");
        rx.recv().expect("service replies")
    }

    /// Drains the simulation and returns the final run.
    pub fn shutdown(mut self) -> std::io::Result<ServeRun> {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(Request::Shutdown { reply })
            .expect("service thread alive");
        let run = rx.recv().expect("service replies");
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        run
    }
}

impl<C> Drop for ServeHandle<C> {
    fn drop(&mut self) {
        // Dropping without shutdown lets the worker drain and exit once
        // the channel disconnects.
        if let Some(worker) = self.worker.take() {
            drop(std::mem::replace(&mut self.tx, {
                let (tx, _) = mpsc::channel();
                tx
            }));
            let _ = worker.join();
        }
    }
}

fn engine_idle<B: ArrayBackend>(engine: &ServeEngine<B>) -> bool {
    // The worker blocks for requests only when the event queue is
    // empty; `step` returning work-to-do is observed via peeking the
    // trial states is unnecessary — an empty heap means nothing left.
    !engine.has_events()
}

fn status_of<B: ArrayBackend>(engine: &ServeEngine<B>) -> Vec<SweepStatus> {
    let mut out: Vec<SweepStatus> = (0..engine.sweep_count() as u64)
        .map(|sweep| SweepStatus {
            sweep,
            ..SweepStatus::default()
        })
        .collect();
    for tid in 0..engine.trial_count() as u64 {
        let s = &mut out[engine.sweep_of(tid) as usize];
        s.trials += 1;
        match engine.state(tid) {
            TrialState::Queued => s.queued += 1,
            TrialState::Running => s.running += 1,
            TrialState::Buffered => s.buffered += 1,
            TrialState::Finished => s.finished += 1,
            TrialState::Stopped => s.stopped += 1,
            TrialState::Killed => s.killed += 1,
            TrialState::Cancelled => s.cancelled += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_sched::asha::RungPolicy;
    use hfta_sched::linear::{LinearBackend, LinearTrialCfg};
    use hfta_sim::DeviceSpec;

    fn sweep(tenant: &str, priority: f64, n: usize) -> SweepSpec<LinearTrialCfg> {
        SweepSpec {
            tenant: tenant.to_string(),
            priority,
            configs: (0..n)
                .map(|k| LinearTrialCfg {
                    lr: 0.004 * (1.0 + k as f32),
                    poison_at: None,
                })
                .collect(),
            archs: Vec::new(),
        }
    }

    #[test]
    fn submit_status_cancel_round_trip() {
        let backend = LinearBackend::default();
        let fleet = DeviceFleet::homogeneous(DeviceSpec::v100(), false, 2);
        let cfg = ServeCfg {
            policy: crate::admission::AdmitPolicy::FairShare,
            rung: RungPolicy {
                base_steps: 2,
                eta: 2,
                rungs: 2,
            },
            width_cap: 4,
            checkpoint_dir: None,
        };
        let handle = ServeHandle::spawn(backend, fleet, cfg);
        let a = handle.submit(sweep("alice", 1.0, 4)).unwrap();
        let b = handle.submit(sweep("bob", 2.0, 4)).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        handle.cancel(b);
        let run = handle.shutdown().unwrap();
        assert_eq!(run.report.sweeps, 2);
        assert_eq!(run.report.trials, 8);
        // Bob's sweep was cancelled before (or while) training.
        let bob: Vec<_> = run.outcomes.iter().filter(|o| o.sweep == b).collect();
        assert!(bob
            .iter()
            .all(|o| o.status == "cancelled" || o.status == "killed"));
        // Alice's sweep ran to completion: someone finished.
        assert!(run
            .outcomes
            .iter()
            .any(|o| o.sweep == a && o.status == "finished"));
    }
}
