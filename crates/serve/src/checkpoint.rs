//! Crash-safe persistence for the serve engine.
//!
//! Two artifacts live under the checkpoint directory:
//!
//! - `serve.journal.jsonl` — an append-only JSONL journal of every
//!   state-changing service event (submissions, cancellations, cohort
//!   reports, barrier decisions, checkpoints, terminal outcomes, and the
//!   teed flight-recorder stream). Each line is flushed as written, so
//!   the journal survives a hard kill with at most one torn trailing
//!   line, which [`CheckpointStore::read_journal`] tolerates.
//! - `trial-<id>.ckpt` — the latest lane snapshot per trial
//!   ([`hfta_core::snapshot`] format: parameters, every optimizer-state
//!   slot, and the step counter), written to a temp file and atomically
//!   renamed so a crash never leaves a half-written snapshot behind.
//!
//! Recovery replays the journal to rebuild queue/cohort/terminal state,
//! then loads each surviving trial's snapshot and resumes training
//! bit-identically (trajectories depend only on `(trial, step)`).
//!
//! The journal record is one flat struct with every field always
//! present: the vendored serde derive treats a missing key as a hard
//! error, so optional payloads are encoded as defaults plus `has_*`
//! flags rather than omitted keys.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use hfta_core::snapshot::{load_lane, save_lane};
use hfta_core::surgery::LaneState;
use hfta_telemetry::flight::FlightEvent;

/// Journal format version; bumped on any incompatible record change.
pub const JOURNAL_VERSION: u32 = 1;

/// Journal file name under the checkpoint directory.
pub const JOURNAL_FILE: &str = "serve.journal.jsonl";

/// One journal line. `kind` discriminates which fields are meaningful;
/// everything else holds its default. Kinds:
///
/// - `meta` — first line; `version`.
/// - `submit` — `sweep`, `tenant`, `priority`, `base_trial`, `n_trials`.
/// - `cancel` — `sweep`.
/// - `report` — `sweep`, `trial`, `rung`, `has_score`, `score_bits`.
/// - `decision` — `sweep`, `rung`, `promoted`.
/// - `ckpt` — `trial`, `rung`, `cum_steps` (snapshot file refreshed).
/// - `terminal` — `trial`, `status`, `has_loss`, `loss_bits`.
/// - `flight` — `flight` (teed flight-recorder event).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServeJournalRec {
    /// Record discriminator (see type docs).
    pub kind: String,
    /// Simulated timestamp of the event, ns grid.
    pub t_ns: u64,
    /// Journal format version (`meta` only).
    pub version: u32,
    /// Sweep id.
    pub sweep: u64,
    /// Trial id.
    pub trial: u64,
    /// Tenant name (`submit` only).
    pub tenant: String,
    /// Sweep priority (`submit` only).
    pub priority: f64,
    /// First trial id of the sweep (`submit` only).
    pub base_trial: u64,
    /// Trial count of the sweep (`submit` only).
    pub n_trials: u64,
    /// Rung index (`report` / `decision` / `ckpt`).
    pub rung: u64,
    /// Cumulative steps taken at snapshot time (`ckpt` only).
    pub cum_steps: u64,
    /// Whether `score_bits` carries a score (`report` only).
    pub has_score: bool,
    /// Bit pattern of the reported f32 score (`report` only).
    pub score_bits: u32,
    /// Terminal status label (`terminal` only).
    pub status: String,
    /// Whether `loss_bits` carries a final loss (`terminal` only).
    pub has_loss: bool,
    /// Bit pattern of the final f32 loss (`terminal` only).
    pub loss_bits: u32,
    /// Promoted trial ids (`decision` only).
    pub promoted: Vec<u64>,
    /// Teed flight event (`flight` only).
    pub flight: Option<FlightEvent>,
}

impl ServeJournalRec {
    /// A record of `kind` at `t_ns` with every payload field defaulted.
    pub fn blank(kind: &str, t_ns: u64) -> ServeJournalRec {
        ServeJournalRec {
            kind: kind.to_string(),
            t_ns,
            version: 0,
            sweep: 0,
            trial: 0,
            tenant: String::new(),
            priority: 0.0,
            base_trial: 0,
            n_trials: 0,
            rung: 0,
            cum_steps: 0,
            has_score: false,
            score_bits: 0,
            status: String::new(),
            has_loss: false,
            loss_bits: 0,
            promoted: Vec::new(),
            flight: None,
        }
    }
}

/// The on-disk store: flushed journal plus atomic per-trial snapshots.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    journal: File,
}

impl CheckpointStore {
    /// Creates (or truncates) the store at `dir` and writes the `meta`
    /// header line.
    pub fn create(dir: &Path) -> io::Result<CheckpointStore> {
        fs::create_dir_all(dir)?;
        let journal = File::create(dir.join(JOURNAL_FILE))?;
        let mut store = CheckpointStore {
            dir: dir.to_path_buf(),
            journal,
        };
        let mut meta = ServeJournalRec::blank("meta", 0);
        meta.version = JOURNAL_VERSION;
        store.append(&meta)?;
        Ok(store)
    }

    /// Reads the journal back (tolerating one torn trailing line from a
    /// hard kill) and reopens it for appending. Fails if the journal is
    /// missing or its `meta` header declares an unknown version.
    pub fn resume(dir: &Path) -> io::Result<(Vec<ServeJournalRec>, CheckpointStore)> {
        let recs = CheckpointStore::read_journal(dir)?;
        match recs.first() {
            Some(meta) if meta.kind == "meta" && meta.version == JOURNAL_VERSION => {}
            Some(meta) if meta.kind == "meta" => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unsupported journal version {}", meta.version),
                ));
            }
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "journal does not start with a meta record",
                ));
            }
        }
        let journal = OpenOptions::new()
            .append(true)
            .open(dir.join(JOURNAL_FILE))?;
        Ok((
            recs,
            CheckpointStore {
                dir: dir.to_path_buf(),
                journal,
            },
        ))
    }

    /// Parses every intact journal line under `dir`. A final line that
    /// fails to parse is treated as torn by the crash and dropped; a
    /// malformed line elsewhere is a hard error.
    pub fn read_journal(dir: &Path) -> io::Result<Vec<ServeJournalRec>> {
        let file = File::open(dir.join(JOURNAL_FILE))?;
        let lines: Vec<String> = BufReader::new(file).lines().collect::<Result<_, _>>()?;
        let mut recs = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<ServeJournalRec>(line) {
                Ok(rec) => recs.push(rec),
                Err(e) if i + 1 == lines.len() => {
                    // Torn tail from the crash; everything before it is
                    // intact because each line was flushed on write.
                    let _ = e;
                }
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt journal line {}: {e}", i + 1),
                    ));
                }
            }
        }
        Ok(recs)
    }

    /// Appends one record and flushes it to disk.
    pub fn append(&mut self, rec: &ServeJournalRec) -> io::Result<()> {
        let line = serde_json::to_string(rec)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.journal.write_all(line.as_bytes())?;
        self.journal.write_all(b"\n")?;
        self.journal.flush()
    }

    /// Journals one teed flight event.
    pub fn append_flight(&mut self, event: &FlightEvent) -> io::Result<()> {
        let mut rec = ServeJournalRec::blank("flight", event.t_ns);
        rec.flight = Some(event.clone());
        self.append(&rec)
    }

    /// Atomically replaces trial `trial`'s snapshot: written to a temp
    /// file, then renamed over the final path.
    pub fn write_snapshot(&self, trial: u64, state: &LaneState) -> io::Result<()> {
        let tmp = self.dir.join(format!("trial-{trial}.ckpt.tmp"));
        let fin = self.dir.join(format!("trial-{trial}.ckpt"));
        fs::write(&tmp, save_lane(state))?;
        fs::rename(&tmp, &fin)
    }

    /// Loads trial `trial`'s latest snapshot.
    pub fn load_snapshot(&self, trial: u64) -> io::Result<LaneState> {
        let bytes = fs::read(self.dir.join(format!("trial-{trial}.ckpt")))?;
        load_lane(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_tensor::Rng;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hfta-serve-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn journal_round_trips_and_tolerates_torn_tail() {
        let dir = tmpdir("journal");
        let mut store = CheckpointStore::create(&dir).unwrap();
        let mut sub = ServeJournalRec::blank("submit", 5);
        sub.sweep = 1;
        sub.tenant = "alice".into();
        sub.priority = 2.0;
        sub.n_trials = 8;
        store.append(&sub).unwrap();
        let mut rep = ServeJournalRec::blank("report", 9);
        rep.trial = 3;
        rep.has_score = true;
        rep.score_bits = (-0.25f32).to_bits();
        store.append(&rep).unwrap();
        // Simulate a crash mid-write: a torn trailing line.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(JOURNAL_FILE))
                .unwrap();
            f.write_all(b"{\"kind\":\"report\",\"t_ns\":").unwrap();
        }
        let (recs, _resumed) = CheckpointStore::resume(&dir).unwrap();
        assert_eq!(recs.len(), 3); // meta + submit + report; torn tail dropped
        assert_eq!(recs[0].kind, "meta");
        assert_eq!(recs[0].version, JOURNAL_VERSION);
        assert_eq!(recs[1].tenant, "alice");
        assert_eq!(recs[2].score_bits, (-0.25f32).to_bits());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshots_replace_atomically_and_round_trip() {
        let dir = tmpdir("snap");
        let store = CheckpointStore::create(&dir).unwrap();
        let mut rng = Rng::seed_from(11);
        let state = LaneState {
            params: vec![rng.randn([3, 2])],
            opt_state: vec![vec![rng.randn([3, 2])]],
            step_count: 4,
            ctx: None,
        };
        store.write_snapshot(7, &state).unwrap();
        let newer = LaneState {
            step_count: 8,
            ..state.clone()
        };
        store.write_snapshot(7, &newer).unwrap();
        let back = store.load_snapshot(7).unwrap();
        assert_eq!(back.step_count, 8);
        assert_eq!(back.params, state.params);
        assert!(!dir.join("trial-7.ckpt.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_missing_meta() {
        let dir = tmpdir("nometa");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(JOURNAL_FILE), "").unwrap();
        assert!(CheckpointStore::resume(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
