//! The event-driven service core.
//!
//! The engine runs an *open* tuning service on a simulated heterogeneous
//! fleet: tenants submit sweeps over time, an admission controller
//! ([`AdmitPolicy`]) decides which queued lane set trains next on each
//! free device, and successive halving prunes each sweep at synchronous
//! per-rung cohort barriers.
//!
//! Design points that differ from the closed-batch `hfta-sched` runner:
//!
//! - **Lazy segments.** Dispatch books simulated device time and
//!   schedules a `SegmentDone` event but does not train; the arithmetic
//!   runs when the segment settles (completion or preemption), so a
//!   high-priority arrival can cut a running array at any whole-step
//!   boundary and the realized occupancy matches what actually ran.
//! - **Synchronous cohort barriers.** A rung's promotion decision waits
//!   for *every* entrant of that sweep (score, divergence kill, or
//!   cancellation), then promotes the top `ceil(n/eta)` by score with
//!   trial-id tie-breaks. Decisions therefore depend only on per-trial
//!   trajectories — which are `(trial, step)`-deterministic — never on
//!   scheduling order, which is what makes crash/restart and preemption
//!   bit-invisible to the tuning outcome.
//! - **Preemptive lane migration.** Preemption extracts every surviving
//!   lane ([`LaneState`]) at the cut step, checkpoints it, and requeues
//!   the set; it later splices into a fresh array on whatever device
//!   admission picks — same mechanism as rung-boundary migration, so a
//!   preempted trial resumes bit-for-bit on any device or width.
//! - **Crash-safe journal.** With a checkpoint directory configured,
//!   every state change (and the teed flight-recorder stream) is
//!   journaled append-only and every extracted lane is snapshotted
//!   atomically; [`ServeEngine::recover`] replays the journal, reloads
//!   snapshots, re-emits the flight history, and resumes every
//!   surviving trial bit-identically. In-flight segments at the crash
//!   are lost and simply retrain from the last snapshot — determinism
//!   makes the retrained steps identical.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::io;
use std::path::PathBuf;

use hfta_core::surgery::LaneState;
use hfta_sched::asha::RungPolicy;
use hfta_sched::backend::ArrayBackend;
use hfta_sched::trial::Trial;
use hfta_sim::{DeviceFleet, SharingPolicy, TrainingJob};
use hfta_telemetry::flight::{self, FlightCursor, FlightKind, FlightRecorder, SimSegment};
use hfta_telemetry::Profiler;

use crate::admission::{AdmitPolicy, FairQueue};
use crate::checkpoint::{CheckpointStore, ServeJournalRec};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeCfg {
    /// Admission policy (static FIFO baseline vs. preemptive fair share).
    pub policy: AdmitPolicy,
    /// Successive-halving rung ladder shared by every sweep.
    pub rung: RungPolicy,
    /// Upper bound on fused array width regardless of device memory.
    pub width_cap: usize,
    /// Checkpoint/journal directory; `None` disables persistence.
    pub checkpoint_dir: Option<PathBuf>,
}

/// One tenant's tuning-sweep submission.
#[derive(Debug, Clone)]
pub struct SweepSpec<C> {
    /// Tenant name (fair-share accounting key).
    pub tenant: String,
    /// Scheduling priority: fair-share weight and preemption rank.
    pub priority: f64,
    /// One hyper-parameter configuration per trial.
    pub configs: Vec<C>,
    /// Optional per-trial model graphs for mixed-architecture sweeps:
    /// empty means every trial trains the backend's (single) model, as
    /// before; non-empty must pair one graph with each config, and the
    /// sweep is admitted only if the auto-fusion planner finds fusible
    /// structure across the set (see [`crate::ServeError::Unfusible`]).
    pub archs: Vec<hfta_plan::ModelGraph>,
}

impl<C> SweepSpec<C> {
    /// Admission validation: trial count, graph pairing, and — for
    /// mixed-architecture sweeps — planner fusibility.
    pub fn validate(&self) -> Result<(), crate::ServeError> {
        use crate::ServeError;
        if self.configs.is_empty() {
            return Err(ServeError::EmptySweep {
                tenant: self.tenant.clone(),
            });
        }
        if self.archs.is_empty() {
            return Ok(());
        }
        if self.archs.len() != self.configs.len() {
            return Err(ServeError::ArchCountMismatch {
                tenant: self.tenant.clone(),
                archs: self.archs.len(),
                configs: self.configs.len(),
            });
        }
        let plan = hfta_plan::FusionPlan::plan(&self.archs).map_err(|e| ServeError::Unfusible {
            tenant: self.tenant.clone(),
            detail: e.to_string(),
        })?;
        if self.archs.len() > 1 && plan.fused_fraction() == 0.0 {
            return Err(ServeError::Unfusible {
                tenant: self.tenant.clone(),
                detail: format!(
                    "planner fused 0% of lane-ops across {} model graphs",
                    self.archs.len()
                ),
            });
        }
        Ok(())
    }
}

/// A command on the service's submission queue.
#[derive(Debug, Clone)]
pub enum ServeCmd<C> {
    /// Admit a new sweep.
    Submit(SweepSpec<C>),
    /// Cancel a previously submitted sweep by id.
    Cancel {
        /// Sweep id returned by submission order.
        sweep: u64,
    },
}

/// Lifecycle state of one trial inside the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialState {
    /// Waiting for first dispatch at rung 0.
    Queued,
    /// Training on a device right now.
    Running,
    /// Extracted lane waiting (barrier, preemption, or restore).
    Buffered,
    /// Survived every rung; final loss recorded.
    Finished,
    /// Early-stopped at a rung barrier.
    Stopped,
    /// Divergence sentinel fired; lane evicted.
    Killed,
    /// Sweep cancelled before the trial finished.
    Cancelled,
}

impl TrialState {
    /// Stable label used in journals, outcomes, and reports.
    pub fn label(&self) -> &'static str {
        match self {
            TrialState::Queued => "queued",
            TrialState::Running => "running",
            TrialState::Buffered => "buffered",
            TrialState::Finished => "finished",
            TrialState::Stopped => "stopped",
            TrialState::Killed => "killed",
            TrialState::Cancelled => "cancelled",
        }
    }

    /// Parses a journal label back into a state.
    pub fn from_label(label: &str) -> Option<TrialState> {
        Some(match label {
            "queued" => TrialState::Queued,
            "running" => TrialState::Running,
            "buffered" => TrialState::Buffered,
            "finished" => TrialState::Finished,
            "stopped" => TrialState::Stopped,
            "killed" => TrialState::Killed,
            "cancelled" => TrialState::Cancelled,
            _ => return None,
        })
    }

    /// True once the trial can never train again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            TrialState::Finished | TrialState::Stopped | TrialState::Killed | TrialState::Cancelled
        )
    }
}

/// Aggregate service metrics for one run (serializable bench record).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServeReport {
    /// Admission policy label.
    pub policy: String,
    /// Total sweeps submitted.
    pub sweeps: u64,
    /// Total trials submitted.
    pub trials: u64,
    /// Trials that survived every rung.
    pub finished: u64,
    /// Trials early-stopped at barriers.
    pub stopped: u64,
    /// Trials killed by divergence sentinels.
    pub killed: u64,
    /// Trials cancelled by their tenant.
    pub cancelled: u64,
    /// Simulated completion time of the last settled segment.
    pub makespan_s: f64,
    /// Realized device-hours across the fleet.
    pub device_hours: f64,
    /// Busy fraction of `fleet x makespan`.
    pub occupancy: f64,
    /// Live-lane fraction of occupied lane-time.
    pub packing_efficiency: f64,
    /// Fused arrays assembled (build + splice).
    pub arrays_built: u64,
    /// Running arrays cut by priority preemption.
    pub preemptions: u64,
    /// Lane snapshots written to the checkpoint store.
    pub checkpoints: u64,
    /// Lanes restored from snapshots at recovery.
    pub restores: u64,
    /// Lanes spliced into arrays from buffered state.
    pub lanes_migrated: u64,
    /// Widest array dispatched.
    pub max_width: u64,
    /// Median queue wait (submit to first dispatch), microseconds.
    pub queue_wait_p50_us: f64,
    /// Tail queue wait, microseconds.
    pub queue_wait_p99_us: f64,
    /// Median end-to-end latency (submit to terminal), microseconds.
    pub e2e_latency_p50_us: f64,
    /// Tail end-to-end latency, microseconds.
    pub e2e_latency_p99_us: f64,
    /// Fleet-wide SLO decomposition: queued time, microseconds.
    pub queue_us: f64,
    /// Compute time, microseconds.
    pub compute_us: f64,
    /// Surgery time (barriers, preemption, restore gaps), microseconds.
    pub surgery_us: f64,
    /// Quarantine time, microseconds.
    pub quarantine_us: f64,
}

/// Final status of one trial, for bit-identity comparisons.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TrialOutcome {
    /// Trial id.
    pub trial: u64,
    /// Owning sweep id.
    pub sweep: u64,
    /// Owning tenant name.
    pub tenant: String,
    /// Terminal state label.
    pub status: String,
    /// Whether `loss_bits` is meaningful (finished trials only).
    pub has_loss: bool,
    /// Bit pattern of the final f32 loss.
    pub loss_bits: u32,
}

/// Everything a completed service run produced.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Aggregate metrics.
    pub report: ServeReport,
    /// Per-trial terminal outcomes, in trial-id order.
    pub outcomes: Vec<TrialOutcome>,
}

// ---------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------

#[derive(Debug)]
enum EventKind {
    /// A booked segment reached its scheduled end (key into `running`).
    SegmentDone(u64),
    /// A queued command (index into `commands`) becomes visible.
    Command(usize),
}

#[derive(Debug)]
struct Event {
    t: f64,
    prio: u8,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.t
            .total_cmp(&other.t)
            .then(self.prio.cmp(&other.prio))
            .then(self.seq.cmp(&other.seq))
    }
}

/// Simulated seconds to the integer ns grid every event timestamp uses.
fn ns(t: f64) -> u64 {
    (t * 1e9).round() as u64
}

// ---------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------

#[derive(Debug)]
struct SweepInfo {
    tenant: usize,
    priority: f64,
    cancelled: bool,
}

#[derive(Debug)]
struct TrialInfo {
    sweep: u64,
    state: TrialState,
    /// Static policy: device the trial was first placed on.
    bound: Option<usize>,
    loss_bits: Option<u32>,
}

/// A set of same-sweep trials ready to train: same rung, same cumulative
/// step count, so they can fuse into one array.
#[derive(Debug)]
struct ReadySet {
    sweep: u64,
    rung: u64,
    cum_steps: u64,
    trials: Vec<u64>,
    /// One buffered lane per trial; `None` lanes are freshly built.
    lanes: Vec<Option<LaneState>>,
    /// Static policy: required device, from first placement.
    bound: Option<usize>,
    ready_since: f64,
    seq: u64,
}

/// A booked (not yet trained) segment on one device.
struct RunningSeg<A> {
    aid: u64,
    array: A,
    sweep: u64,
    tenant: usize,
    priority: f64,
    rung: u64,
    cum_start: u64,
    steps: u64,
    trials: Vec<u64>,
    device: usize,
    width: usize,
    start_s: f64,
    step_s: f64,
}

/// One rung's synchronous decision barrier for one sweep.
#[derive(Debug)]
struct Cohort {
    expected: Vec<u64>,
    /// Per-trial report: `Some(score)` from a surviving lane, `None`
    /// from a killed or cancelled one.
    reports: BTreeMap<u64, Option<f32>>,
    decided: bool,
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// The long-running multi-tenant tuning service.
pub struct ServeEngine<B: ArrayBackend> {
    backend: B,
    fleet: DeviceFleet,
    cfg: ServeCfg,
    profile: TrainingJob,
    profiler: Option<Profiler>,
    flight: FlightRecorder,
    store: Option<CheckpointStore>,

    commands: Vec<Option<ServeCmd<B::Config>>>,
    configs: Vec<B::Config>,
    trials: Vec<TrialInfo>,
    sweeps: Vec<SweepInfo>,
    fair: FairQueue,

    ready: Vec<ReadySet>,
    cohorts: BTreeMap<(u64, u64), Cohort>,
    limbo: BTreeMap<u64, LaneState>,
    running: BTreeMap<u64, RunningSeg<B::Array>>,
    cancelled_segs: BTreeSet<u64>,
    /// Engine-planned busy horizon per device (realized occupancy is
    /// posted to the fleet only when segments settle).
    busy: Vec<f64>,

    heap: BinaryHeap<Reverse<Event>>,
    event_seq: u64,
    set_seq: u64,
    run_seq: u64,
    next_aid: u64,
    pending_submits: u64,
    now_s: f64,
    makespan_s: f64,
    /// Flight events already teed into the journal (count watermark).
    teed: usize,
    batches: u64,

    preemptions: u64,
    checkpoints: u64,
    restores: u64,
    lanes_migrated: u64,
    arrays_built: u64,
    max_width: u64,
}

impl<B: ArrayBackend> ServeEngine<B> {
    /// Fresh service over `fleet`, with `commands` pre-queued at their
    /// timestamps (must be non-decreasing). With a checkpoint directory
    /// configured the journal is created (truncating any previous one).
    pub fn new(
        backend: B,
        fleet: DeviceFleet,
        cfg: ServeCfg,
        commands: Vec<(f64, ServeCmd<B::Config>)>,
    ) -> io::Result<ServeEngine<B>> {
        cfg.rung.validate();
        let store = match &cfg.checkpoint_dir {
            Some(dir) => Some(CheckpointStore::create(dir)?),
            None => None,
        };
        let mut eng = ServeEngine::bare(backend, fleet, cfg, store);
        let mut prev = f64::NEG_INFINITY;
        for (t, cmd) in commands {
            assert!(t >= prev, "command timestamps must be non-decreasing");
            prev = t;
            if let ServeCmd::Submit(spec) = &cmd {
                spec.validate().map_err(io::Error::from)?;
                eng.pending_submits += 1;
            }
            let idx = eng.commands.len();
            eng.commands.push(Some(cmd));
            eng.push_event(t.max(0.0), 1, EventKind::Command(idx));
        }
        Ok(eng)
    }

    fn bare(
        backend: B,
        fleet: DeviceFleet,
        cfg: ServeCfg,
        store: Option<CheckpointStore>,
    ) -> ServeEngine<B> {
        let profile = backend.job_profile();
        let profiler = Profiler::current();
        let teed = profiler.as_ref().map_or(0, |p| p.flight_event_count());
        let busy = vec![0.0; fleet.len()];
        ServeEngine {
            backend,
            fleet,
            cfg,
            profile,
            profiler,
            flight: FlightRecorder::new(),
            store,
            commands: Vec::new(),
            configs: Vec::new(),
            trials: Vec::new(),
            sweeps: Vec::new(),
            fair: FairQueue::new(),
            ready: Vec::new(),
            cohorts: BTreeMap::new(),
            limbo: BTreeMap::new(),
            running: BTreeMap::new(),
            cancelled_segs: BTreeSet::new(),
            busy,
            heap: BinaryHeap::new(),
            event_seq: 0,
            set_seq: 0,
            run_seq: 0,
            next_aid: 0,
            pending_submits: 0,
            now_s: 0.0,
            makespan_s: 0.0,
            teed,
            batches: 0,
            preemptions: 0,
            checkpoints: 0,
            restores: 0,
            lanes_migrated: 0,
            arrays_built: 0,
            max_width: 0,
        }
    }

    fn push_event(&mut self, t: f64, prio: u8, kind: EventKind) {
        let seq = self.event_seq;
        self.event_seq += 1;
        self.heap.push(Reverse(Event { t, prio, seq, kind }));
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now_s
    }

    /// Batches processed so far (crash injection points).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// True while events remain on the queue.
    pub fn has_events(&self) -> bool {
        !self.heap.is_empty()
    }

    /// Trials submitted so far.
    pub fn trial_count(&self) -> usize {
        self.trials.len()
    }

    /// Sweeps submitted so far.
    pub fn sweep_count(&self) -> usize {
        self.sweeps.len()
    }

    /// Lifecycle state of `trial`.
    pub fn state(&self, trial: u64) -> TrialState {
        self.trials[trial as usize].state
    }

    /// Sweep id that owns `trial`.
    pub fn sweep_of(&self, trial: u64) -> u64 {
        self.trials[trial as usize].sweep
    }

    /// Enqueues a live submission at the current simulated time and
    /// returns the sweep id it will be admitted under.
    ///
    /// # Errors
    ///
    /// Rejects the sweep before it reaches the queue when it has no
    /// trials, pairs graphs and configs unevenly, or — for
    /// mixed-architecture sweeps — the planner finds nothing to fuse.
    pub fn submit(&mut self, spec: SweepSpec<B::Config>) -> Result<u64, crate::ServeError> {
        spec.validate()?;
        let id = self.sweeps.len() as u64 + self.pending_submits;
        self.pending_submits += 1;
        let idx = self.commands.len();
        self.commands.push(Some(ServeCmd::Submit(spec)));
        self.push_event(self.now_s, 1, EventKind::Command(idx));
        Ok(id)
    }

    /// Enqueues a live cancellation at the current simulated time.
    pub fn cancel(&mut self, sweep: u64) {
        let idx = self.commands.len();
        self.commands.push(Some(ServeCmd::Cancel { sweep }));
        self.push_event(self.now_s, 1, EventKind::Command(idx));
    }

    /// Processes one event batch (all events at the next timestamp,
    /// completions before commands) and re-dispatches. Returns `false`
    /// when no events remain.
    pub fn step(&mut self) -> io::Result<bool> {
        let Some(Reverse(head)) = self.heap.peek() else {
            return Ok(false);
        };
        let t = head.t;
        self.now_s = t;
        let mut batch = Vec::new();
        while let Some(Reverse(e)) = self.heap.peek() {
            if e.t != t {
                break;
            }
            batch.push(self.heap.pop().expect("peeked").0);
        }
        for e in batch {
            match e.kind {
                EventKind::SegmentDone(key) => self.complete(key, t)?,
                EventKind::Command(idx) => self.command(idx, t)?,
            }
        }
        self.dispatch(t)?;
        self.tee()?;
        self.batches += 1;
        Ok(true)
    }

    /// Runs until the event queue is empty.
    pub fn drain(&mut self) -> io::Result<()> {
        while self.step()? {}
        Ok(())
    }

    // -- command handling ---------------------------------------------

    fn command(&mut self, idx: usize, t: f64) -> io::Result<()> {
        match self.commands[idx].take().expect("command processed twice") {
            ServeCmd::Submit(spec) => self.handle_submit(spec, t),
            ServeCmd::Cancel { sweep } => self.handle_cancel(sweep, t),
        }
    }

    fn handle_submit(&mut self, spec: SweepSpec<B::Config>, t: f64) -> io::Result<()> {
        assert!(!spec.configs.is_empty(), "a sweep needs at least one trial");
        self.pending_submits = self.pending_submits.saturating_sub(1);
        let sweep = self.sweeps.len() as u64;
        let tenant = self.fair.tenant_id(&spec.tenant, spec.priority);
        let base = self.configs.len() as u64;
        let n = spec.configs.len() as u64;
        let t_ns = ns(t);

        let mut rec = ServeJournalRec::blank("submit", t_ns);
        rec.sweep = sweep;
        rec.tenant = spec.tenant.clone();
        rec.priority = spec.priority;
        rec.base_trial = base;
        rec.n_trials = n;
        self.journal(&rec)?;

        let ids: Vec<u64> = (base..base + n).collect();
        for (i, config) in spec.configs.into_iter().enumerate() {
            let tid = ids[i];
            self.configs.push(config);
            self.trials.push(TrialInfo {
                sweep,
                state: TrialState::Queued,
                bound: None,
                loss_bits: None,
            });
            self.flight
                .record_with(tid, t_ns, FlightKind::Submit, None, None, None, || {
                    format!(
                        "sweep {sweep} tenant {} prio {}",
                        spec.tenant, spec.priority
                    )
                });
            self.flight
                .record(tid, t_ns, FlightKind::Enqueue, None, None, None);
        }
        self.sweeps.push(SweepInfo {
            tenant,
            priority: spec.priority,
            cancelled: false,
        });
        self.cohorts.insert(
            (sweep, 0),
            Cohort {
                expected: ids.clone(),
                reports: BTreeMap::new(),
                decided: false,
            },
        );
        let seq = self.set_seq;
        self.set_seq += 1;
        let lanes = ids.iter().map(|_| None).collect();
        self.ready.push(ReadySet {
            sweep,
            rung: 0,
            cum_steps: 0,
            trials: ids,
            lanes,
            bound: None,
            ready_since: t,
            seq,
        });
        if self.cfg.policy == AdmitPolicy::FairShare {
            self.maybe_preempt(spec.priority, sweep, t)?;
        }
        Ok(())
    }

    fn handle_cancel(&mut self, sweep: u64, t: f64) -> io::Result<()> {
        let t_ns = ns(t);
        let mut rec = ServeJournalRec::blank("cancel", t_ns);
        rec.sweep = sweep;
        self.journal(&rec)?;
        let Some(info) = self.sweeps.get_mut(sweep as usize) else {
            return Ok(()); // cancelling an unknown sweep is a no-op
        };
        if info.cancelled {
            return Ok(());
        }
        info.cancelled = true;

        // Queued or preempted sets: evict immediately, reporting `None`
        // to each member's pending cohort so barriers still complete.
        let (mine, keep): (Vec<ReadySet>, Vec<ReadySet>) = std::mem::take(&mut self.ready)
            .into_iter()
            .partition(|s| s.sweep == sweep);
        self.ready = keep;
        for set in mine {
            for &tid in &set.trials {
                self.flight
                    .record_with(tid, t_ns, FlightKind::Evict, None, None, None, || {
                        "sweep cancelled".to_string()
                    });
                self.set_terminal(tid, TrialState::Cancelled, None, t_ns)?;
                self.report(sweep, set.rung, tid, None, t)?;
            }
        }
        // Limbo lanes already reported; just evict them. The pending
        // decision skips non-live candidates.
        let limbo_mine: Vec<u64> = self
            .limbo
            .keys()
            .copied()
            .filter(|&tid| self.trials[tid as usize].sweep == sweep)
            .collect();
        for tid in limbo_mine {
            self.limbo.remove(&tid);
            self.flight
                .record_with(tid, t_ns, FlightKind::Evict, None, None, None, || {
                    "sweep cancelled".to_string()
                });
            self.set_terminal(tid, TrialState::Cancelled, None, t_ns)?;
        }
        // Running arrays keep their booking; completion observes the
        // cancelled flag and evicts then.
        Ok(())
    }

    // -- segment settlement -------------------------------------------

    /// Grid step duration (ns) of a booked segment.
    fn per_step_ns(step_s: f64) -> u64 {
        (step_s * 1e9).round() as u64
    }

    /// Runs the deferred arithmetic for `steps` of a booked segment and
    /// posts the realized occupancy/FLOPs/service charges.
    fn train_part(
        &mut self,
        seg: &mut RunningSeg<B::Array>,
        steps: u64,
    ) -> hfta_sched::backend::TrainOutcome {
        let start_ns = ns(seg.start_s);
        let per_step_ns = Self::per_step_ns(seg.step_s);
        if let Some(p) = &self.profiler {
            p.set_flight_cursor(FlightCursor {
                t_ns: start_ns,
                device: Some(seg.device as u64),
                array: Some(seg.aid),
            });
            p.set_sim_segment(Some(SimSegment {
                base_ns: start_ns,
                per_step_ns,
                base_step: seg.cum_start,
                device: seg.device as u64,
                array: seg.aid,
            }));
        }
        let outcome = self.backend.train(&mut seg.array, steps);
        if let Some(p) = &self.profiler {
            p.set_sim_segment(None);
        }
        if steps > 0 {
            let dur = steps as f64 * seg.step_s;
            self.fleet
                .occupy(seg.device, seg.start_s, dur, seg.width, seg.width);
            let per_lane = steps as f64 * self.profile.total_flops() as f64;
            self.fleet.charge_flops(
                seg.device,
                per_lane * seg.width as f64,
                per_lane * seg.width as f64,
            );
            self.fair
                .charge(seg.tenant, (steps * seg.width as u64) as f64);
            self.makespan_s = self.makespan_s.max(seg.start_s + dur);
        }
        outcome
    }

    fn complete(&mut self, key: u64, t: f64) -> io::Result<()> {
        if self.cancelled_segs.remove(&key) {
            return Ok(()); // segment was preempted earlier
        }
        let mut seg = self
            .running
            .remove(&key)
            .expect("completion for unknown segment");
        let steps = seg.steps;
        let outcome = self.train_part(&mut seg, steps);
        let end_ns = ns(seg.start_s) + Self::per_step_ns(seg.step_s) * steps;
        let dev = Some(seg.device as u64);
        let arr = Some(seg.aid);
        if let Some(p) = &self.profiler {
            p.set_flight_cursor(FlightCursor {
                t_ns: end_ns,
                device: dev,
                array: arr,
            });
        }
        let final_rung = self.cfg.rung.final_rung() as u64;
        let cancelled = self.sweeps[seg.sweep as usize].cancelled;
        for (i, &tid) in seg.trials.iter().enumerate() {
            let lane = Some(i as u64);
            if cancelled {
                self.flight
                    .record_with(tid, end_ns, FlightKind::Evict, dev, arr, lane, || {
                        "sweep cancelled".to_string()
                    });
                self.set_terminal(tid, TrialState::Cancelled, None, end_ns)?;
                self.report(seg.sweep, seg.rung, tid, None, t)?;
                continue;
            }
            if outcome.killed[i] {
                self.flight
                    .record_with(tid, end_ns, FlightKind::Evict, dev, arr, lane, || {
                        "divergence sentinel".to_string()
                    });
                self.set_terminal(tid, TrialState::Killed, None, end_ns)?;
                self.report(seg.sweep, seg.rung, tid, None, t)?;
                continue;
            }
            let score = outcome.scores[i];
            self.flight
                .record_with(tid, end_ns, FlightKind::RungEnd, dev, arr, lane, || {
                    format!("rung {} score {score}", seg.rung)
                });
            if seg.rung == final_rung {
                self.flight
                    .record(tid, end_ns, FlightKind::Complete, dev, arr, lane);
                self.set_terminal(tid, TrialState::Finished, Some((-score).to_bits()), end_ns)?;
                self.report(seg.sweep, seg.rung, tid, Some(score), t)?;
                continue;
            }
            // Extract the lane for the barrier; checkpoint it at the
            // rung boundary.
            let state = self.backend.extract(&seg.array, i);
            self.checkpoint_lane(tid, seg.rung, seg.cum_start + steps, &state, end_ns)?;
            self.trials[tid as usize].state = TrialState::Buffered;
            self.limbo.insert(tid, state);
            self.report(seg.sweep, seg.rung, tid, Some(score), t)?;
        }
        Ok(())
    }

    /// Snapshots one extracted lane and journals the checkpoint.
    fn checkpoint_lane(
        &mut self,
        tid: u64,
        rung: u64,
        cum_steps: u64,
        state: &LaneState,
        t_ns: u64,
    ) -> io::Result<()> {
        let Some(store) = &mut self.store else {
            return Ok(());
        };
        store.write_snapshot(tid, state)?;
        let mut rec = ServeJournalRec::blank("ckpt", t_ns);
        rec.trial = tid;
        rec.sweep = self.trials[tid as usize].sweep;
        rec.rung = rung;
        rec.cum_steps = cum_steps;
        store.append(&rec)?;
        self.checkpoints += 1;
        self.flight
            .record_with(tid, t_ns, FlightKind::Checkpoint, None, None, None, || {
                format!("rung {rung} cum {cum_steps}")
            });
        Ok(())
    }

    // -- cohort barriers ----------------------------------------------

    fn report(
        &mut self,
        sweep: u64,
        rung: u64,
        tid: u64,
        score: Option<f32>,
        t: f64,
    ) -> io::Result<()> {
        let mut rec = ServeJournalRec::blank("report", ns(t));
        rec.sweep = sweep;
        rec.trial = tid;
        rec.rung = rung;
        rec.has_score = score.is_some();
        rec.score_bits = score.map_or(0, f32::to_bits);
        self.journal(&rec)?;
        let cohort = self
            .cohorts
            .get_mut(&(sweep, rung))
            .expect("report for unknown cohort");
        cohort.reports.insert(tid, score);
        if !cohort.decided && cohort.reports.len() == cohort.expected.len() {
            self.decide(sweep, rung, t)?;
        }
        Ok(())
    }

    /// Synchronous successive-halving decision: every entrant has
    /// reported, so rank the live candidates and promote the top
    /// `ceil(n / eta)`. Candidate order depends only on `(score, id)`,
    /// never on arrival order — crash/restart and preemption cannot
    /// change the outcome.
    fn decide(&mut self, sweep: u64, rung: u64, t: f64) -> io::Result<()> {
        let t_ns = ns(t);
        let cohort = self.cohorts.get_mut(&(sweep, rung)).expect("cohort");
        cohort.decided = true;
        let mut candidates: Vec<(f32, u64)> = cohort
            .reports
            .iter()
            .filter_map(|(&tid, &score)| score.map(|s| (s, tid)))
            .collect();
        candidates.retain(|&(_, tid)| self.trials[tid as usize].state == TrialState::Buffered);
        candidates.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let eta = self.cfg.rung.eta.max(1);
        let keep = if candidates.is_empty() {
            0
        } else {
            candidates.len().div_ceil(eta)
        };
        let mut promoted: Vec<u64> = candidates[..keep].iter().map(|&(_, tid)| tid).collect();
        promoted.sort_unstable();

        let mut rec = ServeJournalRec::blank("decision", t_ns);
        rec.sweep = sweep;
        rec.rung = rung;
        rec.promoted = promoted.clone();
        self.journal(&rec)?;

        for &(_, tid) in &candidates[keep..] {
            self.limbo.remove(&tid);
            self.flight
                .record_with(tid, t_ns, FlightKind::Evict, None, None, None, || {
                    format!("early-stopped at rung {rung}")
                });
            self.set_terminal(tid, TrialState::Stopped, None, t_ns)?;
        }
        if promoted.is_empty() {
            return Ok(());
        }
        assert!(
            rung < self.cfg.rung.final_rung() as u64,
            "final-rung lanes complete instead of reporting to a barrier"
        );
        let next = rung + 1;
        let cum = self.cfg.rung.total_steps_at(rung as usize);
        self.cohorts.insert(
            (sweep, next),
            Cohort {
                expected: promoted.clone(),
                reports: BTreeMap::new(),
                decided: false,
            },
        );
        for &tid in &promoted {
            self.flight
                .record_with(tid, t_ns, FlightKind::Promote, None, None, None, || {
                    format!("to rung {next}")
                });
        }
        // Static admission keeps each trial on its bound device, so the
        // promoted cohort splits into per-device sets; fair share keeps
        // one set and places it wherever capacity frees up first.
        let mut groups: BTreeMap<Option<usize>, Vec<u64>> = BTreeMap::new();
        for &tid in &promoted {
            let bound = match self.cfg.policy {
                AdmitPolicy::Static => self.trials[tid as usize].bound,
                AdmitPolicy::FairShare => None,
            };
            groups.entry(bound).or_default().push(tid);
        }
        for (bound, ids) in groups {
            let lanes = ids
                .iter()
                .map(|tid| Some(self.limbo.remove(tid).expect("promoted lane in limbo")))
                .collect();
            let seq = self.set_seq;
            self.set_seq += 1;
            self.ready.push(ReadySet {
                sweep,
                rung: next,
                cum_steps: cum,
                trials: ids,
                lanes,
                bound,
                ready_since: t,
                seq,
            });
        }
        Ok(())
    }

    // -- admission ----------------------------------------------------

    fn idle_devices(&self, t: f64) -> Vec<usize> {
        (0..self.fleet.len())
            .filter(|&d| self.busy[d] <= t + 1e-12)
            .collect()
    }

    fn dispatch(&mut self, t: f64) -> io::Result<()> {
        loop {
            if self.ready.is_empty() {
                return Ok(());
            }
            let idle = self.idle_devices(t);
            if idle.is_empty() {
                return Ok(());
            }
            let Some((set_idx, device)) = self.pick(&idle) else {
                return Ok(());
            };
            self.launch(set_idx, device, t)?;
        }
    }

    /// Chooses the next (ready set, device) pair, or `None` if nothing
    /// may start.
    fn pick(&self, idle: &[usize]) -> Option<(usize, usize)> {
        match self.cfg.policy {
            AdmitPolicy::Static => {
                // Strict FIFO, no backfilling: only the oldest set may
                // start; if its bound device is busy, everything waits.
                let (idx, head) = self.ready.iter().enumerate().min_by(|(_, a), (_, b)| {
                    a.ready_since
                        .total_cmp(&b.ready_since)
                        .then(a.seq.cmp(&b.seq))
                })?;
                let device = match head.bound {
                    Some(d) => idle.contains(&d).then_some(d),
                    None => idle.first().copied(),
                };
                device.map(|d| (idx, d))
            }
            AdmitPolicy::FairShare => {
                let mut eligible: Vec<usize> = self
                    .ready
                    .iter()
                    .map(|s| self.sweeps[s.sweep as usize].tenant)
                    .collect();
                eligible.sort_unstable();
                eligible.dedup();
                let tenant = self.fair.pick(&eligible)?;
                // Within the tenant: deepest rung first (finish what is
                // closest to done), then furthest-progressed, then FIFO.
                let (idx, _) = self
                    .ready
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| self.sweeps[s.sweep as usize].tenant == tenant)
                    .min_by(|(_, a), (_, b)| {
                        b.rung
                            .cmp(&a.rung)
                            .then(b.cum_steps.cmp(&a.cum_steps))
                            .then(a.seq.cmp(&b.seq))
                    })?;
                Some((idx, *idle.first()?))
            }
        }
    }

    fn launch(&mut self, set_idx: usize, device: usize, t: f64) -> io::Result<()> {
        let mut set = self.ready.swap_remove(set_idx);
        let cap = self
            .fleet
            .max_fused_width(device, &self.profile, self.cfg.width_cap)
            .max(1);
        let width = set.trials.len().min(cap);
        if width < set.trials.len() {
            // The overflow keeps the set's queue position.
            let rest_trials = set.trials.split_off(width);
            let rest_lanes = set.lanes.split_off(width);
            self.ready.push(ReadySet {
                sweep: set.sweep,
                rung: set.rung,
                cum_steps: set.cum_steps,
                trials: rest_trials,
                lanes: rest_lanes,
                bound: set.bound,
                ready_since: set.ready_since,
                seq: set.seq,
            });
        }
        let aid = self.next_aid;
        self.next_aid += 1;
        self.arrays_built += 1;
        self.max_width = self.max_width.max(width as u64);
        let t_ns = ns(t);
        let trial_objs: Vec<Trial<B::Config>> = set
            .trials
            .iter()
            .map(|&tid| Trial {
                id: tid,
                config: self.configs[tid as usize].clone(),
            })
            .collect();
        if let Some(p) = &self.profiler {
            p.set_flight_cursor(FlightCursor {
                t_ns,
                device: Some(device as u64),
                array: Some(aid),
            });
        }
        let fresh = set.cum_steps == 0 && set.lanes.iter().all(Option::is_none);
        let array = if fresh {
            self.backend.build(&trial_objs)
        } else {
            let lanes: Vec<LaneState> = set
                .lanes
                .into_iter()
                .map(|l| l.expect("resumed set has every lane buffered"))
                .collect();
            self.lanes_migrated += lanes.len() as u64;
            self.backend.splice(&trial_objs, &lanes, set.cum_steps)
        };
        let steps = self.cfg.rung.total_steps_at(set.rung as usize) - set.cum_steps;
        assert!(steps > 0, "ready set with nothing left to train");
        let step_s = self
            .fleet
            .step_time_s(device, &self.profile, width, SharingPolicy::Hfta);
        for (i, &tid) in set.trials.iter().enumerate() {
            self.trials[tid as usize].state = TrialState::Running;
            if self.cfg.policy == AdmitPolicy::Static && self.trials[tid as usize].bound.is_none() {
                self.trials[tid as usize].bound = Some(device);
            }
            let (rung, cum) = (set.rung, set.cum_steps);
            self.flight.record_with(
                tid,
                t_ns,
                FlightKind::Dispatch,
                Some(device as u64),
                Some(aid),
                Some(i as u64),
                || format!("rung {rung} cum {cum} width {width}"),
            );
            self.flight.record_with(
                tid,
                t_ns,
                FlightKind::RungStart,
                Some(device as u64),
                Some(aid),
                Some(i as u64),
                || format!("rung {rung} steps {steps}"),
            );
        }
        self.busy[device] = t + steps as f64 * step_s;
        let key = self.run_seq;
        self.run_seq += 1;
        self.push_event(self.busy[device], 0, EventKind::SegmentDone(key));
        self.running.insert(
            key,
            RunningSeg {
                aid,
                array,
                sweep: set.sweep,
                tenant: self.sweeps[set.sweep as usize].tenant,
                priority: self.sweeps[set.sweep as usize].priority,
                rung: set.rung,
                cum_start: set.cum_steps,
                steps,
                trials: set.trials,
                device,
                width,
                start_s: t,
                step_s,
            },
        );
        Ok(())
    }

    // -- preemption ---------------------------------------------------

    /// On a saturated fleet, a strictly higher-priority arrival cuts the
    /// lowest-priority running array at its current whole-step boundary.
    fn maybe_preempt(&mut self, priority: f64, sweep: u64, t: f64) -> io::Result<()> {
        if !self.idle_devices(t).is_empty() {
            return Ok(());
        }
        let victim = self
            .running
            .iter()
            .filter(|(_, s)| s.sweep != sweep && s.priority < priority)
            .min_by(|(_, a), (_, b)| {
                a.priority
                    .total_cmp(&b.priority)
                    .then(a.device.cmp(&b.device))
            })
            .map(|(&k, _)| k);
        if let Some(key) = victim {
            self.preempt(key, t)?;
        }
        Ok(())
    }

    fn preempt(&mut self, key: u64, t: f64) -> io::Result<()> {
        let (steps, start_s, step_s) = {
            let seg = &self.running[&key];
            (seg.steps, seg.start_s, seg.step_s)
        };
        let done = (((t - start_s) / step_s) + 1e-9).floor().max(0.0) as u64;
        let k = done.min(steps);
        if k >= steps {
            return Ok(()); // the segment completes at this very instant
        }
        let mut seg = self.running.remove(&key).expect("victim exists");
        self.cancelled_segs.insert(key);
        self.preemptions += 1;
        let outcome = self.train_part(&mut seg, k);
        let cut_ns = ns(seg.start_s) + Self::per_step_ns(seg.step_s) * k;
        let cut_s = seg.start_s + k as f64 * seg.step_s;
        self.busy[seg.device] = cut_s.min(t);
        let dev = Some(seg.device as u64);
        let arr = Some(seg.aid);
        if let Some(p) = &self.profiler {
            p.set_flight_cursor(FlightCursor {
                t_ns: cut_ns,
                device: dev,
                array: arr,
            });
        }
        let cancelled = self.sweeps[seg.sweep as usize].cancelled;
        let mut survivors: Vec<u64> = Vec::new();
        let mut lanes: Vec<Option<LaneState>> = Vec::new();
        for (i, &tid) in seg.trials.iter().enumerate() {
            let lane = Some(i as u64);
            if outcome.killed[i] {
                self.flight
                    .record_with(tid, cut_ns, FlightKind::Evict, dev, arr, lane, || {
                        "divergence sentinel".to_string()
                    });
                self.set_terminal(tid, TrialState::Killed, None, cut_ns)?;
                self.report(seg.sweep, seg.rung, tid, None, t)?;
                continue;
            }
            if cancelled {
                self.flight
                    .record_with(tid, cut_ns, FlightKind::Evict, dev, arr, lane, || {
                        "sweep cancelled".to_string()
                    });
                self.set_terminal(tid, TrialState::Cancelled, None, cut_ns)?;
                self.report(seg.sweep, seg.rung, tid, None, t)?;
                continue;
            }
            self.flight
                .record_with(tid, cut_ns, FlightKind::Preempt, dev, arr, lane, || {
                    format!("after {k} of {} steps", seg.steps)
                });
            let state = self.backend.extract(&seg.array, i);
            self.checkpoint_lane(tid, seg.rung, seg.cum_start + k, &state, cut_ns)?;
            self.trials[tid as usize].state = TrialState::Buffered;
            survivors.push(tid);
            lanes.push(Some(state));
        }
        if !survivors.is_empty() {
            let seq = self.set_seq;
            self.set_seq += 1;
            self.ready.push(ReadySet {
                sweep: seg.sweep,
                rung: seg.rung,
                cum_steps: seg.cum_start + k,
                trials: survivors,
                lanes,
                bound: None,
                ready_since: t,
                seq,
            });
        }
        Ok(())
    }

    // -- persistence --------------------------------------------------

    fn journal(&mut self, rec: &ServeJournalRec) -> io::Result<()> {
        match &mut self.store {
            Some(store) => store.append(rec),
            None => Ok(()),
        }
    }

    fn set_terminal(
        &mut self,
        tid: u64,
        state: TrialState,
        loss_bits: Option<u32>,
        t_ns: u64,
    ) -> io::Result<()> {
        debug_assert!(state.is_terminal());
        self.trials[tid as usize].state = state;
        self.trials[tid as usize].loss_bits = loss_bits;
        let mut rec = ServeJournalRec::blank("terminal", t_ns);
        rec.trial = tid;
        rec.sweep = self.trials[tid as usize].sweep;
        rec.status = state.label().to_string();
        rec.has_loss = loss_bits.is_some();
        rec.loss_bits = loss_bits.unwrap_or(0);
        self.journal(&rec)
    }

    /// Tees flight events recorded since the last call into the journal
    /// so recovery can replay the exact observability stream.
    fn tee(&mut self) -> io::Result<()> {
        if self.store.is_none() {
            return Ok(());
        }
        let Some(p) = self.profiler.clone() else {
            return Ok(());
        };
        let n = p.flight_event_count();
        if n <= self.teed {
            return Ok(());
        }
        let events = p.flight_tail(n - self.teed);
        let store = self.store.as_mut().expect("checked above");
        for e in &events {
            store.append_flight(e)?;
        }
        self.teed = n;
        Ok(())
    }

    // -- recovery -----------------------------------------------------

    /// Rebuilds a service from its journal after a crash: replays
    /// submissions (configs re-supplied via `commands`, which must be
    /// the same list the crashed service was given), restores every
    /// surviving lane from its snapshot, re-emits the journaled flight
    /// history, and requeues unprocessed commands. In-flight segments at
    /// the crash retrain from their last snapshot bit-identically.
    pub fn recover(
        backend: B,
        fleet: DeviceFleet,
        cfg: ServeCfg,
        commands: Vec<(f64, ServeCmd<B::Config>)>,
    ) -> io::Result<ServeEngine<B>> {
        cfg.rung.validate();
        let dir = cfg
            .checkpoint_dir
            .clone()
            .expect("recover requires a checkpoint_dir");
        let (recs, store) = CheckpointStore::resume(&dir)?;
        let mut eng = ServeEngine::bare(backend, fleet, cfg, Some(store));
        let mut cmds: VecDeque<(f64, ServeCmd<B::Config>)> = commands.into();
        let mut resume_ns = 0u64;
        let mut ckpts: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        let mut decisions: BTreeMap<(u64, u64), Vec<u64>> = BTreeMap::new();
        let mut flights: Vec<hfta_telemetry::flight::FlightEvent> = Vec::new();

        for rec in &recs {
            resume_ns = resume_ns.max(rec.t_ns);
            match rec.kind.as_str() {
                "meta" => {}
                "submit" => {
                    let spec = match cmds.pop_front() {
                        Some((_, ServeCmd::Submit(spec))) => spec,
                        Some((_, ServeCmd::Cancel { .. })) => {
                            panic!("journal/command mismatch: expected a submit")
                        }
                        None => panic!("journal has more submits than the command list"),
                    };
                    assert_eq!(
                        spec.configs.len() as u64,
                        rec.n_trials,
                        "recovered sweep size differs from the journal"
                    );
                    let sweep = eng.sweeps.len() as u64;
                    assert_eq!(sweep, rec.sweep, "sweep ids must replay in order");
                    let tenant = eng.fair.tenant_id(&rec.tenant, rec.priority);
                    let base = eng.configs.len() as u64;
                    assert_eq!(base, rec.base_trial, "trial ids must replay in order");
                    let ids: Vec<u64> = (base..base + rec.n_trials).collect();
                    for config in spec.configs {
                        eng.configs.push(config);
                        eng.trials.push(TrialInfo {
                            sweep,
                            state: TrialState::Queued,
                            bound: None,
                            loss_bits: None,
                        });
                    }
                    eng.sweeps.push(SweepInfo {
                        tenant,
                        priority: rec.priority,
                        cancelled: false,
                    });
                    eng.cohorts.insert(
                        (sweep, 0),
                        Cohort {
                            expected: ids,
                            reports: BTreeMap::new(),
                            decided: false,
                        },
                    );
                }
                "cancel" => {
                    match cmds.pop_front() {
                        Some((_, ServeCmd::Cancel { sweep })) => {
                            debug_assert_eq!(sweep, rec.sweep);
                        }
                        _ => panic!("journal/command mismatch: expected a cancel"),
                    }
                    if let Some(info) = eng.sweeps.get_mut(rec.sweep as usize) {
                        info.cancelled = true;
                    }
                }
                "report" => {
                    let cohort = eng
                        .cohorts
                        .get_mut(&(rec.sweep, rec.rung))
                        .expect("report for unknown cohort in journal");
                    let score = rec.has_score.then(|| f32::from_bits(rec.score_bits));
                    cohort.reports.insert(rec.trial, score);
                }
                "decision" => {
                    let cohort = eng
                        .cohorts
                        .get_mut(&(rec.sweep, rec.rung))
                        .expect("decision for unknown cohort in journal");
                    cohort.decided = true;
                    decisions.insert((rec.sweep, rec.rung), rec.promoted.clone());
                    if !rec.promoted.is_empty() {
                        eng.cohorts.insert(
                            (rec.sweep, rec.rung + 1),
                            Cohort {
                                expected: rec.promoted.clone(),
                                reports: BTreeMap::new(),
                                decided: false,
                            },
                        );
                    }
                }
                "ckpt" => {
                    ckpts.insert(rec.trial, (rec.rung, rec.cum_steps));
                }
                "terminal" => {
                    let state = TrialState::from_label(&rec.status)
                        .expect("unknown terminal status in journal");
                    eng.trials[rec.trial as usize].state = state;
                    eng.trials[rec.trial as usize].loss_bits =
                        rec.has_loss.then_some(rec.loss_bits);
                }
                "flight" => {
                    if let Some(e) = &rec.flight {
                        flights.push(e.clone());
                    }
                }
                other => panic!("unknown journal record kind {other:?}"),
            }
        }

        // Re-emit the journaled flight history so post-restart analysis
        // (SLOs, critical paths) spans the restart; the re-emitted
        // events must not be teed back into the journal.
        if let Some(p) = &eng.profiler {
            for e in &flights {
                p.flight_event(
                    e.trial,
                    e.t_ns,
                    e.kind,
                    e.device,
                    e.array,
                    e.lane,
                    e.detail.clone(),
                );
            }
            eng.teed = p.flight_event_count();
        }

        let resume_s = resume_ns as f64 / 1e9;
        eng.now_s = resume_s;

        // Classify every non-terminal trial from its journal trail and
        // group survivors into ready sets.
        let mut groups: BTreeMap<(u64, u64, u64), Vec<u64>> = BTreeMap::new();
        for tid in 0..eng.trials.len() as u64 {
            if eng.trials[tid as usize].state.is_terminal() {
                continue;
            }
            let sweep = eng.trials[tid as usize].sweep;
            let position = match ckpts.get(&tid) {
                None => (sweep, 0u64, 0u64),
                Some(&(rung, cum)) => {
                    if cum == eng.cfg.rung.total_steps_at(rung as usize) {
                        match decisions.get(&(sweep, rung)) {
                            Some(promoted) if promoted.contains(&tid) => (sweep, rung + 1, cum),
                            Some(_) => {
                                // Decided against but the terminal record
                                // is missing (torn tail): settle it now.
                                eng.set_terminal(tid, TrialState::Stopped, None, resume_ns)?;
                                continue;
                            }
                            None => {
                                // Reported, barrier still open: back to
                                // limbo awaiting the cohort decision.
                                let lane = eng.store.as_ref().expect("store").load_snapshot(tid)?;
                                eng.trials[tid as usize].state = TrialState::Buffered;
                                eng.limbo.insert(tid, lane);
                                eng.restores += 1;
                                eng.flight.record_with(
                                    tid,
                                    resume_ns,
                                    FlightKind::Restore,
                                    None,
                                    None,
                                    None,
                                    || format!("limbo rung {rung}"),
                                );
                                continue;
                            }
                        }
                    } else {
                        (sweep, rung, cum) // preempted mid-rung
                    }
                }
            };
            if eng.sweeps[sweep as usize].cancelled {
                // The cancel landed but this trial's eviction did not:
                // settle it, reporting to its cohort if still owed.
                let (_, rung, _) = position;
                let owed = eng
                    .cohorts
                    .get(&(sweep, rung))
                    .is_some_and(|c| !c.reports.contains_key(&tid));
                eng.flight
                    .record_with(tid, resume_ns, FlightKind::Evict, None, None, None, || {
                        "sweep cancelled".to_string()
                    });
                eng.set_terminal(tid, TrialState::Cancelled, None, resume_ns)?;
                if owed {
                    eng.report(sweep, rung, tid, None, resume_s)?;
                }
                continue;
            }
            groups.entry(position).or_default().push(tid);
        }
        for ((sweep, rung, cum), ids) in groups {
            let mut lanes: Vec<Option<LaneState>> = Vec::with_capacity(ids.len());
            for &tid in &ids {
                if rung == 0 && cum == 0 && !ckpts.contains_key(&tid) {
                    eng.trials[tid as usize].state = TrialState::Queued;
                    eng.flight.record_with(
                        tid,
                        resume_ns,
                        FlightKind::Restore,
                        None,
                        None,
                        None,
                        || "fresh".to_string(),
                    );
                    lanes.push(None);
                } else {
                    // The lane's `step_count` is the *optimizer's* counter
                    // (zero for SGD, `t` for Adam); the journal's
                    // `cum_steps` is the global-step position of record.
                    let lane = eng.store.as_ref().expect("store").load_snapshot(tid)?;
                    eng.trials[tid as usize].state = TrialState::Buffered;
                    eng.restores += 1;
                    eng.flight.record_with(
                        tid,
                        resume_ns,
                        FlightKind::Restore,
                        None,
                        None,
                        None,
                        || format!("rung {rung} cum {cum}"),
                    );
                    lanes.push(Some(lane));
                }
            }
            let seq = eng.set_seq;
            eng.set_seq += 1;
            eng.ready.push(ReadySet {
                sweep,
                rung,
                cum_steps: cum,
                trials: ids,
                lanes,
                bound: None,
                ready_since: resume_s,
                seq,
            });
        }

        // Barriers that became complete during replay (e.g. a cancelled
        // straggler settled above) decide now.
        let complete: Vec<(u64, u64)> = eng
            .cohorts
            .iter()
            .filter(|(_, c)| !c.decided && c.reports.len() == c.expected.len())
            .map(|(&k, _)| k)
            .collect();
        for (sweep, rung) in complete {
            eng.decide(sweep, rung, resume_s)?;
        }

        // Unprocessed commands rejoin the queue, no earlier than the
        // resume instant.
        for (t, cmd) in cmds {
            if matches!(cmd, ServeCmd::Submit(_)) {
                eng.pending_submits += 1;
            }
            let idx = eng.commands.len();
            eng.commands.push(Some(cmd));
            eng.push_event(t.max(resume_s), 1, EventKind::Command(idx));
        }

        eng.dispatch(resume_s)?;
        eng.tee()?;
        Ok(eng)
    }

    // -- reporting ----------------------------------------------------

    /// Final report and per-trial outcomes. Call after [`Self::drain`].
    pub fn finish(self) -> ServeRun {
        debug_assert!(self.running.is_empty(), "segments still booked");
        debug_assert!(self.ready.is_empty(), "sets still queued");
        debug_assert!(self.limbo.is_empty(), "lanes stuck at a barrier");
        let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut outcomes = Vec::with_capacity(self.trials.len());
        for (tid, info) in self.trials.iter().enumerate() {
            debug_assert!(info.state.is_terminal(), "trial {tid} not settled");
            *counts.entry(info.state.label()).or_default() += 1;
            outcomes.push(TrialOutcome {
                trial: tid as u64,
                sweep: info.sweep,
                tenant: self
                    .fair
                    .name(self.sweeps[info.sweep as usize].tenant)
                    .to_string(),
                status: info.state.label().to_string(),
                has_loss: info.loss_bits.is_some(),
                loss_bits: info.loss_bits.unwrap_or(0),
            });
        }
        let mut rollup = flight::SloRollup::default();
        if let Some(p) = &self.profiler {
            rollup = flight::SloRollup::from_events(&p.flight_events());
            for (q, e) in rollup.queue_waits_us.iter().zip(&rollup.e2e_us) {
                p.observe("serve/queue_wait_us", *q);
                p.observe("serve/e2e_latency_us", *e);
            }
        }
        let report = ServeReport {
            policy: self.cfg.policy.name().to_string(),
            sweeps: self.sweeps.len() as u64,
            trials: self.trials.len() as u64,
            finished: counts.get("finished").copied().unwrap_or(0),
            stopped: counts.get("stopped").copied().unwrap_or(0),
            killed: counts.get("killed").copied().unwrap_or(0),
            cancelled: counts.get("cancelled").copied().unwrap_or(0),
            makespan_s: self.makespan_s,
            device_hours: self.fleet.device_hours(),
            occupancy: self.fleet.occupancy(self.makespan_s),
            packing_efficiency: self.fleet.packing_efficiency(),
            arrays_built: self.arrays_built,
            preemptions: self.preemptions,
            checkpoints: self.checkpoints,
            restores: self.restores,
            lanes_migrated: self.lanes_migrated,
            max_width: self.max_width,
            queue_wait_p50_us: rollup.queue_wait_us(0.50),
            queue_wait_p99_us: rollup.queue_wait_us(0.99),
            e2e_latency_p50_us: rollup.e2e_latency_us(0.50),
            e2e_latency_p99_us: rollup.e2e_latency_us(0.99),
            queue_us: rollup.queue_us,
            compute_us: rollup.compute_us,
            surgery_us: rollup.surgery_us,
            quarantine_us: rollup.quarantine_us,
        };
        ServeRun { report, outcomes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeError;
    use hfta_nn::layers::{Conv2dCfg, LinearCfg};
    use hfta_plan::{ModelGraph, OpSpec};

    fn convnet(c: usize) -> ModelGraph {
        ModelGraph::new(
            format!("conv{c}"),
            vec![2, 4, 4],
            vec![
                OpSpec::conv2d(Conv2dCfg::new(2, c, 3).stride(1).padding(1).bias(false)),
                OpSpec::relu(),
            ],
        )
    }

    fn mlp() -> ModelGraph {
        ModelGraph::new(
            "mlp",
            vec![8],
            vec![OpSpec::linear(LinearCfg::new(8, 4)), OpSpec::tanh()],
        )
    }

    fn spec(configs: usize, archs: Vec<ModelGraph>) -> SweepSpec<u32> {
        SweepSpec {
            tenant: "t".into(),
            priority: 1.0,
            configs: (0..configs as u32).collect(),
            archs,
        }
    }

    #[test]
    fn homogeneous_and_graphless_sweeps_are_admitted() {
        spec(2, Vec::new()).validate().unwrap();
        spec(2, vec![convnet(3), convnet(3)]).validate().unwrap();
        // Partially fusible mixed sets are admitted too.
        spec(3, vec![convnet(3), convnet(3), mlp()])
            .validate()
            .unwrap();
    }

    #[test]
    fn admission_rejects_bad_sweeps_with_typed_errors() {
        assert!(matches!(
            spec(0, Vec::new()).validate(),
            Err(ServeError::EmptySweep { .. })
        ));
        assert!(matches!(
            spec(2, vec![convnet(3)]).validate(),
            Err(ServeError::ArchCountMismatch {
                archs: 1,
                configs: 2,
                ..
            })
        ));
        // Nothing fuses across a convnet and an MLP.
        let err = spec(2, vec![convnet(3), mlp()]).validate().unwrap_err();
        assert!(matches!(err, ServeError::Unfusible { .. }), "{err}");
        assert!(err.to_string().contains("0%"), "{err}");
    }
}
