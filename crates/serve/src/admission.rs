//! Admission control: who trains next when a device frees up.
//!
//! The service keeps one logical queue per tenant and picks the next
//! tenant by *deficit-weighted fair share*: each tenant accumulates
//! `service` (realized live lane-steps) and the scheduler always serves
//! the tenant with the smallest `service / weight` ratio among those
//! with runnable work. A tenant with weight 2 therefore converges to
//! twice the lane-step throughput of a weight-1 tenant under
//! saturation, and an idle tenant's deficit never grows — returning
//! tenants are served promptly without starving the rest.

/// How the service admits queued work onto free devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitPolicy {
    /// Strict submission-order FIFO without backfilling, with each
    /// trial bound to the first device it lands on (placement-coupled,
    /// like a conventional cluster scheduler): if the set at the head
    /// of the queue cannot start — its bound device is busy — nothing
    /// behind it may start either.
    Static,
    /// Deficit-weighted fair share across tenants, work-conserving,
    /// with priority preemption of running arrays via lane surgery.
    FairShare,
}

impl AdmitPolicy {
    /// Stable label used in reports and bench records.
    pub fn name(&self) -> &'static str {
        match self {
            AdmitPolicy::Static => "static",
            AdmitPolicy::FairShare => "fair-share",
        }
    }
}

/// Per-tenant fair-share accounting.
#[derive(Debug, Clone)]
struct TenantAcct {
    name: String,
    /// Scheduling weight (from sweep priority; max over submissions).
    weight: f64,
    /// Realized service: live lane-steps charged at segment completion.
    service: f64,
}

/// The deficit-weighted fair queue over tenants.
#[derive(Debug, Clone, Default)]
pub struct FairQueue {
    tenants: Vec<TenantAcct>,
}

impl FairQueue {
    /// Empty queue.
    pub fn new() -> FairQueue {
        FairQueue::default()
    }

    /// Returns the tenant id for `name`, registering it on first sight.
    /// The tenant's weight is the maximum priority seen across its
    /// submissions (priorities must be positive and finite).
    pub fn tenant_id(&mut self, name: &str, priority: f64) -> usize {
        assert!(
            priority.is_finite() && priority > 0.0,
            "tenant priority must be positive and finite, got {priority}"
        );
        if let Some(id) = self.tenants.iter().position(|t| t.name == name) {
            self.tenants[id].weight = self.tenants[id].weight.max(priority);
            return id;
        }
        self.tenants.push(TenantAcct {
            name: name.to_string(),
            weight: priority,
            service: 0.0,
        });
        self.tenants.len() - 1
    }

    /// Tenant display name.
    pub fn name(&self, tenant: usize) -> &str {
        &self.tenants[tenant].name
    }

    /// Tenant scheduling weight.
    pub fn weight(&self, tenant: usize) -> f64 {
        self.tenants[tenant].weight
    }

    /// Registered tenant count.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenant has registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Picks the next tenant to serve among `eligible` (tenants with
    /// runnable work): smallest normalized service `service / weight`,
    /// ties broken by lowest tenant id for determinism. Returns `None`
    /// when `eligible` is empty.
    pub fn pick(&self, eligible: &[usize]) -> Option<usize> {
        eligible.iter().copied().min_by(|&a, &b| {
            let na = self.tenants[a].service / self.tenants[a].weight;
            let nb = self.tenants[b].service / self.tenants[b].weight;
            na.total_cmp(&nb).then(a.cmp(&b))
        })
    }

    /// Charges `lane_steps` of realized service to `tenant`.
    pub fn charge(&mut self, tenant: usize, lane_steps: f64) {
        self.tenants[tenant].service += lane_steps;
    }

    /// Total service charged to `tenant` so far.
    pub fn service(&self, tenant: usize) -> f64 {
        self.tenants[tenant].service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_weight_is_max() {
        let mut q = FairQueue::new();
        let a = q.tenant_id("alice", 1.0);
        let b = q.tenant_id("bob", 2.0);
        assert_ne!(a, b);
        assert_eq!(q.tenant_id("alice", 4.0), a);
        assert_eq!(q.weight(a), 4.0);
        assert_eq!(q.len(), 2);
        assert_eq!(q.name(b), "bob");
    }

    #[test]
    fn pick_prefers_smallest_normalized_service() {
        let mut q = FairQueue::new();
        let a = q.tenant_id("a", 1.0);
        let b = q.tenant_id("b", 1.0);
        // Fresh tenants tie at 0/weight; lowest id wins.
        assert_eq!(q.pick(&[a, b]), Some(a));
        q.charge(a, 100.0);
        assert_eq!(q.pick(&[a, b]), Some(b));
        // Only-eligible tenant wins regardless of deficit.
        assert_eq!(q.pick(&[a]), Some(a));
        assert_eq!(q.pick(&[]), None);
    }

    #[test]
    fn weights_scale_service_share_under_saturation() {
        // Serve repeatedly from two always-eligible tenants with weights
        // 1:2, charging a fixed quantum per pick; the realized service
        // converges to the 1:2 weight ratio.
        let mut q = FairQueue::new();
        let a = q.tenant_id("small", 1.0);
        let b = q.tenant_id("big", 2.0);
        for _ in 0..3_000 {
            let t = q.pick(&[a, b]).unwrap();
            q.charge(t, 8.0);
        }
        let ratio = q.service(b) / q.service(a);
        assert!(
            (ratio - 2.0).abs() < 0.05,
            "service ratio {ratio} should approach the 2.0 weight ratio"
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_priority_is_rejected() {
        FairQueue::new().tenant_id("zero", 0.0);
    }
}
