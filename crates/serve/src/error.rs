//! Typed submission errors, surfaced by [`crate::ServeEngine::submit`]
//! and [`crate::ServeHandle::submit`] so callers (and `serve_cli` exit
//! codes) can react to rejected sweeps without string matching.

use std::fmt;

/// Why a sweep submission was rejected at admission.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A sweep was submitted with no trials.
    EmptySweep {
        /// Tenant that submitted the sweep.
        tenant: String,
    },
    /// `archs` was non-empty but did not pair one graph with each config.
    ArchCountMismatch {
        /// Tenant that submitted the sweep.
        tenant: String,
        /// Number of model graphs supplied.
        archs: usize,
        /// Number of trial configurations supplied.
        configs: usize,
    },
    /// The auto-fusion planner found no fusible structure across the
    /// sweep's model set (or a graph failed shape checking), so running
    /// it as an array would degrade to all-serial execution.
    Unfusible {
        /// Tenant that submitted the sweep.
        tenant: String,
        /// Planner detail: the offending graph or the zero-fusion plan.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::EmptySweep { tenant } => {
                write!(f, "tenant {tenant:?}: a sweep needs at least one trial")
            }
            ServeError::ArchCountMismatch {
                tenant,
                archs,
                configs,
            } => write!(
                f,
                "tenant {tenant:?}: {archs} model graphs for {configs} trial configs \
                 (supply one graph per trial, or none for a homogeneous sweep)"
            ),
            ServeError::Unfusible { tenant, detail } => {
                write!(f, "tenant {tenant:?}: sweep is not fusible: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ServeError> for std::io::Error {
    fn from(e: ServeError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
    }
}
