//! Chrome-trace export under concurrent span traffic.
//!
//! Worker threads race to finish spans at overlapping (and deliberately
//! identical) instants; the profiler then receives the begin/end events in
//! global close order — the worst interleaving the worker pool can
//! produce. The exported JSON must stay loadable and keep every lane's
//! timeline well-formed: timestamps non-decreasing in emission order and
//! begin/end pairs balanced, including zero-length spans whose B and E
//! share a timestamp.

use std::sync::{Arc, Barrier};

use hfta_telemetry::Profiler;
use serde::Value;

const WORKERS: usize = 4;
const SPANS_PER_WORKER: usize = 8;

/// One worker's recorded span windows, microseconds from the shared epoch.
fn worker_spans(epoch: std::time::Instant, barrier: &Barrier) -> Vec<(f64, f64)> {
    let mut spans = Vec::with_capacity(SPANS_PER_WORKER);
    for _ in 0..SPANS_PER_WORKER {
        // Every span starts right after the rendezvous, so begins and ends
        // from different threads land interleaved and frequently tied.
        barrier.wait();
        let t0 = epoch.elapsed().as_secs_f64() * 1e6;
        std::hint::black_box((0..64).sum::<u64>());
        let t1 = epoch.elapsed().as_secs_f64() * 1e6;
        spans.push((t0, t1));
    }
    spans
}

#[test]
fn concurrent_span_closes_render_valid_monotone_trace() {
    let epoch = std::time::Instant::now();
    let barrier = Arc::new(Barrier::new(WORKERS));
    let handles: Vec<_> = (0..WORKERS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || worker_spans(epoch, &barrier))
        })
        .collect();
    let per_worker: Vec<Vec<(f64, f64)>> = handles
        .into_iter()
        .map(|h| h.join().expect("worker panicked"))
        .collect();

    // Replay into the profiler in global close order — exactly what a pool
    // of workers funneling completions into one telemetry sink produces.
    let p = Profiler::new("concurrency");
    let lanes: Vec<_> = (0..WORKERS)
        .map(|i| p.lane("pool", &format!("worker-{i}")))
        .collect();
    let mut events: Vec<(usize, usize, f64, f64)> = Vec::new();
    for (w, spans) in per_worker.iter().enumerate() {
        for (s, &(t0, t1)) in spans.iter().enumerate() {
            events.push((w, s, t0, t1));
        }
    }
    events.sort_by(|a, b| a.3.total_cmp(&b.3));
    for &(w, s, t0, t1) in &events {
        let name = format!("span-{w}-{s}");
        p.begin_at(lanes[w], &name, t0, Vec::new());
        p.end_at(lanes[w], &name, t1);
    }
    // A zero-length span: B and E share a timestamp; render's stable sort
    // must keep the B first.
    p.begin_at(lanes[0], "instant", 0.0, Vec::new());
    p.end_at(lanes[0], "instant", 0.0);

    let json = p.trace_json();
    let root: Value = serde_json::from_str(&json).expect("trace JSON parses");
    let Some(Value::Array(trace_events)) = root.get("traceEvents") else {
        panic!("no traceEvents array in {json:?}");
    };

    // Per (pid, tid) lane: non-decreasing timestamps and balanced,
    // never-negative B/E nesting in emission order.
    let mut last_ts: std::collections::HashMap<(u64, u64), f64> = Default::default();
    let mut depth: std::collections::HashMap<(u64, u64), i64> = Default::default();
    let mut durations = 0usize;
    for e in trace_events {
        let phase = match e.get("ph") {
            Some(Value::Str(s)) => s.as_str(),
            other => panic!("event without ph: {other:?}"),
        };
        if phase == "M" {
            continue;
        }
        let num = |key: &str| -> f64 {
            match e.get(key) {
                Some(Value::F64(v)) => *v,
                Some(Value::U64(v)) => *v as f64,
                Some(Value::I64(v)) => *v as f64,
                other => panic!("event {key} not numeric: {other:?}"),
            }
        };
        let lane = (num("pid") as u64, num("tid") as u64);
        let ts = num("ts");
        if let Some(&prev) = last_ts.get(&lane) {
            assert!(
                ts >= prev,
                "lane {lane:?} went back in time: {prev} -> {ts}"
            );
        }
        last_ts.insert(lane, ts);
        let d = depth.entry(lane).or_insert(0);
        match phase {
            "B" => {
                *d += 1;
                durations += 1;
            }
            "E" => {
                *d -= 1;
                assert!(*d >= 0, "lane {lane:?} closed a span it never opened");
            }
            "C" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(
        durations,
        WORKERS * SPANS_PER_WORKER + 1,
        "every span (plus the zero-length one) must survive the export"
    );
    for (lane, d) in depth {
        assert_eq!(d, 0, "lane {lane:?} has unbalanced begin/end events");
    }
}
