//! Property test: the log-bucket histogram's p50/p95/p99 estimates stay
//! within one bucket's relative error of the exact percentiles.
//!
//! Buckets are powers of two (`[2^(i-1), 2^i)`), so an estimate can never
//! be off by more than the width of the bucket the exact percentile falls
//! in: `estimate ∈ [exact / 2, exact * 2]` for values ≥ 1, and within
//! `[0, 1]`'s bucket bounds below that. Clamping to the observed min/max
//! tightens the extremes further; random samples across four orders of
//! magnitude must keep every quantile inside those bounds.

use hfta_telemetry::Profiler;
use proptest::prelude::*;

/// Exact percentile by the nearest-rank method on sorted samples.
fn exact_percentile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// One bucket's relative-error bounds around an exact value: the log-2
/// bucket containing `exact`, widened to the neighbouring bucket edge on
/// each side to absorb in-bucket linear interpolation landing at either
/// boundary, then clamped to the observed range like the estimator.
fn bucket_bounds(exact: f64, min: f64, max: f64) -> (f64, f64) {
    let (lo, hi) = if exact < 1.0 {
        (0.0, 1.0)
    } else {
        let i = exact.log2().floor();
        (2f64.powf(i - 1.0), 2f64.powf(i + 1.0))
    };
    (lo.max(min.min(max)), hi.min(max).max(lo))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantile_estimates_land_within_one_bucket(
        samples in prop::collection::vec(0.01f64..10_000.0, 10..400),
    ) {
        let p = Profiler::new("hist-prop");
        for &v in &samples {
            p.observe("lat", v);
        }
        let report = p.report();
        let h = &report.experiments[0].histograms[0];
        prop_assert_eq!(h.count, samples.len() as u64);

        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];

        for (q, est) in [(0.50, h.p50), (0.95, h.p95), (0.99, h.p99)] {
            let exact = exact_percentile(&sorted, q);
            let (lo, hi) = bucket_bounds(exact, min, max);
            prop_assert!(
                est >= lo && est <= hi,
                "q{:.0}: estimate {} outside one-bucket bounds [{}, {}] of exact {}",
                q * 100.0, est, lo, hi, exact,
            );
            // And the estimator never leaves the observed range at all.
            prop_assert!(est >= min && est <= max);
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        samples in prop::collection::vec(0.5f64..5_000.0, 5..200),
    ) {
        let p = Profiler::new("hist-mono");
        for &v in &samples {
            p.observe("lat", v);
        }
        let h = &p.report().experiments[0].histograms[0];
        prop_assert!(h.p50 <= h.p95);
        prop_assert!(h.p95 <= h.p99);
        prop_assert!(h.min <= h.p50 && h.p99 <= h.max);
    }
}
