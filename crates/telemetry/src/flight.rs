//! hfta-flight: causal trial-lifecycle tracing.
//!
//! A [`FlightEvent`] journal follows every trial across arrays, devices and
//! lane surgery: the scheduler records lifecycle edges (submit, enqueue,
//! dispatch, rung start/end, promote, evict, complete), `hfta-core`'s lane
//! surgery records extract/splice with source→dest placement, the
//! `ScopeMonitor` records sentinel faults with a post-mortem, and the fleet
//! records device bind/release. All timestamps live on an integer
//! nanosecond grid of *simulated* time, so the per-trial decomposition
//! (queue + compute + surgery + quarantine) telescopes bit-exactly to the
//! end-to-end latency and is reproducible across machines and thread
//! counts.
//!
//! Storage mirrors the profiler's cost model: events land in a bounded
//! ring buffer per experiment scope ([`FlightLog`]), optionally spilling
//! oldest-half batches to a JSONL journal under `--trace`; with no
//! profiler installed the recording path ([`FlightRecorder`]) is a single
//! branch on a cached `None`.

use crate::profiler::Profiler;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::rc::Rc;

/// Sentinel trial id for fleet-level events (device bind/release) that are
/// not owned by any single trial. `u64::MAX` round-trips losslessly through
/// the vendored JSON layer (`Value::U64`).
pub const FLEET_TRIAL: u64 = u64::MAX;

/// Default ring capacity per experiment scope (~65k events).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 65_536;

/// Lifecycle edge kinds. Unit variants only: the vendored derive serializes
/// them as the variant-name string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlightKind {
    /// Trial arrived at the scheduler (first event of every trial).
    Submit,
    /// Trial entered the pending queue.
    Enqueue,
    /// Trial was placed into an array lane on a device.
    Dispatch,
    /// A rung segment began training this trial's lane.
    RungStart,
    /// A rung segment finished training this trial's lane.
    RungEnd,
    /// ASHA promoted the trial to the next rung.
    Promote,
    /// Terminal: early-stopped by ASHA or killed by a sentinel.
    Evict,
    /// Terminal: finished the final rung.
    Complete,
    /// Lane surgery pulled the trial's state out of an array.
    Extract,
    /// Lane surgery wrote the trial's state into a new array lane.
    Splice,
    /// A scope sentinel fired on this trial's lane (post-mortem in detail).
    Fault,
    /// Fleet-level: a device started a segment (trial = [`FLEET_TRIAL`]).
    DeviceBind,
    /// Fleet-level: a device finished a segment (trial = [`FLEET_TRIAL`]).
    DeviceRelease,
    /// A higher-priority tenant preempted this trial's running segment.
    Preempt,
    /// The trial's lane state was persisted to a crash-safe snapshot.
    Checkpoint,
    /// The trial's state was restored from a snapshot after a service
    /// restart (or re-queued fresh when no snapshot existed yet).
    Restore,
}

impl FlightKind {
    /// Short lowercase label for reports and dashboards.
    pub fn label(&self) -> &'static str {
        match self {
            FlightKind::Submit => "submit",
            FlightKind::Enqueue => "enqueue",
            FlightKind::Dispatch => "dispatch",
            FlightKind::RungStart => "rung-start",
            FlightKind::RungEnd => "rung-end",
            FlightKind::Promote => "promote",
            FlightKind::Evict => "evict",
            FlightKind::Complete => "complete",
            FlightKind::Extract => "extract",
            FlightKind::Splice => "splice",
            FlightKind::Fault => "fault",
            FlightKind::DeviceBind => "device-bind",
            FlightKind::DeviceRelease => "device-release",
            FlightKind::Preempt => "preempt",
            FlightKind::Checkpoint => "checkpoint",
            FlightKind::Restore => "restore",
        }
    }

    /// Terminal events end a trial's sequence; exactly one is legal.
    pub fn is_terminal(&self) -> bool {
        matches!(self, FlightKind::Evict | FlightKind::Complete)
    }
}

/// One journal entry. `seq` is per-trial and contiguous from 0; `t_ns` is
/// simulated time on an integer nanosecond grid, monotone per trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Owning trial id ([`FLEET_TRIAL`] for fleet-level events).
    pub trial: u64,
    /// Per-trial sequence number, contiguous from 0.
    pub seq: u64,
    /// Simulated timestamp in integer nanoseconds.
    pub t_ns: u64,
    /// Lifecycle edge.
    pub kind: FlightKind,
    /// Device id when the edge is placed on a device.
    pub device: Option<u64>,
    /// Array id when the edge involves a fused array.
    pub array: Option<u64>,
    /// Lane index within the array.
    pub lane: Option<u64>,
    /// Free-form context (rung, width, fault post-mortem, ...).
    pub detail: String,
}

/// Correlation context stamped onto extracted lane state so the trial id
/// survives surgery across arrays and devices. `array`/`lane` describe the
/// *source* placement the state was extracted from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Stable trial id.
    pub trial: u64,
    /// Source array id.
    pub array: u64,
    /// Source lane index.
    pub lane: u64,
}

/// One line of the on-disk JSONL journal: the event tagged with the
/// experiment scope (policy) it was recorded under, since trial ids repeat
/// across experiment scopes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalLine {
    /// Experiment scope name (e.g. the scheduling policy).
    pub exp: String,
    /// The event itself.
    pub event: FlightEvent,
}

/// Ambient placement cursor: set by the scheduler around surgery calls so
/// layers that only know the lane (extract/splice) can stamp timestamps,
/// device and array ids without threading them through every signature.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlightCursor {
    /// Simulated time of the surgery site, ns grid.
    pub t_ns: u64,
    /// Device the surgery happens on.
    pub device: Option<u64>,
    /// Array being extracted from / spliced into.
    pub array: Option<u64>,
}

/// Ambient description of the segment currently being trained, set by the
/// scheduler around `backend.train` so the `ScopeMonitor` can timestamp
/// mid-segment faults on the same ns grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimSegment {
    /// Segment start on the ns grid.
    pub base_ns: u64,
    /// Integer step duration on the ns grid.
    pub per_step_ns: u64,
    /// Global step index at segment start.
    pub base_step: u64,
    /// Device running the segment.
    pub device: u64,
    /// Array id running the segment.
    pub array: u64,
}

impl SimSegment {
    /// Timestamp of the *end* of global step `gstep` (a fault observed
    /// after step `gstep`'s backward lands at that step's end).
    pub fn step_end_ns(&self, gstep: u64) -> u64 {
        self.base_ns + (gstep + 1).saturating_sub(self.base_step) * self.per_step_ns
    }
}

/// Shared spill target: one JSONL file per trace session, shared by every
/// experiment scope's [`FlightLog`]. The first write truncates any stale
/// journal from a previous run; later writes append.
#[derive(Debug)]
pub struct SpillState {
    path: PathBuf,
    started: bool,
}

impl SpillState {
    /// New spill target at `path`; nothing touches disk until a write.
    pub fn new(path: PathBuf) -> Rc<RefCell<SpillState>> {
        Rc::new(RefCell::new(SpillState {
            path,
            started: false,
        }))
    }

    /// The journal path.
    pub fn path(&self) -> &PathBuf {
        &self.path
    }

    fn append(&mut self, lines: &[JournalLine]) -> std::io::Result<usize> {
        if let Some(parent) = self.path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = if self.started {
            std::fs::OpenOptions::new().append(true).open(&self.path)?
        } else {
            self.started = true;
            std::fs::File::create(&self.path)?
        };
        let mut buf = String::new();
        for line in lines {
            buf.push_str(&serde_json::to_string(line).expect("flight serialization is infallible"));
            buf.push('\n');
        }
        file.write_all(buf.as_bytes())?;
        Ok(lines.len())
    }
}

/// Bounded append-only event ring for one experiment scope. Assigns
/// per-trial contiguous `seq`, clamps per-trial timestamps monotone (the
/// f64 heap time and the integer grid can disagree by a nanosecond), and
/// either spills the oldest half to the shared JSONL journal on overflow
/// or drops it (counted) when no spill target is configured.
#[derive(Debug, Clone, Default)]
pub struct FlightLog {
    events: VecDeque<FlightEvent>,
    capacity: usize,
    next_seq: HashMap<u64, u64>,
    last_ns: HashMap<u64, u64>,
    spill: Option<(Rc<RefCell<SpillState>>, String)>,
    spilled: u64,
    dropped: u64,
}

impl FlightLog {
    /// Empty log with the default capacity.
    pub fn new() -> FlightLog {
        FlightLog::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// Empty log with an explicit ring capacity (tests).
    pub fn with_capacity(capacity: usize) -> FlightLog {
        FlightLog {
            events: VecDeque::new(),
            capacity: capacity.max(2),
            next_seq: HashMap::new(),
            last_ns: HashMap::new(),
            spill: None,
            spilled: 0,
            dropped: 0,
        }
    }

    /// Configure the shared spill target; `exp` tags this log's journal
    /// lines with its experiment scope name.
    pub fn set_spill(&mut self, state: Rc<RefCell<SpillState>>, exp: &str) {
        self.spill = Some((state, exp.to_string()));
    }

    /// Append one event, assigning `seq` and clamping `t_ns` monotone
    /// within the trial.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        trial: u64,
        t_ns: u64,
        kind: FlightKind,
        device: Option<u64>,
        array: Option<u64>,
        lane: Option<u64>,
        detail: String,
    ) {
        let seq_slot = self.next_seq.entry(trial).or_insert(0);
        let seq = *seq_slot;
        *seq_slot += 1;
        // Per-trial monotone clamp: the f64 event-heap time and the
        // integer segment grid can disagree by a nanosecond at rung
        // boundaries. Fleet events are exempt — a DeviceRelease is
        // recorded at its (future) end time before the next DeviceBind's
        // earlier start, and carries no state machine to protect.
        let t_ns = if trial == FLEET_TRIAL {
            t_ns
        } else {
            let last = self.last_ns.entry(trial).or_insert(0);
            let t = t_ns.max(*last);
            *last = t;
            t
        };
        if self.events.len() >= self.capacity {
            self.overflow();
        }
        self.events.push_back(FlightEvent {
            trial,
            seq,
            t_ns,
            kind,
            device,
            array,
            lane,
            detail,
        });
    }

    fn overflow(&mut self) {
        let drain = (self.capacity / 2).max(1);
        let batch: Vec<FlightEvent> = self.events.drain(..drain.min(self.events.len())).collect();
        match &self.spill {
            Some((state, exp)) => {
                let lines: Vec<JournalLine> = batch
                    .into_iter()
                    .map(|event| JournalLine {
                        exp: exp.clone(),
                        event,
                    })
                    .collect();
                match state.borrow_mut().append(&lines) {
                    Ok(n) => self.spilled += n as u64,
                    Err(_) => self.dropped += lines.len() as u64,
                }
            }
            None => self.dropped += batch.len() as u64,
        }
    }

    /// Events currently held in memory (spilled prefix lives on disk).
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.events.iter()
    }

    /// Snapshot of the in-memory tail as a `Vec`.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.events.iter().cloned().collect()
    }

    /// Last `n` events (the post-mortem window for fault details).
    pub fn tail(&self, n: usize) -> Vec<FlightEvent> {
        let skip = self.events.len().saturating_sub(n);
        self.events.iter().skip(skip).cloned().collect()
    }

    /// Number of in-memory events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are held in memory.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events spilled to the journal so far.
    pub fn spilled(&self) -> u64 {
        self.spilled
    }

    /// Events dropped on overflow with no spill target.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Flush the in-memory tail to the shared spill target as journal
    /// lines (called once at trace finish). Returns lines written.
    pub fn flush(&mut self) -> std::io::Result<usize> {
        let Some((state, exp)) = self.spill.clone() else {
            return Ok(0);
        };
        let lines: Vec<JournalLine> = self
            .events
            .iter()
            .map(|event| JournalLine {
                exp: exp.clone(),
                event: event.clone(),
            })
            .collect();
        let n = state.borrow_mut().append(&lines)?;
        self.spilled += n as u64;
        Ok(n)
    }
}

/// Cached-handle recorder, the flight analogue of `SchedStats`: resolves
/// `Profiler::current()` once at construction so the disabled path is a
/// single branch on a cached `None` — no thread-local lookup, no detail
/// formatting.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    profiler: Option<Profiler>,
}

impl FlightRecorder {
    /// Capture the currently-installed profiler (if any).
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            profiler: Profiler::current(),
        }
    }

    /// True when events actually land somewhere.
    pub fn enabled(&self) -> bool {
        self.profiler.is_some()
    }

    /// Record with an empty detail string.
    pub fn record(
        &self,
        trial: u64,
        t_ns: u64,
        kind: FlightKind,
        device: Option<u64>,
        array: Option<u64>,
        lane: Option<u64>,
    ) {
        if let Some(p) = &self.profiler {
            p.flight_event(trial, t_ns, kind, device, array, lane, String::new());
        }
    }

    /// Record with a lazily-built detail string: the closure only runs
    /// when a profiler is installed.
    #[allow(clippy::too_many_arguments)]
    pub fn record_with(
        &self,
        trial: u64,
        t_ns: u64,
        kind: FlightKind,
        device: Option<u64>,
        array: Option<u64>,
        lane: Option<u64>,
        detail: impl FnOnce() -> String,
    ) {
        if let Some(p) = &self.profiler {
            p.flight_event(trial, t_ns, kind, device, array, lane, detail());
        }
    }
}

/// Per-trial SLO decomposition derived from a well-formed event sequence.
/// The four buckets partition `[submit_ns, terminal_ns]`, so
/// `queue + compute + surgery + quarantine == e2e` holds bit-exactly in
/// integer arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialSlo {
    /// Trial id.
    pub trial: u64,
    /// Submit timestamp (start of end-to-end latency).
    pub submit_ns: u64,
    /// Terminal timestamp (evict or complete).
    pub terminal_ns: u64,
    /// Time spent submitted/queued waiting for a lane.
    pub queue_ns: u64,
    /// Time spent running rung segments.
    pub compute_ns: u64,
    /// Time spent extracted, waiting in the repack buffer.
    pub surgery_ns: u64,
    /// Time spent quarantined after a sentinel fault.
    pub quarantine_ns: u64,
    /// Terminal kind (always `Evict` or `Complete`).
    pub outcome: FlightKind,
    /// True when at least one sentinel fault fired.
    pub faulted: bool,
}

impl TrialSlo {
    /// End-to-end latency from submit to terminal.
    pub fn e2e_ns(&self) -> u64 {
        self.terminal_ns - self.submit_ns
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TrialPhase {
    Submitted,
    Queued,
    Running,
    Buffered,
    Quarantined,
    Done,
}

/// Validate one trial's event sequence (sorted by `seq`) against the
/// lifecycle state machine and derive its SLO decomposition. Errors name
/// the offending event so the proptest failure output is actionable.
pub fn derive_slo(events: &[FlightEvent]) -> Result<TrialSlo, String> {
    let first = events.first().ok_or("empty event sequence")?;
    let trial = first.trial;
    if first.kind != FlightKind::Submit {
        return Err(format!(
            "trial {trial}: first event is {:?}, expected Submit",
            first.kind
        ));
    }
    let mut slo = TrialSlo {
        trial,
        submit_ns: first.t_ns,
        terminal_ns: first.t_ns,
        queue_ns: 0,
        compute_ns: 0,
        surgery_ns: 0,
        quarantine_ns: 0,
        outcome: FlightKind::Submit,
        faulted: false,
    };
    let mut phase = TrialPhase::Submitted;
    let mut last_ns = first.t_ns;
    for (i, e) in events.iter().enumerate() {
        if e.trial != trial {
            return Err(format!(
                "trial {trial}: foreign trial {} in sequence",
                e.trial
            ));
        }
        if e.seq != i as u64 {
            return Err(format!(
                "trial {trial}: seq {} at position {i}, expected contiguous from 0",
                e.seq
            ));
        }
        if i == 0 {
            continue;
        }
        if e.t_ns < last_ns {
            return Err(format!(
                "trial {trial}: time went backwards at seq {} ({} < {last_ns})",
                e.seq, e.t_ns
            ));
        }
        let dt = e.t_ns - last_ns;
        match phase {
            TrialPhase::Submitted | TrialPhase::Queued => slo.queue_ns += dt,
            TrialPhase::Running => slo.compute_ns += dt,
            TrialPhase::Buffered => slo.surgery_ns += dt,
            TrialPhase::Quarantined => slo.quarantine_ns += dt,
            TrialPhase::Done => {
                return Err(format!(
                    "trial {trial}: event {:?} after terminal at seq {}",
                    e.kind, e.seq
                ))
            }
        }
        last_ns = e.t_ns;
        phase = step_phase(phase, e.kind)
            .ok_or_else(|| format!("trial {trial}: illegal {:?} in phase {phase:?}", e.kind))?;
        if e.kind == FlightKind::Fault {
            slo.faulted = true;
        }
        if e.kind.is_terminal() {
            slo.outcome = e.kind;
            slo.terminal_ns = e.t_ns;
        }
    }
    if phase != TrialPhase::Done {
        return Err(format!(
            "trial {trial}: no terminal event (ended in {phase:?})"
        ));
    }
    Ok(slo)
}

/// Which SLO bucket a span of a trial's timeline is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloBucket {
    /// Submitted or queued, waiting for a lane.
    Queue,
    /// Running a rung segment.
    Compute,
    /// Extracted, waiting in the repack buffer.
    Surgery,
    /// Quarantined after a sentinel fault.
    Quarantine,
}

impl SloBucket {
    /// One-character glyph for ASCII Gantt rows.
    pub fn glyph(&self) -> char {
        match self {
            SloBucket::Queue => '.',
            SloBucket::Compute => '#',
            SloBucket::Surgery => 's',
            SloBucket::Quarantine => '!',
        }
    }

    /// Human label for tables and critical-path chains.
    pub fn label(&self) -> &'static str {
        match self {
            SloBucket::Queue => "queue",
            SloBucket::Compute => "compute",
            SloBucket::Surgery => "surgery",
            SloBucket::Quarantine => "quarantine",
        }
    }
}

/// Contiguous `[from_ns, to_ns)` spans of one trial's validated sequence,
/// labeled with the bucket their duration is attributed to. Adjacent spans
/// of the same bucket are merged and zero-length spans skipped, so the
/// span durations sum exactly to the trial's end-to-end latency. The
/// renderers behind `flight_report`'s Gantt and critical-path views.
///
/// # Errors
///
/// Rejects malformed sequences with the same diagnostics as [`derive_slo`].
pub fn bucket_intervals(events: &[FlightEvent]) -> Result<Vec<(u64, u64, SloBucket)>, String> {
    derive_slo(events)?;
    let mut out: Vec<(u64, u64, SloBucket)> = Vec::new();
    let mut phase = TrialPhase::Submitted;
    let mut last_ns = events[0].t_ns;
    for e in events.iter().skip(1) {
        let bucket = match phase {
            TrialPhase::Submitted | TrialPhase::Queued => SloBucket::Queue,
            TrialPhase::Running => SloBucket::Compute,
            TrialPhase::Buffered => SloBucket::Surgery,
            TrialPhase::Quarantined => SloBucket::Quarantine,
            TrialPhase::Done => unreachable!("validated: no events after terminal"),
        };
        if e.t_ns > last_ns {
            match out.last_mut() {
                Some(last) if last.2 == bucket && last.1 == last_ns => last.1 = e.t_ns,
                _ => out.push((last_ns, e.t_ns, bucket)),
            }
        }
        last_ns = e.t_ns;
        phase = step_phase(phase, e.kind).expect("validated transition");
    }
    Ok(out)
}

fn step_phase(phase: TrialPhase, kind: FlightKind) -> Option<TrialPhase> {
    use FlightKind as K;
    use TrialPhase as P;
    match (phase, kind) {
        (P::Submitted, K::Enqueue) => Some(P::Queued),
        (P::Queued | P::Buffered, K::Dispatch) => Some(P::Running),
        (P::Running, K::RungStart | K::RungEnd | K::Promote) => Some(P::Running),
        // Preempt is announced while still running; the Extract that
        // follows moves the trial into the surgery buffer.
        (P::Running, K::Preempt) => Some(P::Running),
        (P::Running, K::Extract) => Some(P::Buffered),
        // Barrier-time events on buffered (extracted) state: snapshotting,
        // re-splicing, and cohort promotion all keep the trial buffered.
        (P::Buffered, K::Splice | K::Checkpoint | K::Promote) => Some(P::Buffered),
        // Restore after a service restart: a trial with a snapshot resumes
        // buffered; a trial that never reached a checkpoint re-queues fresh.
        (P::Running | P::Buffered, K::Restore) => Some(P::Buffered),
        (P::Queued, K::Restore) => Some(P::Queued),
        (P::Running | P::Quarantined, K::Fault) => Some(P::Quarantined),
        // Evict also terminates queued/buffered trials (tenant cancel,
        // cohort-barrier early stop).
        (P::Running | P::Quarantined | P::Queued | P::Buffered, K::Evict) => Some(P::Done),
        (P::Running | P::Buffered, K::Complete) => Some(P::Done),
        _ => None,
    }
}

/// Group a journal by trial (skipping [`FLEET_TRIAL`]), sorted by `seq`.
pub fn group_by_trial(events: &[FlightEvent]) -> Vec<(u64, Vec<FlightEvent>)> {
    let mut map: std::collections::BTreeMap<u64, Vec<FlightEvent>> =
        std::collections::BTreeMap::new();
    for e in events {
        if e.trial == FLEET_TRIAL {
            continue;
        }
        map.entry(e.trial).or_default().push(e.clone());
    }
    let mut out: Vec<(u64, Vec<FlightEvent>)> = map.into_iter().collect();
    for (_, seq) in &mut out {
        seq.sort_by_key(|e| e.seq);
    }
    out
}

/// Lenient derivation: SLOs for every trial whose sequence validates,
/// silently skipping malformed/truncated ones (e.g. ring overflow).
pub fn derive_all(events: &[FlightEvent]) -> Vec<TrialSlo> {
    group_by_trial(events)
        .iter()
        .filter_map(|(_, seq)| derive_slo(seq).ok())
        .collect()
}

/// Strict derivation: every trial must validate, or the first error is
/// returned (the conservation law the proptest gates).
pub fn derive_all_strict(events: &[FlightEvent]) -> Result<Vec<TrialSlo>, String> {
    group_by_trial(events)
        .iter()
        .map(|(_, seq)| derive_slo(seq))
        .collect()
}

/// Exact nearest-rank quantile over unsorted values (deterministic, unlike
/// the log-bucket `HistogramSummary` estimate; used for golden-gated
/// numbers). `q` in [0, 1].
pub fn nearest_rank(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// End-of-run SLO fold shared by the schedulers (`hfta-sched`, `hfta-serve`):
/// derives every valid trial SLO from a journal and accumulates the
/// queue-wait/e2e latency populations plus the four bucket sums, all in
/// bit-exact simulated microseconds.
#[derive(Debug, Clone, Default)]
pub struct SloRollup {
    /// Every validated trial SLO, in trial-id order.
    pub slos: Vec<TrialSlo>,
    /// Per-trial queue-wait (queue bucket) in simulated microseconds.
    pub queue_waits_us: Vec<f64>,
    /// Per-trial end-to-end latency in simulated microseconds.
    pub e2e_us: Vec<f64>,
    /// Sum of the queue bucket across trials, microseconds.
    pub queue_us: f64,
    /// Sum of the compute bucket across trials, microseconds.
    pub compute_us: f64,
    /// Sum of the surgery bucket across trials, microseconds.
    pub surgery_us: f64,
    /// Sum of the quarantine bucket across trials, microseconds.
    pub quarantine_us: f64,
}

impl SloRollup {
    /// Lenient fold over a raw journal (skips malformed sequences, like
    /// [`derive_all`]).
    pub fn from_events(events: &[FlightEvent]) -> Self {
        Self::from_slos(derive_all(events))
    }

    /// Fold pre-derived SLOs.
    pub fn from_slos(slos: Vec<TrialSlo>) -> Self {
        let mut out = SloRollup {
            slos,
            ..SloRollup::default()
        };
        for s in &out.slos {
            out.queue_waits_us.push(s.queue_ns as f64 / 1e3);
            out.e2e_us.push(s.e2e_ns() as f64 / 1e3);
            out.queue_us += s.queue_ns as f64 / 1e3;
            out.compute_us += s.compute_ns as f64 / 1e3;
            out.surgery_us += s.surgery_ns as f64 / 1e3;
            out.quarantine_us += s.quarantine_ns as f64 / 1e3;
        }
        out
    }

    /// Nearest-rank quantile of the queue-wait population, microseconds.
    pub fn queue_wait_us(&self, q: f64) -> f64 {
        nearest_rank(&self.queue_waits_us, q)
    }

    /// Nearest-rank quantile of the e2e latency population, microseconds.
    pub fn e2e_latency_us(&self, q: f64) -> f64 {
        nearest_rank(&self.e2e_us, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trial: u64, seq: u64, t_ns: u64, kind: FlightKind) -> FlightEvent {
        FlightEvent {
            trial,
            seq,
            t_ns,
            kind,
            device: None,
            array: None,
            lane: None,
            detail: String::new(),
        }
    }

    fn happy_path() -> Vec<FlightEvent> {
        use FlightKind as K;
        vec![
            ev(7, 0, 100, K::Submit),
            ev(7, 1, 100, K::Enqueue),
            ev(7, 2, 250, K::Dispatch),
            ev(7, 3, 250, K::RungStart),
            ev(7, 4, 450, K::RungEnd),
            ev(7, 5, 450, K::Promote),
            ev(7, 6, 450, K::Extract),
            ev(7, 7, 600, K::Splice),
            ev(7, 8, 600, K::Dispatch),
            ev(7, 9, 600, K::RungStart),
            ev(7, 10, 900, K::RungEnd),
            ev(7, 11, 900, K::Complete),
        ]
    }

    #[test]
    fn decomposition_sums_exactly_to_e2e() {
        let slo = derive_slo(&happy_path()).expect("well-formed");
        assert_eq!(slo.queue_ns, 150);
        assert_eq!(slo.compute_ns, 500);
        assert_eq!(slo.surgery_ns, 150);
        assert_eq!(slo.quarantine_ns, 0);
        assert_eq!(slo.outcome, FlightKind::Complete);
        assert!(!slo.faulted);
        assert_eq!(
            slo.queue_ns + slo.compute_ns + slo.surgery_ns + slo.quarantine_ns,
            slo.e2e_ns()
        );
    }

    #[test]
    fn fault_routes_time_to_quarantine() {
        use FlightKind as K;
        let events = vec![
            ev(3, 0, 0, K::Submit),
            ev(3, 1, 0, K::Enqueue),
            ev(3, 2, 10, K::Dispatch),
            ev(3, 3, 10, K::RungStart),
            ev(3, 4, 14, K::Fault),
            ev(3, 5, 20, K::Evict),
        ];
        let slo = derive_slo(&events).expect("well-formed");
        assert_eq!(slo.queue_ns, 10);
        assert_eq!(slo.compute_ns, 4);
        assert_eq!(slo.quarantine_ns, 6);
        assert!(slo.faulted);
        assert_eq!(slo.outcome, FlightKind::Evict);
    }

    #[test]
    fn preempt_checkpoint_restore_route_time_to_surgery() {
        use FlightKind as K;
        // A trial preempted mid-segment, checkpointed, then restored after
        // a service restart and finished elsewhere. Buffered time (between
        // Extract and the re-Dispatch), including the restart gap, lands in
        // the surgery bucket; the decomposition still telescopes to e2e.
        let events = vec![
            ev(11, 0, 0, K::Submit),
            ev(11, 1, 0, K::Enqueue),
            ev(11, 2, 100, K::Dispatch),
            ev(11, 3, 100, K::RungStart),
            ev(11, 4, 160, K::Preempt),
            ev(11, 5, 160, K::Extract),
            ev(11, 6, 160, K::Checkpoint),
            // ...service killed and restarted here...
            ev(11, 7, 400, K::Restore),
            ev(11, 8, 500, K::Dispatch),
            ev(11, 9, 500, K::RungStart),
            ev(11, 10, 700, K::RungEnd),
            ev(11, 11, 700, K::Complete),
        ];
        let slo = derive_slo(&events).expect("well-formed");
        assert_eq!(slo.queue_ns, 100);
        assert_eq!(slo.compute_ns, 260);
        assert_eq!(slo.surgery_ns, 340);
        assert_eq!(slo.quarantine_ns, 0);
        assert_eq!(slo.outcome, FlightKind::Complete);
        assert_eq!(
            slo.queue_ns + slo.compute_ns + slo.surgery_ns + slo.quarantine_ns,
            slo.e2e_ns()
        );
    }

    #[test]
    fn barrier_promote_and_evict_work_on_buffered_trials() {
        use FlightKind as K;
        // Cohort-barrier lifecycle: extracted at the rung boundary,
        // checkpointed, promoted while buffered, then early-stopped from
        // the buffer at the next barrier.
        let events = vec![
            ev(21, 0, 0, K::Submit),
            ev(21, 1, 0, K::Enqueue),
            ev(21, 2, 10, K::Dispatch),
            ev(21, 3, 10, K::RungStart),
            ev(21, 4, 30, K::RungEnd),
            ev(21, 5, 30, K::Extract),
            ev(21, 6, 30, K::Checkpoint),
            ev(21, 7, 50, K::Promote),
            ev(21, 8, 90, K::Evict),
        ];
        let slo = derive_slo(&events).expect("well-formed");
        assert_eq!(slo.surgery_ns, 60);
        assert_eq!(slo.outcome, FlightKind::Evict);
    }

    #[test]
    fn cancel_evicts_straight_from_queue() {
        use FlightKind as K;
        let events = vec![
            ev(31, 0, 0, K::Submit),
            ev(31, 1, 0, K::Enqueue),
            ev(31, 2, 40, K::Evict),
        ];
        let slo = derive_slo(&events).expect("well-formed");
        assert_eq!(slo.queue_ns, 40);
        assert_eq!(slo.outcome, FlightKind::Evict);
    }

    #[test]
    fn queued_restore_keeps_trial_queued() {
        use FlightKind as K;
        // A trial that never reached a checkpoint re-queues fresh on
        // restart; time keeps accruing to the queue bucket.
        let events = vec![
            ev(41, 0, 0, K::Submit),
            ev(41, 1, 0, K::Enqueue),
            ev(41, 2, 100, K::Restore),
            ev(41, 3, 150, K::Dispatch),
            ev(41, 4, 150, K::RungStart),
            ev(41, 5, 180, K::RungEnd),
            ev(41, 6, 180, K::Complete),
        ];
        let slo = derive_slo(&events).expect("well-formed");
        assert_eq!(slo.queue_ns, 150);
        assert_eq!(slo.compute_ns, 30);
    }

    #[test]
    fn rollup_matches_manual_fold() {
        let mut events = happy_path();
        events.extend([
            ev(8, 0, 0, FlightKind::Submit),
            ev(8, 1, 0, FlightKind::Enqueue),
            ev(8, 2, 2_000, FlightKind::Dispatch),
            ev(8, 3, 2_000, FlightKind::RungStart),
            ev(8, 4, 3_000, FlightKind::RungEnd),
            ev(8, 5, 3_000, FlightKind::Complete),
        ]);
        let rollup = SloRollup::from_events(&events);
        assert_eq!(rollup.slos.len(), 2);
        assert_eq!(rollup.queue_waits_us.len(), 2);
        // Trial 7 queued 150ns = 0.15us, trial 8 queued 2000ns = 2us.
        assert_eq!(rollup.queue_wait_us(0.50), 0.15);
        assert_eq!(rollup.queue_wait_us(0.99), 2.0);
        assert_eq!(rollup.queue_us, 2.15);
        assert_eq!(rollup.compute_us, 0.5 + 1.0);
        assert_eq!(rollup.surgery_us, 0.15);
        assert_eq!(rollup.quarantine_us, 0.0);
    }

    #[test]
    fn malformed_sequences_are_rejected() {
        use FlightKind as K;
        // Missing terminal.
        let mut e = happy_path();
        e.pop();
        assert!(derive_slo(&e).is_err());
        // Event after terminal.
        let mut e = happy_path();
        e.push(ev(7, 12, 950, K::RungStart));
        assert!(derive_slo(&e).is_err());
        // Seq gap.
        let mut e = happy_path();
        e[4].seq = 9;
        assert!(derive_slo(&e).is_err());
        // Dispatch while already running.
        let mut e = happy_path();
        e[4] = ev(7, 4, 450, K::Dispatch);
        assert!(derive_slo(&e).is_err());
        // Time going backwards.
        let mut e = happy_path();
        e[4].t_ns = 10;
        assert!(derive_slo(&e).is_err());
        // Not starting with Submit.
        let e = vec![ev(1, 0, 0, K::Enqueue)];
        assert!(derive_slo(&e).is_err());
    }

    #[test]
    fn log_assigns_seq_and_clamps_time_per_trial() {
        let mut log = FlightLog::new();
        log.record(1, 50, FlightKind::Submit, None, None, None, String::new());
        log.record(2, 10, FlightKind::Submit, None, None, None, String::new());
        // 49 < 50: clamp to the trial's last timestamp, not a panic.
        log.record(1, 49, FlightKind::Enqueue, None, None, None, String::new());
        let events = log.snapshot();
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 0);
        assert_eq!(events[2].seq, 1);
        assert_eq!(events[2].t_ns, 50);
    }

    #[test]
    fn ring_overflow_without_spill_drops_oldest_half() {
        let mut log = FlightLog::with_capacity(4);
        for i in 0..6 {
            log.record(i, i, FlightKind::Submit, None, None, None, String::new());
        }
        assert!(log.len() <= 4);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.spilled(), 0);
        // The newest events survive.
        assert_eq!(log.snapshot().last().unwrap().trial, 5);
    }

    #[test]
    fn spill_writes_journal_lines_and_flush_appends_tail() {
        let dir = std::env::temp_dir().join(format!("hfta_flight_{}", std::process::id()));
        let path = dir.join("spill.flight.jsonl");
        let state = SpillState::new(path.clone());
        let mut log = FlightLog::with_capacity(4);
        log.set_spill(state, "unit");
        for i in 0..6 {
            log.record(i, i, FlightKind::Submit, None, None, None, String::new());
        }
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.spilled(), 2);
        log.flush().expect("flush tail");
        let text = std::fs::read_to_string(&path).expect("journal exists");
        let lines: Vec<JournalLine> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("journal line"))
            .collect();
        assert_eq!(lines.len(), 6);
        assert!(lines.iter().all(|l| l.exp == "unit"));
        assert_eq!(lines[0].event.trial, 0);
        assert_eq!(lines[5].event.trial, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_trial_round_trips_through_json() {
        let e = ev(FLEET_TRIAL, 0, 123, FlightKind::DeviceBind);
        let json = serde_json::to_string(&e).unwrap();
        let back: FlightEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back.trial, FLEET_TRIAL);
        assert_eq!(back, e);
    }

    #[test]
    fn bucket_intervals_merge_and_sum_to_e2e() {
        let events = happy_path();
        let slo = derive_slo(&events).unwrap();
        let spans = bucket_intervals(&events).unwrap();
        assert_eq!(
            spans,
            vec![
                (100, 250, SloBucket::Queue),
                (250, 450, SloBucket::Compute),
                (450, 600, SloBucket::Surgery),
                (600, 900, SloBucket::Compute),
            ]
        );
        let total: u64 = spans.iter().map(|(a, b, _)| b - a).sum();
        assert_eq!(total, slo.e2e_ns());
        let compute: u64 = spans
            .iter()
            .filter(|(_, _, k)| *k == SloBucket::Compute)
            .map(|(a, b, _)| b - a)
            .sum();
        assert_eq!(compute, slo.compute_ns);
    }

    #[test]
    fn nearest_rank_quantiles() {
        let v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(nearest_rank(&v, 0.5), 2.0);
        assert_eq!(nearest_rank(&v, 0.99), 4.0);
        assert_eq!(nearest_rank(&[], 0.5), 0.0);
    }

    #[test]
    fn recorder_disabled_is_inert() {
        assert!(Profiler::current().is_none());
        let rec = FlightRecorder::new();
        assert!(!rec.enabled());
        rec.record_with(1, 0, FlightKind::Submit, None, None, None, || {
            panic!("detail closure must not run when disabled")
        });
    }
}
