//! Metrics registry: counters, gauges, and histograms.
//!
//! The registry is a plain data structure owned by the profiler (one per
//! experiment scope); it does no locking or I/O. Names are interned
//! first-come-first-served in insertion order so reports are deterministic;
//! a `HashMap` name index on the side makes every hot-path update O(1)
//! instead of a linear scan over the name list (the
//! `telemetry_overhead` bench asserts the scaling).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// A named scalar sample (final counter total or last gauge value).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Value (total for counters, last value for gauges).
    pub value: f64,
}

/// Log-bucketed histogram summary.
///
/// Buckets are powers of two over the observed magnitude: bucket `i` counts
/// observations in `[2^(i-1), 2^i)` (bucket 0 counts `< 1`). Enough for
/// latency/size distributions without configuring bounds. Quantiles
/// (p50/p95/p99) are estimated from the bucket counts — no per-sample
/// storage — and filled in when the registry is snapshotted into a report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Minimum observation (0 when empty).
    pub min: f64,
    /// Maximum observation (0 when empty).
    pub max: f64,
    /// Estimated median (filled by [`HistogramSummary::with_quantiles`]).
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Power-of-two bucket counts.
    pub buckets: Vec<u64>,
}

impl HistogramSummary {
    fn new(name: String) -> Self {
        HistogramSummary {
            name,
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            buckets: vec![0; 40],
        }
    }

    fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let idx = if v < 1.0 {
            0
        } else {
            (v.log2().floor() as usize + 1).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates quantile `q` (in `[0, 1]`) from the log-bucket sketch:
    /// finds the bucket where the cumulative count crosses `q * count` and
    /// interpolates linearly inside its `[2^(i-1), 2^i)` bounds. The
    /// estimate is clamped to the observed `[min, max]`, so exact for the
    /// extremes and within one bucket's resolution elsewhere.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c;
            if (next as f64) >= rank {
                let (lo, hi) = if i == 0 {
                    (0.0, 1.0)
                } else {
                    (2f64.powi(i as i32 - 1), 2f64.powi(i as i32))
                };
                let frac = ((rank - seen as f64) / c as f64).clamp(0.0, 1.0);
                return (lo + frac * (hi - lo)).clamp(self.min, self.max);
            }
            seen = next;
        }
        self.max
    }

    /// Returns a copy with the serialized `p50`/`p95`/`p99` fields filled
    /// from the bucket sketch — called when the registry is snapshotted
    /// into a report, so the hot-path `observe` never pays for quantile
    /// estimation.
    pub fn with_quantiles(&self) -> HistogramSummary {
        let mut h = self.clone();
        h.p50 = h.quantile(0.50);
        h.p95 = h.quantile(0.95);
        h.p99 = h.quantile(0.99);
        h
    }
}

/// Counters (monotone totals), gauges (last value), histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<CounterSample>,
    gauges: Vec<CounterSample>,
    histograms: Vec<HistogramSummary>,
    counter_index: HashMap<String, usize>,
    gauge_index: HashMap<String, usize>,
    histogram_index: HashMap<String, usize>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (creating it at 0).
    pub fn incr(&mut self, name: &str, delta: f64) {
        match self.counter_index.get(name) {
            Some(&i) => self.counters[i].value += delta,
            None => {
                self.counter_index
                    .insert(name.to_string(), self.counters.len());
                self.counters.push(CounterSample {
                    name: name.to_string(),
                    value: delta,
                });
            }
        }
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        match self.gauge_index.get(name) {
            Some(&i) => self.gauges[i].value = value,
            None => {
                self.gauge_index.insert(name.to_string(), self.gauges.len());
                self.gauges.push(CounterSample {
                    name: name.to_string(),
                    value,
                });
            }
        }
    }

    /// Records one observation into histogram `name`.
    pub fn observe(&mut self, name: &str, value: f64) {
        match self.histogram_index.get(name) {
            Some(&i) => self.histograms[i].observe(value),
            None => {
                self.histogram_index
                    .insert(name.to_string(), self.histograms.len());
                let mut h = HistogramSummary::new(name.to_string());
                h.observe(value);
                self.histograms.push(h);
            }
        }
    }

    /// Current counter total, if the counter exists.
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.counter_index
            .get(name)
            .map(|&i| self.counters[i].value)
    }

    /// Current gauge value, if the gauge exists.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauge_index.get(name).map(|&i| self.gauges[i].value)
    }

    /// All counters in insertion order.
    pub fn counters(&self) -> &[CounterSample] {
        &self.counters
    }

    /// All gauges in insertion order.
    pub fn gauges(&self) -> &[CounterSample] {
        &self.gauges
    }

    /// All histograms in insertion order.
    pub fn histograms(&self) -> &[HistogramSummary] {
        &self.histograms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.incr("flops", 10.0);
        m.incr("flops", 5.0);
        m.set_gauge("width", 4.0);
        m.set_gauge("width", 8.0);
        assert_eq!(m.counter("flops"), Some(15.0));
        assert_eq!(m.gauge("width"), Some(8.0));
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn insertion_order_is_stable_with_many_names() {
        let mut m = MetricsRegistry::new();
        for i in 0..100 {
            m.incr(&format!("c{i}"), 1.0);
        }
        for i in (0..100).rev() {
            m.incr(&format!("c{i}"), 1.0);
        }
        let names: Vec<&str> = m.counters().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names[0], "c0");
        assert_eq!(names[99], "c99");
        assert!(m.counters().iter().all(|c| c.value == 2.0));
    }

    #[test]
    fn histogram_tracks_extremes_and_buckets() {
        let mut m = MetricsRegistry::new();
        for v in [0.5, 1.5, 3.0, 100.0] {
            m.observe("lat_us", v);
        }
        let h = &m.histograms()[0];
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 100.0);
        assert!((h.mean() - 26.25).abs() < 1e-9);
        assert_eq!(h.buckets[0], 1); // 0.5 -> < 1
        assert_eq!(h.buckets[1], 1); // 1.5 -> [1, 2)
        assert_eq!(h.buckets[2], 1); // 3.0 -> [2, 4)
        assert_eq!(h.buckets[7], 1); // 100 -> [64, 128)
    }

    #[test]
    fn quantiles_from_buckets_are_sane() {
        let mut m = MetricsRegistry::new();
        // 100 observations uniform-ish over [1, 128).
        for i in 0..100 {
            m.observe("lat", 1.0 + 1.27 * i as f64);
        }
        let h = m.histograms()[0].with_quantiles();
        assert!(
            h.p50 <= h.p95 && h.p95 <= h.p99,
            "quantiles must be ordered"
        );
        assert!(h.p50 >= h.min && h.p99 <= h.max);
        // Median of a uniform [1, 128) sample sits well below the p99.
        assert!(h.p50 < 100.0, "p50 = {}", h.p50);
        assert!(h.p99 > 64.0, "p99 = {}", h.p99);
    }

    #[test]
    fn quantiles_degenerate_cases() {
        let empty = HistogramSummary::new("e".into());
        assert_eq!(empty.quantile(0.5), 0.0);
        let mut m = MetricsRegistry::new();
        m.observe("one", 42.0);
        let h = m.histograms()[0].with_quantiles();
        assert_eq!(h.p50, 42.0);
        assert_eq!(h.p99, 42.0);
    }
}
