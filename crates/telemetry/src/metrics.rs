//! Metrics registry: counters, gauges, and histograms.
//!
//! The registry is a plain data structure owned by the profiler (one per
//! experiment scope); it does no locking or I/O. Names are interned
//! first-come-first-served in insertion order so reports are deterministic.

use serde::{Deserialize, Serialize};

/// A named scalar sample (final counter total or last gauge value).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Value (total for counters, last value for gauges).
    pub value: f64,
}

/// Log-bucketed histogram summary.
///
/// Buckets are powers of two over the observed magnitude: bucket `i` counts
/// observations in `[2^(i-1), 2^i)` (bucket 0 counts `< 1`). Enough for
/// latency/size distributions without configuring bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Minimum observation (0 when empty).
    pub min: f64,
    /// Maximum observation (0 when empty).
    pub max: f64,
    /// Power-of-two bucket counts.
    pub buckets: Vec<u64>,
}

impl HistogramSummary {
    fn new(name: String) -> Self {
        HistogramSummary {
            name,
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: vec![0; 40],
        }
    }

    fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let idx = if v < 1.0 {
            0
        } else {
            (v.log2().floor() as usize + 1).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Counters (monotone totals), gauges (last value), histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<CounterSample>,
    gauges: Vec<CounterSample>,
    histograms: Vec<HistogramSummary>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (creating it at 0).
    pub fn incr(&mut self, name: &str, delta: f64) {
        match self.counters.iter_mut().find(|c| c.name == name) {
            Some(c) => c.value += delta,
            None => self.counters.push(CounterSample {
                name: name.to_string(),
                value: delta,
            }),
        }
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        match self.gauges.iter_mut().find(|g| g.name == name) {
            Some(g) => g.value = value,
            None => self.gauges.push(CounterSample {
                name: name.to_string(),
                value,
            }),
        }
    }

    /// Records one observation into histogram `name`.
    pub fn observe(&mut self, name: &str, value: f64) {
        match self.histograms.iter_mut().find(|h| h.name == name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = HistogramSummary::new(name.to_string());
                h.observe(value);
                self.histograms.push(h);
            }
        }
    }

    /// Current counter total, if the counter exists.
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Current gauge value, if the gauge exists.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// All counters in insertion order.
    pub fn counters(&self) -> &[CounterSample] {
        &self.counters
    }

    /// All gauges in insertion order.
    pub fn gauges(&self) -> &[CounterSample] {
        &self.gauges
    }

    /// All histograms in insertion order.
    pub fn histograms(&self) -> &[HistogramSummary] {
        &self.histograms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.incr("flops", 10.0);
        m.incr("flops", 5.0);
        m.set_gauge("width", 4.0);
        m.set_gauge("width", 8.0);
        assert_eq!(m.counter("flops"), Some(15.0));
        assert_eq!(m.gauge("width"), Some(8.0));
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn histogram_tracks_extremes_and_buckets() {
        let mut m = MetricsRegistry::new();
        for v in [0.5, 1.5, 3.0, 100.0] {
            m.observe("lat_us", v);
        }
        let h = &m.histograms()[0];
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 100.0);
        assert!((h.mean() - 26.25).abs() < 1e-9);
        assert_eq!(h.buckets[0], 1); // 0.5 -> < 1
        assert_eq!(h.buckets[1], 1); // 1.5 -> [1, 2)
        assert_eq!(h.buckets[2], 1); // 3.0 -> [2, 4)
        assert_eq!(h.buckets[7], 1); // 100 -> [64, 128)
    }
}
