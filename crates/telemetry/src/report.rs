//! Serializable run reports: what a bench bin writes next to its trace.
//!
//! A [`RunReport`] covers one process run; it holds one
//! [`ExperimentReport`] per experiment scope (a figure, a table, or a whole
//! bin) with wall time, per-step training metrics, final counter/gauge
//! totals, histogram summaries, and counter time-series (e.g. the simulated
//! `nvidia-smi` utilization the paper plots in Figure 11).

use crate::flight::{FlightEvent, TrialSlo};
use crate::metrics::{CounterSample, HistogramSummary};
use crate::scope::{ScalarStream, SentinelEvent};
use serde::{Deserialize, Serialize};

/// One point of a counter time-series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Sample time in microseconds (simulated or wall, per series).
    pub t_us: f64,
    /// Sampled value.
    pub value: f64,
}

/// A named counter time-series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSeries {
    /// Series name (e.g. `v100/hfta8/smi_util`).
    pub name: String,
    /// Samples in emission order.
    pub points: Vec<SeriesPoint>,
}

/// Per-training-step metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepMetric {
    /// Step index (0-based).
    pub step: u64,
    /// Model index within the fused array (0 for serial runs).
    pub model: u64,
    /// Training loss at this step.
    pub loss: f64,
    /// Throughput in samples per second (0 when not measured).
    pub samples_per_s: f64,
    /// Fused array width B (1 for serial runs).
    pub fused_width: u64,
}

/// Aggregated cost of every dispatch of one op kind inside an experiment
/// scope: the raw material for roofline classification in `hfta-probe`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpAgg {
    /// Op name as recorded by the span (e.g. `matmul`, `conv2d`).
    pub name: String,
    /// Number of dispatches.
    pub calls: u64,
    /// Total floating point operations across all dispatches.
    pub flops: f64,
    /// Total bytes moved (reads + writes) across all dispatches.
    pub bytes: f64,
    /// Total wall time across all dispatches, nanoseconds.
    pub ns: f64,
}

impl OpAgg {
    /// Arithmetic intensity in FLOPs per byte (0 when no bytes recorded).
    pub fn intensity(&self) -> f64 {
        if self.bytes > 0.0 {
            self.flops / self.bytes
        } else {
            0.0
        }
    }

    /// Attained GFLOP/s over the recorded wall time (0 when no time).
    pub fn attained_gflops(&self) -> f64 {
        if self.ns > 0.0 {
            self.flops / self.ns
        } else {
            0.0
        }
    }
}

/// Everything recorded inside one experiment scope.
///
/// `Deserialize` is hand-written (the vendored derive has no
/// `#[serde(default)]`): reports written before op samples existed simply
/// lack the `ops` key, and must keep parsing — the committed CI goldens are
/// exactly such files.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExperimentReport {
    /// Experiment name (e.g. `fig3`, `table1`).
    pub name: String,
    /// Wall time spent inside the scope, milliseconds.
    pub wall_ms: f64,
    /// Per-step training metrics.
    pub steps: Vec<StepMetric>,
    /// Final counter totals.
    pub counters: Vec<CounterSample>,
    /// Final gauge values.
    pub gauges: Vec<CounterSample>,
    /// Histogram summaries.
    pub histograms: Vec<HistogramSummary>,
    /// Counter time-series.
    pub series: Vec<CounterSeries>,
    /// Per-model scalar streams (hfta-scope).
    pub scalars: Vec<ScalarStream>,
    /// Divergence sentinel events (hfta-scope).
    pub sentinels: Vec<SentinelEvent>,
    /// Per-op-kind aggregated cost samples (hfta-probe). Empty for reports
    /// written before op sampling existed.
    pub ops: Vec<OpAgg>,
    /// Trial-lifecycle journal tail (hfta-flight). Empty for reports
    /// written before flight tracing existed.
    pub flight: Vec<FlightEvent>,
    /// Per-trial SLO decomposition derived from `flight` (hfta-flight).
    pub trial_slo: Vec<TrialSlo>,
}

impl Deserialize for ExperimentReport {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(ExperimentReport {
            name: Deserialize::deserialize(serde::field(v, "name")?)?,
            wall_ms: Deserialize::deserialize(serde::field(v, "wall_ms")?)?,
            steps: Deserialize::deserialize(serde::field(v, "steps")?)?,
            counters: Deserialize::deserialize(serde::field(v, "counters")?)?,
            gauges: Deserialize::deserialize(serde::field(v, "gauges")?)?,
            histograms: Deserialize::deserialize(serde::field(v, "histograms")?)?,
            series: Deserialize::deserialize(serde::field(v, "series")?)?,
            scalars: Deserialize::deserialize(serde::field(v, "scalars")?)?,
            sentinels: Deserialize::deserialize(serde::field(v, "sentinels")?)?,
            ops: match v.get("ops") {
                Some(o) => Deserialize::deserialize(o)?,
                None => Vec::new(),
            },
            flight: match v.get("flight") {
                Some(f) => Deserialize::deserialize(f)?,
                None => Vec::new(),
            },
            trial_slo: match v.get("trial_slo") {
                Some(s) => Deserialize::deserialize(s)?,
                None => Vec::new(),
            },
        })
    }
}

/// Top-level report for one run of a bench bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Run name (usually the bin name).
    pub name: String,
    /// Total wall time from profiler creation to report, milliseconds.
    pub wall_ms: f64,
    /// Number of trace events recorded alongside this report.
    pub trace_events: u64,
    /// One entry per experiment scope, in execution order.
    pub experiments: Vec<ExperimentReport>,
}

impl RunReport {
    /// Finds an experiment by name.
    pub fn experiment(&self, name: &str) -> Option<&ExperimentReport> {
        self.experiments.iter().find(|e| e.name == name)
    }
}

impl ExperimentReport {
    /// Finds a counter time-series by name.
    pub fn series(&self, name: &str) -> Option<&CounterSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Finds the scalar stream for `(model, metric)`.
    pub fn scalar_stream(&self, model: u64, metric: &str) -> Option<&ScalarStream> {
        self.scalars
            .iter()
            .find(|s| s.model == model && s.metric == metric)
    }

    /// Model indices that appear in any scalar stream, ascending and
    /// deduplicated.
    pub fn scalar_models(&self) -> Vec<u64> {
        let mut models: Vec<u64> = self.scalars.iter().map(|s| s.model).collect();
        models.sort_unstable();
        models.dedup();
        models
    }

    /// Sentinel events attributed to `model`.
    pub fn sentinels_for(&self, model: u64) -> Vec<&SentinelEvent> {
        self.sentinels.iter().filter(|e| e.model == model).collect()
    }

    /// Finds an op aggregate by name.
    pub fn op(&self, name: &str) -> Option<&OpAgg> {
        self.ops.iter().find(|o| o.name == name)
    }

    /// The widest fused array seen in any step metric (1 when untracked).
    pub fn fused_width(&self) -> u64 {
        self.steps.iter().map(|s| s.fused_width).max().unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let report = RunReport {
            name: "fig11".into(),
            wall_ms: 12.5,
            trace_events: 3,
            experiments: vec![ExperimentReport {
                name: "fig11".into(),
                wall_ms: 12.0,
                steps: vec![StepMetric {
                    step: 0,
                    model: 1,
                    loss: 2.25,
                    samples_per_s: 1000.0,
                    fused_width: 8,
                }],
                counters: vec![CounterSample {
                    name: "sim.kernels".into(),
                    value: 42.0,
                }],
                gauges: vec![],
                histograms: vec![],
                series: vec![CounterSeries {
                    name: "v100/hfta8/smi_util".into(),
                    points: vec![SeriesPoint {
                        t_us: 1.0,
                        value: 0.98,
                    }],
                }],
                scalars: vec![crate::scope::ScalarStream {
                    run: "fig11".into(),
                    model: 1,
                    metric: "loss".into(),
                    points: vec![crate::scope::ScalarPoint {
                        step: 0,
                        value: 2.25,
                    }],
                }],
                sentinels: vec![crate::scope::SentinelEvent {
                    step: 0,
                    model: 1,
                    kind: crate::scope::SentinelKind::GradExplosion,
                    value: 1e9,
                    quarantined: false,
                }],
                ops: vec![OpAgg {
                    name: "matmul".into(),
                    calls: 4,
                    flops: 8e9,
                    bytes: 2e8,
                    ns: 1e9,
                }],
                flight: vec![crate::flight::FlightEvent {
                    trial: 7,
                    seq: 0,
                    t_ns: 1_000,
                    kind: crate::flight::FlightKind::Submit,
                    device: None,
                    array: Some(2),
                    lane: Some(0),
                    detail: "rung 0".into(),
                }],
                trial_slo: vec![TrialSlo {
                    trial: 7,
                    submit_ns: 1_000,
                    terminal_ns: 5_000,
                    queue_ns: 1_000,
                    compute_ns: 2_500,
                    surgery_ns: 400,
                    quarantine_ns: 100,
                    outcome: crate::flight::FlightKind::Complete,
                    faulted: false,
                }],
            }],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        let exp = back.experiment("fig11").unwrap();
        assert!(exp.series("v100/hfta8/smi_util").is_some());
        assert_eq!(exp.scalar_models(), vec![1]);
        assert_eq!(exp.scalar_stream(1, "loss").unwrap().last(), Some(2.25));
        assert_eq!(exp.sentinels_for(1).len(), 1);
        assert!(exp.sentinels_for(0).is_empty());
        let op = exp.op("matmul").unwrap();
        assert_eq!(op.intensity(), 40.0);
        assert_eq!(op.attained_gflops(), 8.0);
    }

    #[test]
    fn reports_without_ops_field_still_parse() {
        // Reports written before op sampling existed (e.g. the committed CI
        // goldens) lack the `ops` key entirely.
        let json = r#"{
            "name": "old", "wall_ms": 1.0, "trace_events": 0,
            "experiments": [{
                "name": "old", "wall_ms": 1.0, "steps": [],
                "counters": [], "gauges": [], "histograms": [],
                "series": [], "scalars": [], "sentinels": []
            }]
        }"#;
        let back: RunReport = serde_json::from_str(json).unwrap();
        assert!(back.experiments[0].ops.is_empty());
        assert!(back.experiments[0].flight.is_empty());
        assert!(back.experiments[0].trial_slo.is_empty());
    }
}
