//! Serializable run reports: what a bench bin writes next to its trace.
//!
//! A [`RunReport`] covers one process run; it holds one
//! [`ExperimentReport`] per experiment scope (a figure, a table, or a whole
//! bin) with wall time, per-step training metrics, final counter/gauge
//! totals, histogram summaries, and counter time-series (e.g. the simulated
//! `nvidia-smi` utilization the paper plots in Figure 11).

use crate::metrics::{CounterSample, HistogramSummary};
use crate::scope::{ScalarStream, SentinelEvent};
use serde::{Deserialize, Serialize};

/// One point of a counter time-series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Sample time in microseconds (simulated or wall, per series).
    pub t_us: f64,
    /// Sampled value.
    pub value: f64,
}

/// A named counter time-series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSeries {
    /// Series name (e.g. `v100/hfta8/smi_util`).
    pub name: String,
    /// Samples in emission order.
    pub points: Vec<SeriesPoint>,
}

/// Per-training-step metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepMetric {
    /// Step index (0-based).
    pub step: u64,
    /// Model index within the fused array (0 for serial runs).
    pub model: u64,
    /// Training loss at this step.
    pub loss: f64,
    /// Throughput in samples per second (0 when not measured).
    pub samples_per_s: f64,
    /// Fused array width B (1 for serial runs).
    pub fused_width: u64,
}

/// Everything recorded inside one experiment scope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment name (e.g. `fig3`, `table1`).
    pub name: String,
    /// Wall time spent inside the scope, milliseconds.
    pub wall_ms: f64,
    /// Per-step training metrics.
    pub steps: Vec<StepMetric>,
    /// Final counter totals.
    pub counters: Vec<CounterSample>,
    /// Final gauge values.
    pub gauges: Vec<CounterSample>,
    /// Histogram summaries.
    pub histograms: Vec<HistogramSummary>,
    /// Counter time-series.
    pub series: Vec<CounterSeries>,
    /// Per-model scalar streams (hfta-scope).
    pub scalars: Vec<ScalarStream>,
    /// Divergence sentinel events (hfta-scope).
    pub sentinels: Vec<SentinelEvent>,
}

/// Top-level report for one run of a bench bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Run name (usually the bin name).
    pub name: String,
    /// Total wall time from profiler creation to report, milliseconds.
    pub wall_ms: f64,
    /// Number of trace events recorded alongside this report.
    pub trace_events: u64,
    /// One entry per experiment scope, in execution order.
    pub experiments: Vec<ExperimentReport>,
}

impl RunReport {
    /// Finds an experiment by name.
    pub fn experiment(&self, name: &str) -> Option<&ExperimentReport> {
        self.experiments.iter().find(|e| e.name == name)
    }
}

impl ExperimentReport {
    /// Finds a counter time-series by name.
    pub fn series(&self, name: &str) -> Option<&CounterSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Finds the scalar stream for `(model, metric)`.
    pub fn scalar_stream(&self, model: u64, metric: &str) -> Option<&ScalarStream> {
        self.scalars
            .iter()
            .find(|s| s.model == model && s.metric == metric)
    }

    /// Model indices that appear in any scalar stream, ascending and
    /// deduplicated.
    pub fn scalar_models(&self) -> Vec<u64> {
        let mut models: Vec<u64> = self.scalars.iter().map(|s| s.model).collect();
        models.sort_unstable();
        models.dedup();
        models
    }

    /// Sentinel events attributed to `model`.
    pub fn sentinels_for(&self, model: u64) -> Vec<&SentinelEvent> {
        self.sentinels.iter().filter(|e| e.model == model).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let report = RunReport {
            name: "fig11".into(),
            wall_ms: 12.5,
            trace_events: 3,
            experiments: vec![ExperimentReport {
                name: "fig11".into(),
                wall_ms: 12.0,
                steps: vec![StepMetric {
                    step: 0,
                    model: 1,
                    loss: 2.25,
                    samples_per_s: 1000.0,
                    fused_width: 8,
                }],
                counters: vec![CounterSample {
                    name: "sim.kernels".into(),
                    value: 42.0,
                }],
                gauges: vec![],
                histograms: vec![],
                series: vec![CounterSeries {
                    name: "v100/hfta8/smi_util".into(),
                    points: vec![SeriesPoint {
                        t_us: 1.0,
                        value: 0.98,
                    }],
                }],
                scalars: vec![crate::scope::ScalarStream {
                    run: "fig11".into(),
                    model: 1,
                    metric: "loss".into(),
                    points: vec![crate::scope::ScalarPoint {
                        step: 0,
                        value: 2.25,
                    }],
                }],
                sentinels: vec![crate::scope::SentinelEvent {
                    step: 0,
                    model: 1,
                    kind: crate::scope::SentinelKind::GradExplosion,
                    value: 1e9,
                    quarantined: false,
                }],
            }],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        let exp = back.experiment("fig11").unwrap();
        assert!(exp.series("v100/hfta8/smi_util").is_some());
        assert_eq!(exp.scalar_models(), vec![1]);
        assert_eq!(exp.scalar_stream(1, "loss").unwrap().last(), Some(2.25));
        assert_eq!(exp.sentinels_for(1).len(), 1);
        assert!(exp.sentinels_for(0).is_empty());
    }
}
