//! Chrome trace-event model and JSON writer.
//!
//! Emits the subset of the [Trace Event Format] that `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load: duration events (`ph: "B"`/`"E"`),
//! counter events (`ph: "C"`), and metadata events (`ph: "M"`) naming the
//! process/thread lanes. Timestamps are microseconds; one *lane* (a
//! `pid`/`tid` pair) is allocated per device/policy/model so fused-array
//! timelines read side by side.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use serde::Value;

/// Trace event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPhase {
    /// Duration begin (`"B"`).
    Begin,
    /// Duration end (`"E"`).
    End,
    /// Counter sample (`"C"`).
    Counter,
}

impl EventPhase {
    fn as_str(self) -> &'static str {
        match self {
            EventPhase::Begin => "B",
            EventPhase::End => "E",
            EventPhase::Counter => "C",
        }
    }
}

/// One trace event on a lane.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event (span or counter) name.
    pub name: String,
    /// Phase: begin / end / counter.
    pub phase: EventPhase,
    /// Timestamp in microseconds.
    pub ts_us: f64,
    /// Process lane.
    pub pid: u64,
    /// Thread lane.
    pub tid: u64,
    /// Extra attributes (`args` in the trace format).
    pub args: Vec<(String, Value)>,
}

/// A named `pid`/`tid` lane.
#[derive(Debug, Clone)]
pub struct LaneMeta {
    /// Process id of the lane.
    pub pid: u64,
    /// Thread id of the lane.
    pub tid: u64,
    /// Process display name (e.g. device or experiment).
    pub process: String,
    /// Thread display name (e.g. policy or model).
    pub thread: String,
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn meta_event(pid: u64, tid: u64, kind: &str, name: &str) -> Value {
    obj(vec![
        ("name", Value::Str(kind.to_string())),
        ("ph", Value::Str("M".to_string())),
        ("ts", Value::U64(0)),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
        ("args", obj(vec![("name", Value::Str(name.to_string()))])),
    ])
}

/// Renders lanes + events into Chrome trace JSON (the object form with a
/// `traceEvents` array, which both `chrome://tracing` and Perfetto accept).
///
/// Events are stably sorted by timestamp so the output satisfies the
/// monotone-timestamp invariant checked by the workspace integration tests;
/// stability preserves begin-before-end order for zero-length spans.
pub fn render(lanes: &[LaneMeta], events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));

    let mut out: Vec<Value> = Vec::with_capacity(2 * lanes.len() + sorted.len());
    for lane in lanes {
        out.push(meta_event(
            lane.pid,
            lane.tid,
            "process_name",
            &lane.process,
        ));
        out.push(meta_event(lane.pid, lane.tid, "thread_name", &lane.thread));
    }
    for e in &sorted {
        let mut fields = vec![
            ("name", Value::Str(e.name.clone())),
            ("ph", Value::Str(e.phase.as_str().to_string())),
            ("ts", Value::F64(e.ts_us)),
            ("pid", Value::U64(e.pid)),
            ("tid", Value::U64(e.tid)),
        ];
        if !e.args.is_empty() {
            fields.push(("args", Value::Object(e.args.clone())));
        }
        out.push(obj(fields));
    }

    let root = obj(vec![
        ("traceEvents", Value::Array(out)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&root).expect("trace serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_sorted_and_loadable_json() {
        let lanes = vec![LaneMeta {
            pid: 1,
            tid: 1,
            process: "V100".into(),
            thread: "HFTA B=8".into(),
        }];
        let events = vec![
            TraceEvent {
                name: "k1".into(),
                phase: EventPhase::Begin,
                ts_us: 10.0,
                pid: 1,
                tid: 1,
                args: vec![("flops".into(), Value::F64(1e6))],
            },
            TraceEvent {
                name: "k1".into(),
                phase: EventPhase::End,
                ts_us: 14.0,
                pid: 1,
                tid: 1,
                args: vec![],
            },
            TraceEvent {
                name: "sm_active".into(),
                phase: EventPhase::Counter,
                ts_us: 12.0,
                pid: 1,
                tid: 1,
                args: vec![("value".into(), Value::F64(0.8))],
            },
        ];
        let json = render(&lanes, &events);
        let v: Value = serde_json::from_str(&json).unwrap();
        let trace_events = match v.get("traceEvents") {
            Some(Value::Array(a)) => a,
            other => panic!("missing traceEvents: {other:?}"),
        };
        // 2 metadata + 3 events.
        assert_eq!(trace_events.len(), 5);
        // Non-metadata timestamps are monotone.
        let ts: Vec<f64> = trace_events
            .iter()
            .filter_map(|e| match (e.get("ph"), e.get("ts")) {
                (Some(Value::Str(ph)), Some(Value::F64(t))) if ph != "M" => Some(*t),
                _ => None,
            })
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }
}
