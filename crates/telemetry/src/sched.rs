//! Scheduler-side telemetry: counters and gauges for the elastic fusion
//! scheduler (`hfta-sched`), with the profiler handle **cached once at
//! construction** — every call on a [`SchedStats`] built while no
//! profiler was installed is a single branch on a `None`, matching the
//! disabled-path budget `benches/telemetry_overhead.rs` enforces for the
//! rest of the metrics layer.

use crate::profiler::Profiler;

/// Cached telemetry front-end for a scheduler run.
///
/// Counters: `sched.arrivals`, `sched.dispatches`, `sched.repacks`,
/// `sched.lanes_moved`, `sched.evictions`, `sched.quarantine_evictions`,
/// `sched.finished`. Gauges: `sched.packing_efficiency`,
/// `sched.occupancy`. Histogram: `sched.width` (fused width of every
/// dispatched array).
#[derive(Debug, Clone, Default)]
pub struct SchedStats {
    profiler: Option<Profiler>,
}

impl SchedStats {
    /// Captures the currently installed profiler (if any). `Default`
    /// yields a permanently disabled instance.
    pub fn new() -> Self {
        SchedStats {
            profiler: Profiler::current(),
        }
    }

    /// Whether a profiler was installed at construction time.
    pub fn enabled(&self) -> bool {
        self.profiler.is_some()
    }

    /// One trial arrived in the queue.
    pub fn arrival(&self) {
        if let Some(p) = &self.profiler {
            p.incr("sched.arrivals", 1.0);
        }
    }

    /// One array dispatched onto a device: allocated fused width and the
    /// number of live (non-evicted) lanes in it.
    pub fn dispatch(&self, width: usize, live: usize) {
        if let Some(p) = &self.profiler {
            p.incr("sched.dispatches", 1.0);
            p.incr("sched.live_lanes_dispatched", live as f64);
            p.observe("sched.width", width as f64);
        }
    }

    /// One re-pack: survivors from fragmented arrays spliced into a fresh
    /// full-width array (`lanes` of them moved).
    pub fn repack(&self, lanes: usize) {
        if let Some(p) = &self.profiler {
            p.incr("sched.repacks", 1.0);
            p.incr("sched.lanes_moved", lanes as f64);
        }
    }

    /// One lane evicted at a rung boundary; `quarantined` distinguishes
    /// sentinel kills from early-stopping decisions.
    pub fn evict(&self, quarantined: bool) {
        if let Some(p) = &self.profiler {
            p.incr("sched.evictions", 1.0);
            if quarantined {
                p.incr("sched.quarantine_evictions", 1.0);
            }
        }
    }

    /// One trial trained to the final rung.
    pub fn finish(&self) {
        if let Some(p) = &self.profiler {
            p.incr("sched.finished", 1.0);
        }
    }

    /// Final packing efficiency of the run (live lane-seconds over
    /// allocated lane-seconds).
    pub fn packing_efficiency(&self, value: f64) {
        if let Some(p) = &self.profiler {
            p.set_gauge("sched.packing_efficiency", value);
        }
    }

    /// Final device occupancy of the run (busy device-seconds over
    /// `devices × makespan`).
    pub fn occupancy(&self, value: f64) {
        if let Some(p) = &self.profiler {
            p.set_gauge("sched.occupancy", value);
        }
    }

    /// Final utilization *quality* of one device: useful-FLOP fraction of
    /// its FP32 peak over its busy time (`sched.device.<name>.util`) plus
    /// the attained useful GFLOP/s (`sched.device.<name>.gflops`). Busy ≠
    /// utilized — occupancy says the device was booked, this says how much
    /// of the machine the booking actually squeezed.
    pub fn device_utilization(&self, name: &str, util: f64, gflops: f64) {
        if let Some(p) = &self.profiler {
            p.set_gauge(&format!("sched.device.{name}.util"), util);
            p.set_gauge(&format!("sched.device.{name}.gflops"), gflops);
        }
    }

    /// Final fleet-wide useful-FLOP fraction of peak over busy time.
    pub fn fleet_utilization(&self, value: f64) {
        if let Some(p) = &self.profiler {
            p.set_gauge("sched.fleet_utilization", value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_stats_are_inert() {
        let stats = SchedStats::default();
        assert!(!stats.enabled());
        // No profiler: every call is a no-op branch.
        stats.arrival();
        stats.dispatch(8, 6);
        stats.repack(3);
        stats.evict(true);
        stats.finish();
        stats.packing_efficiency(0.9);
        stats.occupancy(0.8);
        stats.device_utilization("V100#0", 0.4, 6000.0);
        stats.fleet_utilization(0.35);
    }

    #[test]
    fn enabled_stats_record_counters_and_gauges() {
        let p = Profiler::new("sched-test");
        let _g = p.install();
        let stats = SchedStats::new();
        assert!(stats.enabled());
        stats.arrival();
        stats.arrival();
        stats.dispatch(8, 6);
        stats.repack(3);
        stats.evict(true);
        stats.evict(false);
        stats.finish();
        stats.packing_efficiency(0.75);
        stats.occupancy(0.5);
        stats.device_utilization("V100#0", 0.4, 6000.0);
        stats.fleet_utilization(0.35);
        let report = p.report();
        let exp = &report.experiments[0];
        let counter = |name: &str| exp.counters.iter().find(|c| c.name == name).unwrap().value;
        assert_eq!(counter("sched.arrivals"), 2.0);
        assert_eq!(counter("sched.dispatches"), 1.0);
        assert_eq!(counter("sched.lanes_moved"), 3.0);
        assert_eq!(counter("sched.evictions"), 2.0);
        assert_eq!(counter("sched.quarantine_evictions"), 1.0);
        assert_eq!(counter("sched.finished"), 1.0);
        let gauge = |name: &str| exp.gauges.iter().find(|g| g.name == name).unwrap().value;
        assert_eq!(gauge("sched.packing_efficiency"), 0.75);
        assert_eq!(gauge("sched.occupancy"), 0.5);
        assert_eq!(gauge("sched.device.V100#0.util"), 0.4);
        assert_eq!(gauge("sched.device.V100#0.gflops"), 6000.0);
        assert_eq!(gauge("sched.fleet_utilization"), 0.35);
        let width = exp
            .histograms
            .iter()
            .find(|h| h.name == "sched.width")
            .unwrap();
        assert_eq!(width.count, 1);
    }
}
