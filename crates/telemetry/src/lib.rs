//! `hfta-telemetry`: profiler, metrics registry, and Chrome-trace export.
//!
//! One crate owns all observability for the HFTA reproduction:
//!
//! * [`Profiler`] — scoped spans ([`Profiler::span`]), experiment scopes
//!   ([`Profiler::experiment`]), counters/gauges/histograms, per-step
//!   training metrics, and counter time-series. Installed thread-locally
//!   ([`Profiler::install`]); when nothing is installed,
//!   [`Profiler::current`] is `None` and instrumented code pays one branch.
//! * [`trace`] — the Chrome trace-event JSON writer. Load the output in
//!   `chrome://tracing` or <https://ui.perfetto.dev>; lanes (`pid`/`tid`)
//!   map to device/policy/model.
//! * [`metrics`] — the plain-data registry behind the profiler.
//! * [`sched`] — scheduler counters/gauges ([`SchedStats`]) with the
//!   profiler handle cached once, so the disabled path stays one branch.
//! * [`scope`] — hfta-scope: per-model [`ScalarStream`]s (loss, grad-norm,
//!   param-norm, update-ratio, tagged `(run, model, metric)`) and
//!   divergence [`SentinelEvent`]s, recorded via [`Profiler::scalar`] /
//!   [`Profiler::sentinel`] and embedded in every [`ExperimentReport`].
//! * [`flight`] — hfta-flight: the causal trial-lifecycle journal
//!   ([`FlightEvent`], recorded via [`FlightRecorder`]/[`Profiler::flight_event`]
//!   on an integer-ns simulated-time grid) plus the per-trial SLO
//!   decomposition ([`TrialSlo`]) whose queue/compute/surgery/quarantine
//!   buckets sum bit-exactly to end-to-end latency.
//! * [`report`] — serializable [`RunReport`] written next to each trace by
//!   the bench bins (`--trace <dir>`).
//!
//! Simulated timelines (from `hfta-sim`) use the explicit-timestamp API
//! ([`Profiler::begin_at`] / [`Profiler::end_at`] / [`Profiler::counter_at`])
//! so kernel streams render at simulated microseconds; wall-clock code uses
//! [`Profiler::span`] guards.

pub mod flight;
pub mod metrics;
pub mod profiler;
pub mod report;
pub mod sched;
pub mod scope;
pub mod trace;

pub use flight::{
    FlightCursor, FlightEvent, FlightKind, FlightLog, FlightRecorder, JournalLine, SimSegment,
    SloBucket, TraceCtx, TrialSlo, FLEET_TRIAL,
};
pub use metrics::{CounterSample, HistogramSummary, MetricsRegistry};
pub use profiler::{
    ExperimentGuard, InstallGuard, LaneId, OpCost, OpSpanGuard, Profiler, SpanGuard,
};
pub use report::{CounterSeries, ExperimentReport, OpAgg, RunReport, SeriesPoint, StepMetric};
pub use sched::SchedStats;
pub use scope::{ScalarPoint, ScalarStream, ScopeLog, SentinelEvent, SentinelKind};
pub use trace::{EventPhase, LaneMeta, TraceEvent};
