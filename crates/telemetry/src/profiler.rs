//! The profiler: scoped spans, experiment scopes, metric recording, and
//! thread-local installation.
//!
//! Cost model for disabled telemetry: when no profiler is installed,
//! [`Profiler::current`] returns `None` and instrumented code holds an
//! `Option<Profiler>` it checks with one branch per operation — no clocks
//! are read, no strings are built, no allocation happens (the
//! `telemetry_overhead` criterion bench in `hfta-bench` proves this adds
//! <1% to a fused training step). The profiler is single-threaded
//! (`Rc`-based), matching the tape-based autograd it instruments.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use crate::flight::{
    self, FlightCursor, FlightEvent, FlightKind, FlightLog, SimSegment, SpillState,
};
use crate::metrics::MetricsRegistry;
use crate::report::{CounterSeries, ExperimentReport, OpAgg, RunReport, SeriesPoint, StepMetric};
use crate::scope::{ScopeLog, SentinelEvent};
use crate::trace::{self, EventPhase, LaneMeta, TraceEvent};
use serde::Value;

thread_local! {
    static CURRENT: RefCell<Option<Profiler>> = const { RefCell::new(None) };
}

/// Identifies a trace lane (a `pid`/`tid` pair). Copyable and cheap to pass
/// through hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneId {
    /// Process lane.
    pub pid: u64,
    /// Thread lane.
    pub tid: u64,
}

/// Forward/backward FLOP and byte attribution for an op span.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCost {
    /// Floating point operations.
    pub flops: f64,
    /// Bytes moved (reads + writes).
    pub bytes: f64,
}

impl OpCost {
    /// Cost of an elementwise op over `numel` outputs (1 flop, read+write).
    pub fn elementwise(numel: usize) -> Self {
        OpCost {
            flops: numel as f64,
            bytes: 8.0 * numel as f64,
        }
    }

    /// Cost of a dense `[n,k] x [k,m]` matmul (`batch` of them).
    pub fn matmul(batch: usize, n: usize, k: usize, m: usize) -> Self {
        let b = batch as f64;
        OpCost {
            flops: b * 2.0 * n as f64 * k as f64 * m as f64,
            bytes: b * 4.0 * (n * k + k * m + n * m) as f64,
        }
    }

    /// Cost proportional to reading `numel` inputs and reducing them.
    pub fn reduction(numel: usize) -> Self {
        OpCost {
            flops: numel as f64,
            bytes: 4.0 * numel as f64,
        }
    }
}

struct ExperimentAcc {
    name: String,
    started: Instant,
    wall_ms: f64,
    steps: Vec<StepMetric>,
    metrics: MetricsRegistry,
    series: Vec<CounterSeries>,
    scope: ScopeLog,
    ops: Vec<OpAgg>,
    /// Name → index into `ops`, so the hot path folds a sample in O(1).
    op_index: HashMap<String, usize>,
    /// hfta-flight: the trial-lifecycle event journal for this scope.
    flight: FlightLog,
}

impl ExperimentAcc {
    fn new(name: String) -> Self {
        ExperimentAcc {
            name,
            started: Instant::now(),
            wall_ms: 0.0,
            steps: Vec::new(),
            metrics: MetricsRegistry::new(),
            series: Vec::new(),
            scope: ScopeLog::new(),
            ops: Vec::new(),
            op_index: HashMap::new(),
            flight: FlightLog::new(),
        }
    }

    fn record_op(&mut self, name: &str, flops: f64, bytes: f64, ns: f64) {
        let idx = match self.op_index.get(name) {
            Some(&i) => i,
            None => {
                let i = self.ops.len();
                self.ops.push(OpAgg {
                    name: name.to_string(),
                    calls: 0,
                    flops: 0.0,
                    bytes: 0.0,
                    ns: 0.0,
                });
                self.op_index.insert(name.to_string(), i);
                i
            }
        };
        let agg = &mut self.ops[idx];
        agg.calls += 1;
        agg.flops += flops;
        agg.bytes += bytes;
        agg.ns += ns;
    }

    fn into_report(self) -> ExperimentReport {
        let flight_events = self.flight.snapshot();
        let trial_slo = flight::derive_all(&flight_events);
        ExperimentReport {
            name: self.name,
            wall_ms: self.wall_ms,
            steps: self.steps,
            counters: self.metrics.counters().to_vec(),
            gauges: self.metrics.gauges().to_vec(),
            histograms: self
                .metrics
                .histograms()
                .iter()
                .map(|h| h.with_quantiles())
                .collect(),
            series: self.series,
            scalars: self.scope.streams().to_vec(),
            sentinels: self.scope.sentinels().to_vec(),
            ops: self.ops,
            flight: flight_events,
            trial_slo,
        }
    }
}

struct Shared {
    name: String,
    start: Instant,
    lanes: RefCell<Vec<LaneMeta>>,
    events: RefCell<Vec<TraceEvent>>,
    experiments: RefCell<Vec<ExperimentAcc>>,
    /// Index into `experiments` that metric recording targets.
    current: Cell<usize>,
    /// hfta-flight: shared JSONL spill target under `--trace`.
    flight_spill: RefCell<Option<Rc<RefCell<SpillState>>>>,
    /// Ambient surgery placement (time/device/array) set by the scheduler.
    flight_cursor: Cell<FlightCursor>,
    /// Ambient description of the segment currently training.
    sim_segment: Cell<Option<SimSegment>>,
}

/// The telemetry sink: records spans, counters, step metrics, and renders
/// Chrome traces and [`RunReport`]s. Clones share state (`Rc`).
#[derive(Clone)]
pub struct Profiler {
    shared: Rc<Shared>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("name", &self.shared.name)
            .field("events", &self.shared.events.borrow().len())
            .finish()
    }
}

impl Profiler {
    /// Creates a profiler; `name` becomes the run name and the root
    /// experiment scope.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        Profiler {
            shared: Rc::new(Shared {
                name: name.clone(),
                start: Instant::now(),
                lanes: RefCell::new(Vec::new()),
                events: RefCell::new(Vec::new()),
                experiments: RefCell::new(vec![ExperimentAcc::new(name)]),
                current: Cell::new(0),
                flight_spill: RefCell::new(None),
                flight_cursor: Cell::new(FlightCursor::default()),
                sim_segment: Cell::new(None),
            }),
        }
    }

    // -- installation -------------------------------------------------------

    /// Installs this profiler as the thread's sink; restored on guard drop.
    #[must_use = "telemetry uninstalls when the guard drops"]
    pub fn install(&self) -> InstallGuard {
        let prev = CURRENT.with(|c| c.replace(Some(self.clone())));
        InstallGuard { prev }
    }

    /// The thread's installed profiler, if any. This is the single branch
    /// disabled telemetry pays: callers cache the `Option` and skip all
    /// recording when it is `None`.
    pub fn current() -> Option<Profiler> {
        CURRENT.with(|c| c.borrow().clone())
    }

    // -- lanes and time -----------------------------------------------------

    /// Returns (allocating on first use) the lane for a `process`/`thread`
    /// display-name pair — e.g. `("V100", "HFTA B=8")` or
    /// `("autograd", "forward")`.
    pub fn lane(&self, process: &str, thread: &str) -> LaneId {
        let mut lanes = self.shared.lanes.borrow_mut();
        if let Some(l) = lanes
            .iter()
            .find(|l| l.process == process && l.thread == thread)
        {
            return LaneId {
                pid: l.pid,
                tid: l.tid,
            };
        }
        let pid = match lanes.iter().find(|l| l.process == process) {
            Some(l) => l.pid,
            None => lanes.iter().map(|l| l.pid).max().unwrap_or(0) + 1,
        };
        let tid = lanes
            .iter()
            .filter(|l| l.pid == pid)
            .map(|l| l.tid)
            .max()
            .unwrap_or(0)
            + 1;
        lanes.push(LaneMeta {
            pid,
            tid,
            process: process.to_string(),
            thread: thread.to_string(),
        });
        LaneId { pid, tid }
    }

    /// Microseconds since the profiler was created.
    pub fn now_us(&self) -> f64 {
        self.shared.start.elapsed().as_secs_f64() * 1e6
    }

    // -- wall-clock spans ---------------------------------------------------

    /// Opens a wall-clock span; it closes when the guard drops.
    pub fn span(&self, lane: LaneId, name: impl Into<String>) -> SpanGuard {
        self.span_with_args(lane, name, Vec::new())
    }

    /// Opens a wall-clock span carrying trace `args` (e.g. FLOP counts).
    pub fn span_with_args(
        &self,
        lane: LaneId,
        name: impl Into<String>,
        args: Vec<(String, Value)>,
    ) -> SpanGuard {
        let name = name.into();
        let ts = self.now_us();
        self.push_event(TraceEvent {
            name: name.clone(),
            phase: EventPhase::Begin,
            ts_us: ts,
            pid: lane.pid,
            tid: lane.tid,
            args,
        });
        SpanGuard {
            profiler: self.clone(),
            lane,
            name,
        }
    }

    // -- op samples ---------------------------------------------------------

    /// Opens a span that, on close, also folds an [`OpSample`]-style record
    /// (`flops`, `bytes`, elapsed ns) into the current experiment's per-op
    /// aggregates. This is the hfta-probe hook: the trace gets a normal
    /// begin/end pair carrying the cost as args, and the report gains a row
    /// in [`ExperimentReport::ops`] keyed by `name`.
    ///
    /// [`OpSample`]: crate::report::OpAgg
    pub fn op_span(&self, lane: LaneId, name: impl Into<String>, cost: OpCost) -> OpSpanGuard {
        let name = name.into();
        let ts = self.now_us();
        self.push_event(TraceEvent {
            name: name.clone(),
            phase: EventPhase::Begin,
            ts_us: ts,
            pid: lane.pid,
            tid: lane.tid,
            args: vec![
                ("flops".to_string(), Value::F64(cost.flops)),
                ("bytes".to_string(), Value::F64(cost.bytes)),
            ],
        });
        OpSpanGuard {
            profiler: self.clone(),
            lane,
            name,
            cost,
            started: Instant::now(),
        }
    }

    /// Folds one already-timed op sample into the current experiment's
    /// aggregates without emitting any trace event. Use this when the
    /// caller measured the duration itself (simulated time, batched
    /// replay); [`Profiler::op_span`] is the wall-clock front-end.
    pub fn record_op_sample(&self, name: &str, flops: f64, bytes: f64, ns: f64) {
        let mut experiments = self.shared.experiments.borrow_mut();
        let idx = self.shared.current.get();
        experiments[idx].record_op(name, flops, bytes, ns);
    }

    // -- simulated-time events ----------------------------------------------

    /// Records a begin event at an explicit (e.g. simulated) microsecond
    /// timestamp.
    pub fn begin_at(
        &self,
        lane: LaneId,
        name: impl Into<String>,
        ts_us: f64,
        args: Vec<(String, Value)>,
    ) {
        self.push_event(TraceEvent {
            name: name.into(),
            phase: EventPhase::Begin,
            ts_us,
            pid: lane.pid,
            tid: lane.tid,
            args,
        });
    }

    /// Records the matching end event for [`Profiler::begin_at`].
    pub fn end_at(&self, lane: LaneId, name: impl Into<String>, ts_us: f64) {
        self.push_event(TraceEvent {
            name: name.into(),
            phase: EventPhase::End,
            ts_us,
            pid: lane.pid,
            tid: lane.tid,
            args: Vec::new(),
        });
    }

    /// Records a counter sample: a `ph:"C"` trace event on `lane` *and* a
    /// point in the report series named `series`.
    pub fn counter_at(&self, lane: LaneId, series: &str, ts_us: f64, value: f64) {
        self.push_event(TraceEvent {
            name: series.to_string(),
            phase: EventPhase::Counter,
            ts_us,
            pid: lane.pid,
            tid: lane.tid,
            args: vec![("value".to_string(), Value::F64(value))],
        });
        self.series_point(series, ts_us, value);
    }

    /// Appends a point to a report-only time-series (no trace event).
    pub fn series_point(&self, series: &str, t_us: f64, value: f64) {
        let mut experiments = self.shared.experiments.borrow_mut();
        let acc = &mut experiments[self.shared.current.get()];
        let point = SeriesPoint { t_us, value };
        match acc.series.iter_mut().find(|s| s.name == series) {
            Some(s) => s.points.push(point),
            None => acc.series.push(CounterSeries {
                name: series.to_string(),
                points: vec![point],
            }),
        }
    }

    fn push_event(&self, event: TraceEvent) {
        self.shared.events.borrow_mut().push(event);
    }

    // -- metrics ------------------------------------------------------------

    /// Adds `delta` to counter `name` in the current experiment scope.
    pub fn incr(&self, name: &str, delta: f64) {
        let mut experiments = self.shared.experiments.borrow_mut();
        let idx = self.shared.current.get();
        experiments[idx].metrics.incr(name, delta);
    }

    /// Sets gauge `name` in the current experiment scope.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut experiments = self.shared.experiments.borrow_mut();
        let idx = self.shared.current.get();
        experiments[idx].metrics.set_gauge(name, value);
    }

    /// Observes `value` into histogram `name` in the current experiment
    /// scope.
    pub fn observe(&self, name: &str, value: f64) {
        let mut experiments = self.shared.experiments.borrow_mut();
        let idx = self.shared.current.get();
        experiments[idx].metrics.observe(name, value);
    }

    /// Records one training-step metric in the current experiment scope.
    pub fn step(&self, metric: StepMetric) {
        let mut experiments = self.shared.experiments.borrow_mut();
        let idx = self.shared.current.get();
        experiments[idx].steps.push(metric);
    }

    // -- hfta-scope: per-model streams and sentinels ------------------------

    /// Appends one sample to the per-model scalar stream
    /// `(model, metric)` in the current experiment scope. The stream is
    /// tagged with the run name; appending is O(1) amortized.
    pub fn scalar(&self, model: u64, metric: &str, step: u64, value: f64) {
        let mut experiments = self.shared.experiments.borrow_mut();
        let idx = self.shared.current.get();
        experiments[idx]
            .scope
            .record(&self.shared.name, model, metric, step, value);
    }

    /// Records a divergence sentinel event in the current experiment scope.
    pub fn sentinel(&self, event: SentinelEvent) {
        let mut experiments = self.shared.experiments.borrow_mut();
        let idx = self.shared.current.get();
        experiments[idx].scope.sentinel(event);
    }

    // -- experiment scopes --------------------------------------------------

    /// Opens a named experiment scope (e.g. `fig3`); metrics, steps and
    /// series recorded until the guard drops are attributed to it.
    #[must_use = "the experiment scope closes when the guard drops"]
    pub fn experiment(&self, name: impl Into<String>) -> ExperimentGuard {
        let mut experiments = self.shared.experiments.borrow_mut();
        let prev = self.shared.current.get();
        let mut acc = ExperimentAcc::new(name.into());
        if let Some(state) = self.shared.flight_spill.borrow().as_ref() {
            acc.flight.set_spill(state.clone(), &acc.name);
        }
        experiments.push(acc);
        self.shared.current.set(experiments.len() - 1);
        ExperimentGuard {
            profiler: self.clone(),
            prev,
        }
    }

    // -- hfta-flight: trial-lifecycle journal --------------------------------

    /// Appends one flight event to the current experiment scope's journal.
    #[allow(clippy::too_many_arguments)]
    pub fn flight_event(
        &self,
        trial: u64,
        t_ns: u64,
        kind: FlightKind,
        device: Option<u64>,
        array: Option<u64>,
        lane: Option<u64>,
        detail: String,
    ) {
        let mut experiments = self.shared.experiments.borrow_mut();
        let idx = self.shared.current.get();
        experiments[idx]
            .flight
            .record(trial, t_ns, kind, device, array, lane, detail);
    }

    /// Snapshot of the current experiment scope's in-memory journal.
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        let experiments = self.shared.experiments.borrow();
        experiments[self.shared.current.get()].flight.snapshot()
    }

    /// Last `n` journal events of the current scope (fault post-mortems).
    pub fn flight_tail(&self, n: usize) -> Vec<FlightEvent> {
        let experiments = self.shared.experiments.borrow();
        experiments[self.shared.current.get()].flight.tail(n)
    }

    /// Configures the shared JSONL spill target for every experiment
    /// scope, existing and future (called by `--trace` session setup).
    /// Nothing touches disk until the first overflow or flush.
    pub fn set_flight_spill(&self, path: std::path::PathBuf) {
        let state = SpillState::new(path);
        let mut experiments = self.shared.experiments.borrow_mut();
        for acc in experiments.iter_mut() {
            let name = acc.name.clone();
            acc.flight.set_spill(state.clone(), &name);
        }
        *self.shared.flight_spill.borrow_mut() = Some(state);
    }

    /// Flushes every scope's in-memory journal tail to the spill target
    /// (the spilled prefix is already on disk). Returns lines written; a
    /// no-op returning 0 when no spill target was configured.
    pub fn flush_flight_journal(&self) -> std::io::Result<usize> {
        let mut experiments = self.shared.experiments.borrow_mut();
        let mut total = 0;
        for acc in experiments.iter_mut() {
            total += acc.flight.flush()?;
        }
        Ok(total)
    }

    /// Total journal events currently held in memory across all scopes.
    pub fn flight_event_count(&self) -> usize {
        self.shared
            .experiments
            .borrow()
            .iter()
            .map(|a| a.flight.len())
            .sum()
    }

    /// Sets the ambient surgery cursor (scheduler, around extract/splice).
    pub fn set_flight_cursor(&self, cursor: FlightCursor) {
        self.shared.flight_cursor.set(cursor);
    }

    /// The ambient surgery cursor.
    pub fn flight_cursor(&self) -> FlightCursor {
        self.shared.flight_cursor.get()
    }

    /// Sets/clears the ambient segment description (scheduler, around
    /// `backend.train`) so mid-segment faults can be timestamped.
    pub fn set_sim_segment(&self, seg: Option<SimSegment>) {
        self.shared.sim_segment.set(seg);
    }

    /// The ambient segment description, if a segment is training.
    pub fn sim_segment(&self) -> Option<SimSegment> {
        self.shared.sim_segment.get()
    }

    // -- output -------------------------------------------------------------

    /// Renders the Chrome trace JSON (`chrome://tracing` / Perfetto).
    pub fn trace_json(&self) -> String {
        trace::render(&self.shared.lanes.borrow(), &self.shared.events.borrow())
    }

    /// Builds the [`RunReport`] snapshot (experiment scopes in execution
    /// order; the root scope carries everything recorded outside any
    /// explicit scope).
    pub fn report(&self) -> RunReport {
        let mut experiments = self
            .shared
            .experiments
            .borrow()
            .iter()
            .map(clone_acc)
            .collect::<Vec<_>>();
        // Root scope wall time runs to "now".
        if let Some(root) = experiments.first_mut() {
            if root.wall_ms == 0.0 {
                root.wall_ms = root.started.elapsed().as_secs_f64() * 1e3;
            }
        }
        RunReport {
            name: self.shared.name.clone(),
            wall_ms: self.shared.start.elapsed().as_secs_f64() * 1e3,
            trace_events: self.shared.events.borrow().len() as u64,
            experiments: experiments.into_iter().map(|a| a.into_report()).collect(),
        }
    }

    /// Number of recorded trace events (metadata excluded).
    pub fn event_count(&self) -> usize {
        self.shared.events.borrow().len()
    }
}

fn clone_acc(acc: &ExperimentAcc) -> ExperimentAcc {
    ExperimentAcc {
        name: acc.name.clone(),
        started: acc.started,
        wall_ms: acc.wall_ms,
        steps: acc.steps.clone(),
        metrics: acc.metrics.clone(),
        series: acc.series.clone(),
        scope: acc.scope.clone(),
        ops: acc.ops.clone(),
        op_index: acc.op_index.clone(),
        flight: acc.flight.clone(),
    }
}

/// Restores the previously installed profiler on drop.
pub struct InstallGuard {
    prev: Option<Profiler>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Closes a wall-clock span on drop.
pub struct SpanGuard {
    profiler: Profiler,
    lane: LaneId,
    name: String,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ts = self.profiler.now_us();
        self.profiler.push_event(TraceEvent {
            name: std::mem::take(&mut self.name),
            phase: EventPhase::End,
            ts_us: ts,
            pid: self.lane.pid,
            tid: self.lane.tid,
            args: Vec::new(),
        });
    }
}

/// Closes an op span on drop: emits the trace end event and folds the
/// elapsed time plus the declared [`OpCost`] into the current experiment's
/// per-op aggregates.
pub struct OpSpanGuard {
    profiler: Profiler,
    lane: LaneId,
    name: String,
    cost: OpCost,
    started: Instant,
}

impl Drop for OpSpanGuard {
    fn drop(&mut self) {
        let ns = self.started.elapsed().as_secs_f64() * 1e9;
        let ts = self.profiler.now_us();
        self.profiler
            .record_op_sample(&self.name, self.cost.flops, self.cost.bytes, ns);
        self.profiler.push_event(TraceEvent {
            name: std::mem::take(&mut self.name),
            phase: EventPhase::End,
            ts_us: ts,
            pid: self.lane.pid,
            tid: self.lane.tid,
            args: Vec::new(),
        });
    }
}

/// Closes an experiment scope on drop.
pub struct ExperimentGuard {
    profiler: Profiler,
    prev: usize,
}

impl Drop for ExperimentGuard {
    fn drop(&mut self) {
        let shared = &self.profiler.shared;
        let mut experiments = shared.experiments.borrow_mut();
        let idx = shared.current.get();
        let acc = &mut experiments[idx];
        acc.wall_ms = acc.started.elapsed().as_secs_f64() * 1e3;
        shared.current.set(self.prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_profiler_installed_means_none() {
        assert!(Profiler::current().is_none());
        let p = Profiler::new("t");
        {
            let _guard = p.install();
            assert!(Profiler::current().is_some());
        }
        assert!(Profiler::current().is_none());
    }

    #[test]
    fn install_nests_and_restores() {
        let outer = Profiler::new("outer");
        let inner = Profiler::new("inner");
        let _a = outer.install();
        {
            let _b = inner.install();
            let current = Profiler::current().unwrap();
            current.incr("x", 1.0);
            assert_eq!(inner.report().experiments[0].counters.len(), 1);
        }
        let current = Profiler::current().unwrap();
        current.incr("y", 1.0);
        let report = outer.report();
        assert_eq!(report.experiments[0].counters[0].name, "y");
    }

    #[test]
    fn spans_balance_and_nest() {
        let p = Profiler::new("t");
        let lane = p.lane("proc", "thread");
        {
            let _outer = p.span(lane, "outer");
            let _inner = p.span(lane, "inner");
        }
        assert_eq!(p.event_count(), 4);
        let json = p.trace_json();
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        assert!(matches!(v.get("traceEvents"), Some(serde::Value::Array(_))));
    }

    #[test]
    fn lanes_are_deduplicated_and_distinct() {
        let p = Profiler::new("t");
        let a = p.lane("V100", "serial");
        let b = p.lane("V100", "hfta");
        let c = p.lane("A100", "serial");
        let a2 = p.lane("V100", "serial");
        assert_eq!(a, a2);
        assert_eq!(a.pid, b.pid);
        assert_ne!(a.tid, b.tid);
        assert_ne!(a.pid, c.pid);
    }

    #[test]
    fn experiment_scopes_bucket_metrics() {
        let p = Profiler::new("run");
        p.incr("root_counter", 1.0);
        {
            let _e = p.experiment("fig3");
            p.incr("fig3_counter", 2.0);
            p.step(StepMetric {
                step: 0,
                model: 0,
                loss: 1.0,
                samples_per_s: 10.0,
                fused_width: 3,
            });
        }
        let report = p.report();
        assert_eq!(report.experiments.len(), 2);
        assert_eq!(report.experiments[0].name, "run");
        assert_eq!(report.experiments[0].counters[0].name, "root_counter");
        let fig3 = report.experiment("fig3").unwrap();
        assert_eq!(fig3.counters[0].value, 2.0);
        assert_eq!(fig3.steps.len(), 1);
        assert!(fig3.wall_ms >= 0.0);
    }

    #[test]
    fn scalars_and_sentinels_land_in_current_experiment() {
        let p = Profiler::new("run");
        p.scalar(0, "loss", 0, 2.0);
        {
            let _e = p.experiment("sweep");
            p.scalar(1, "loss", 0, 3.0);
            p.scalar(1, "loss", 1, f64::NAN);
            p.sentinel(crate::scope::SentinelEvent {
                step: 1,
                model: 1,
                kind: crate::scope::SentinelKind::NonFiniteLoss,
                value: f64::NAN,
                quarantined: true,
            });
        }
        let report = p.report();
        let root = &report.experiments[0];
        assert_eq!(root.scalars.len(), 1);
        assert_eq!(root.scalars[0].run, "run");
        assert!(root.sentinels.is_empty());
        let sweep = report.experiment("sweep").unwrap();
        assert_eq!(sweep.scalar_stream(1, "loss").unwrap().points.len(), 2);
        assert_eq!(sweep.sentinels_for(1).len(), 1);
        assert!(sweep.sentinels[0].quarantined);
    }

    #[test]
    fn report_histograms_carry_quantiles() {
        let p = Profiler::new("run");
        for i in 0..50 {
            p.observe("lat", 1.0 + i as f64);
        }
        let h = &p.report().experiments[0].histograms[0];
        assert!(h.p50 > 0.0 && h.p50 <= h.p95 && h.p95 <= h.p99);
        assert!(h.p99 <= h.max);
    }

    #[test]
    fn op_spans_aggregate_per_op_kind() {
        let p = Profiler::new("t");
        let lane = p.lane("kernels", "cpu");
        for _ in 0..3 {
            let _g = p.op_span(lane, "matmul", OpCost::matmul(1, 8, 8, 8));
        }
        {
            let _g = p.op_span(lane, "relu", OpCost::elementwise(64));
        }
        p.record_op_sample("relu", 64.0, 512.0, 100.0);
        let report = p.report();
        let ops = &report.experiments[0].ops;
        assert_eq!(ops.len(), 2);
        let mm = report.experiments[0].op("matmul").unwrap();
        assert_eq!(mm.calls, 3);
        assert_eq!(mm.flops, 3.0 * 1024.0);
        assert_eq!(mm.bytes, 3.0 * 4.0 * 192.0);
        assert!(mm.ns > 0.0);
        let relu = report.experiments[0].op("relu").unwrap();
        assert_eq!(relu.calls, 2);
        assert_eq!(relu.flops, 128.0);
        // Trace side: begin+end per op_span, none for record_op_sample.
        assert_eq!(p.event_count(), 8);
    }

    #[test]
    fn op_samples_land_in_current_experiment() {
        let p = Profiler::new("run");
        p.record_op_sample("root_op", 1.0, 1.0, 1.0);
        {
            let _e = p.experiment("fig8");
            p.record_op_sample("scoped_op", 2.0, 2.0, 2.0);
        }
        let report = p.report();
        assert!(report.experiments[0].op("root_op").is_some());
        assert!(report.experiments[0].op("scoped_op").is_none());
        assert!(report.experiment("fig8").unwrap().op("scoped_op").is_some());
    }

    #[test]
    fn flight_events_land_in_current_experiment_and_report() {
        let p = Profiler::new("run");
        {
            let _e = p.experiment("elastic");
            p.flight_event(1, 0, FlightKind::Submit, None, None, None, String::new());
            p.flight_event(1, 0, FlightKind::Enqueue, None, None, None, String::new());
            p.flight_event(
                1,
                5,
                FlightKind::Dispatch,
                Some(0),
                Some(0),
                Some(0),
                String::new(),
            );
            p.flight_event(
                1,
                9,
                FlightKind::Complete,
                Some(0),
                Some(0),
                Some(0),
                String::new(),
            );
            assert_eq!(p.flight_tail(2).len(), 2);
            assert_eq!(p.flight_tail(2)[0].kind, FlightKind::Dispatch);
        }
        let report = p.report();
        assert!(report.experiments[0].flight.is_empty());
        let exp = report.experiment("elastic").unwrap();
        assert_eq!(exp.flight.len(), 4);
        assert_eq!(exp.trial_slo.len(), 1);
        let slo = &exp.trial_slo[0];
        assert_eq!(slo.queue_ns, 5);
        assert_eq!(slo.compute_ns, 4);
        assert_eq!(slo.e2e_ns(), 9);
    }

    #[test]
    fn ambient_flight_cursor_and_segment_round_trip() {
        let p = Profiler::new("run");
        assert_eq!(p.flight_cursor(), FlightCursor::default());
        assert!(p.sim_segment().is_none());
        p.set_flight_cursor(FlightCursor {
            t_ns: 42,
            device: Some(1),
            array: Some(3),
        });
        p.set_sim_segment(Some(SimSegment {
            base_ns: 100,
            per_step_ns: 10,
            base_step: 4,
            device: 1,
            array: 3,
        }));
        assert_eq!(p.flight_cursor().t_ns, 42);
        let seg = p.sim_segment().unwrap();
        assert_eq!(seg.step_end_ns(4), 110);
        assert_eq!(seg.step_end_ns(6), 130);
        p.set_sim_segment(None);
        assert!(p.sim_segment().is_none());
    }

    #[test]
    fn counter_at_feeds_both_trace_and_series() {
        let p = Profiler::new("t");
        let lane = p.lane("V100", "hfta");
        p.counter_at(lane, "smi_util", 1.0, 0.5);
        p.counter_at(lane, "smi_util", 2.0, 0.9);
        let report = p.report();
        let series = report.experiments[0].series("smi_util").unwrap();
        assert_eq!(series.points.len(), 2);
        assert_eq!(p.event_count(), 2);
    }
}
