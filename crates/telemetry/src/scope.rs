//! hfta-scope: per-model training-health event streams.
//!
//! A fused array hides its `B` member jobs inside shared tensors; this
//! module is the piece of telemetry that makes them visible again. A
//! [`ScalarStream`] is an append-only, step-stamped log of one scalar
//! metric for one model of one run — the moral equivalent of a
//! TensorBoard scalar event file, tagged `(run, model, metric)` so a
//! B-way sweep produces `B` separable loss/grad-norm/param-norm curves
//! from a single process. A [`SentinelEvent`] records a divergence fault
//! (NaN/Inf/explosion) attributed to a specific model index, plus whether
//! the model was quarantined in response.
//!
//! [`ScopeLog`] is the container the profiler embeds per experiment
//! scope: appends are O(1) amortized (a `HashMap` keyed on
//! `(model, metric)` indexes into the ordered stream list, which is kept
//! in first-appearance order so serialized reports are deterministic).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// One step-stamped sample of a per-model scalar metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarPoint {
    /// Training step the sample was taken at (0-based).
    pub step: u64,
    /// Sampled value.
    pub value: f64,
}

/// An append-only log of one scalar metric for one model of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarStream {
    /// Run name (the profiler's run, e.g. the bench bin).
    pub run: String,
    /// Model index within the fused array.
    pub model: u64,
    /// Metric name (e.g. `loss`, `grad_norm`, `param_norm`,
    /// `update_ratio`).
    pub metric: String,
    /// Samples in append order (steps are non-decreasing by construction
    /// of the training loop, but this is not enforced).
    pub points: Vec<ScalarPoint>,
}

impl ScalarStream {
    /// The last recorded value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|p| p.value)
    }

    /// Minimum recorded value (`None` when empty; NaNs are skipped).
    pub fn min(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.value)
            .filter(|v| !v.is_nan())
            .reduce(f64::min)
    }

    /// Maximum recorded value (`None` when empty; NaNs are skipped).
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.value)
            .filter(|v| !v.is_nan())
            .reduce(f64::max)
    }
}

/// What kind of divergence a sentinel detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SentinelKind {
    /// The model's loss came back NaN or infinite.
    NonFiniteLoss,
    /// The model's gradient lane contained a NaN or infinity.
    NonFiniteGrad,
    /// The model's gradient norm exceeded the explosion threshold.
    GradExplosion,
    /// The model's loss exceeded the explosion threshold.
    LossExplosion,
}

impl SentinelKind {
    /// Short display label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            SentinelKind::NonFiniteLoss => "nan_loss",
            SentinelKind::NonFiniteGrad => "nan_grad",
            SentinelKind::GradExplosion => "grad_explosion",
            SentinelKind::LossExplosion => "loss_explosion",
        }
    }
}

/// A divergence fault attributed to one model of the fused array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SentinelEvent {
    /// Training step the fault was detected at.
    pub step: u64,
    /// Model index the fault is attributed to.
    pub model: u64,
    /// What tripped the sentinel.
    pub kind: SentinelKind,
    /// The offending value (NaN serializes as `null` in JSON; the kind
    /// already says it was non-finite).
    pub value: f64,
    /// Whether the model was quarantined in response.
    pub quarantined: bool,
}

/// Per-experiment container of scalar streams and sentinel events.
#[derive(Debug, Clone, Default)]
pub struct ScopeLog {
    streams: Vec<ScalarStream>,
    index: HashMap<(u64, String), usize>,
    sentinels: Vec<SentinelEvent>,
}

impl ScopeLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one sample to stream `(model, metric)`, creating the
    /// stream (tagged with `run`) on first use. O(1) amortized.
    pub fn record(&mut self, run: &str, model: u64, metric: &str, step: u64, value: f64) {
        let point = ScalarPoint { step, value };
        if let Some(&i) = self.index.get(&(model, metric.to_string())) {
            self.streams[i].points.push(point);
            return;
        }
        self.index
            .insert((model, metric.to_string()), self.streams.len());
        self.streams.push(ScalarStream {
            run: run.to_string(),
            model,
            metric: metric.to_string(),
            points: vec![point],
        });
    }

    /// Appends a sentinel event.
    pub fn sentinel(&mut self, event: SentinelEvent) {
        self.sentinels.push(event);
    }

    /// All streams in first-appearance order.
    pub fn streams(&self) -> &[ScalarStream] {
        &self.streams
    }

    /// The stream for `(model, metric)`, if it exists.
    pub fn stream(&self, model: u64, metric: &str) -> Option<&ScalarStream> {
        self.index
            .get(&(model, metric.to_string()))
            .map(|&i| &self.streams[i])
    }

    /// All sentinel events in detection order.
    pub fn sentinels(&self) -> &[SentinelEvent] {
        &self.sentinels
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty() && self.sentinels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_appends_and_indexes() {
        let mut log = ScopeLog::new();
        log.record("run", 0, "loss", 0, 2.0);
        log.record("run", 1, "loss", 0, 3.0);
        log.record("run", 0, "loss", 1, 1.5);
        assert_eq!(log.streams().len(), 2);
        let s = log.stream(0, "loss").unwrap();
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.last(), Some(1.5));
        assert_eq!(s.min(), Some(1.5));
        assert_eq!(s.max(), Some(2.0));
        assert!(log.stream(2, "loss").is_none());
        assert!(log.stream(0, "grad_norm").is_none());
    }

    #[test]
    fn stream_stats_skip_nan() {
        let mut log = ScopeLog::new();
        log.record("run", 0, "loss", 0, 2.0);
        log.record("run", 0, "loss", 1, f64::NAN);
        let s = log.stream(0, "loss").unwrap();
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(2.0));
        assert!(s.last().unwrap().is_nan());
    }

    #[test]
    fn streams_serialize_round_trip() {
        let mut log = ScopeLog::new();
        log.record("r", 3, "grad_norm", 7, 0.25);
        log.sentinel(SentinelEvent {
            step: 7,
            model: 3,
            kind: SentinelKind::GradExplosion,
            value: 1e9,
            quarantined: true,
        });
        let json = serde_json::to_string(&log.streams()[0].clone()).unwrap();
        let back: ScalarStream = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log.streams()[0]);
        let ejson = serde_json::to_string(&log.sentinels()[0].clone()).unwrap();
        let eback: SentinelEvent = serde_json::from_str(&ejson).unwrap();
        assert_eq!(eback, log.sentinels()[0]);
        assert_eq!(eback.kind.label(), "grad_explosion");
    }
}
