//! Property-based tests of simulator invariants.

use hfta_sim::{
    DeviceSpec, GemmDims, GpuSim, JobMemory, Kernel, SharingPolicy, TpuSim, TrainingJob,
};
use proptest::prelude::*;

fn job(kernel_flops: u64, tiles: u64, kernels: usize, mem: f64) -> TrainingJob {
    TrainingJob {
        name: "prop".into(),
        kernels: vec![
            Kernel {
                flops: kernel_flops,
                bytes: kernel_flops / 8,
                tiles,
                gemm: Some(GemmDims {
                    m: 512,
                    n: 64,
                    k: 128,
                    batch: 1,
                }),
                pad_dim: Some(64),
                tc_eligible: true,
            };
            kernels
        ],
        host_us: 100.0,
        sync_us_per_kernel: 50.0,
        cpu_gap_fraction: 0.2,
        memory: JobMemory {
            weights_gib: mem * 0.1,
            activations_gib: mem * 0.9,
            workspace_gib: 0.05,
        },
        models_per_job: 1,
        examples_per_iteration: 32,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn throughput_positive_when_fits(flops in 1_000_000u64..1_000_000_000, tiles in 1u64..1000) {
        let sim = GpuSim::new(DeviceSpec::v100(), false);
        let r = sim.simulate(SharingPolicy::Serial, &job(flops, tiles, 20, 0.2), 1);
        prop_assert!(r.fits);
        prop_assert!(r.throughput_eps > 0.0);
        prop_assert!(r.round_us.is_finite());
    }

    #[test]
    fn more_work_is_never_faster(flops in 1_000_000u64..100_000_000, tiles in 1u64..200) {
        let sim = GpuSim::new(DeviceSpec::v100(), false);
        let small = sim.simulate(SharingPolicy::Serial, &job(flops, tiles, 20, 0.2), 1);
        let big = sim.simulate(SharingPolicy::Serial, &job(flops * 2, tiles, 20, 0.2), 1);
        prop_assert!(big.round_us >= small.round_us);
    }

    #[test]
    fn memory_grows_linearly_with_processes(j in 1usize..8) {
        let sim = GpuSim::new(DeviceSpec::a100(), false);
        let one = sim.simulate(SharingPolicy::Mps, &job(1_000_000, 8, 10, 0.1), 1);
        let many = sim.simulate(SharingPolicy::Mps, &job(1_000_000, 8, 10, 0.1), j);
        prop_assert!(many.fits);
        prop_assert!((many.memory_gib - j as f64 * one.memory_gib).abs() < 1e-9);
    }

    #[test]
    fn counters_are_probabilities(
        flops in 1_000_000u64..500_000_000,
        tiles in 1u64..2000,
        j in 1usize..6,
        amp in any::<bool>(),
    ) {
        let sim = GpuSim::new(DeviceSpec::a100(), amp);
        for policy in [SharingPolicy::Concurrent, SharingPolicy::Mps, SharingPolicy::Mig] {
            let r = sim.simulate(policy, &job(flops, tiles, 15, 0.1), j.min(7));
            if r.fits {
                let c = r.counters;
                for v in [c.sm_active, c.sm_occupancy, c.tensor_active, c.smi_util] {
                    prop_assert!((0.0..=1.0).contains(&v), "{policy:?}: {v}");
                }
            }
        }
    }

    #[test]
    fn oom_is_monotone_in_job_count(mem in 0.5f64..4.0) {
        let sim = GpuSim::new(DeviceSpec::v100(), false);
        let mut seen_oom = false;
        for j in 1..=20 {
            let r = sim.simulate(SharingPolicy::Mps, &job(1_000_000, 8, 10, mem), j);
            if seen_oom {
                prop_assert!(!r.fits, "fits again at {j} after OOM");
            }
            seen_oom = !r.fits;
        }
    }

    #[test]
    fn tpu_throughput_scales_with_examples(examples in 1usize..256) {
        let sim = TpuSim::new(DeviceSpec::tpu_v3());
        let mut j = job(10_000_000, 16, 10, 0.1);
        j.examples_per_iteration = examples;
        let r = sim.simulate(&j);
        prop_assert!(r.fits);
        let per_example = r.throughput_eps / examples as f64;
        let mut j1 = job(10_000_000, 16, 10, 0.1);
        j1.examples_per_iteration = 1;
        let r1 = sim.simulate(&j1);
        prop_assert!((per_example - r1.throughput_eps).abs() < 1e-6);
    }

    #[test]
    fn systolic_efficiency_in_unit_interval(m in 1u64..10_000, n in 1u64..10_000, k in 1u64..10_000) {
        let g = GemmDims { m, n, k, batch: 1 };
        let e = g.systolic_efficiency();
        prop_assert!((0.0..=1.0).contains(&e));
    }
}
