//! GPU execution and sharing-mode simulation.
//!
//! The model captures the three mechanisms the paper's analysis rests on:
//!
//! 1. **Occupancy-limited roofline** — a kernel only approaches peak
//!    FLOP/s or bandwidth if it exposes enough thread blocks to fill the
//!    device; repetitive single-model jobs launch small kernels that
//!    cannot fill modern GPUs (paper §2.1, Appendix A).
//! 2. **Per-kernel overheads** — every launch pays CPU dispatch latency
//!    and every GEMM pays setup/teardown; `concurrent`, `MPS` and `MIG`
//!    duplicate these per job while HFTA pays them once per fused kernel
//!    (paper §2.2).
//! 3. **Per-process memory** — each process reserves a framework context;
//!    HFTA shares one (paper Figure 7).

use hfta_telemetry::Profiler;
use serde::{Deserialize, Serialize, Value};

use crate::counters::Counters;
use crate::device::DeviceSpec;
use crate::kernel::{Kernel, TrainingJob};

/// Fraction of datasheet peak a well-tuned kernel actually sustains.
const KERNEL_EFFICIENCY: f64 = 0.55;
/// Memory bandwidth saturates with roughly a quarter of the block slots.
const MEM_SATURATION_DIVISOR: f64 = 4.0;
/// Host-side data-pipeline worker slots (CPU cores available for loaders).
const HOST_SLOTS: f64 = 4.0;
/// Super-linear host contention once loaders exceed the host slots.
const HOST_CONTENTION: f64 = 0.05;
/// Serialized driver time per kernel launch when many processes share the
/// GPU (MPS/concurrent), µs.
const DRIVER_SERIAL_US: f64 = 1.5;
/// Warp-occupancy ceiling: even fully tiled kernels rarely exceed this
/// occupancy on real hardware.
const OCCUPANCY_CEILING: f64 = 0.6;
/// Wave ramp constant: a kernel with `t` tiles sustains
/// `t / (t + WAVE_RAMP)` of its steady-state rate (tail/ramp losses).
const WAVE_RAMP: f64 = 8.0;
/// Split-k granularity: GEMM libraries slice the reduction dimension into
/// ~256-element chunks to expose extra parallelism when output tiles are
/// scarce.
const SPLITK_CHUNK: f64 = 256.0;
/// Maximum split-k fan-out.
const SPLITK_MAX: f64 = 32.0;

/// The sharing policies compared in the paper's evaluation (§4 baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SharingPolicy {
    /// One job per GPU (the common practice the paper's `serial` baseline).
    Serial,
    /// J processes time-multiplexed without MPS.
    Concurrent,
    /// J processes sharing via CUDA MPS (Hyper-Q spatial overlap).
    Mps,
    /// J processes on static MIG instances (A100 only, up to 7).
    Mig,
    /// One process training a B-wide fused model array (this work).
    Hfta,
}

impl SharingPolicy {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            SharingPolicy::Serial => "serial",
            SharingPolicy::Concurrent => "concurrent",
            SharingPolicy::Mps => "MPS",
            SharingPolicy::Mig => "MIG",
            SharingPolicy::Hfta => "HFTA",
        }
    }
}

/// Outcome of simulating one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Whether the configuration fits in device memory.
    pub fits: bool,
    /// Total models co-trained on the device.
    pub models: usize,
    /// Aggregate training throughput in examples/second (all models).
    pub throughput_eps: f64,
    /// Wall time of one "round" (every model advances one iteration), µs.
    pub round_us: f64,
    /// Device memory in use, GiB.
    pub memory_gib: f64,
    /// Steady-state hardware counters.
    pub counters: Counters,
}

impl SimResult {
    fn oom(models: usize, memory_gib: f64) -> Self {
        SimResult {
            fits: false,
            models,
            throughput_eps: 0.0,
            round_us: f64::INFINITY,
            memory_gib,
            counters: Counters::idle(),
        }
    }
}

/// Per-kernel timing decomposition at a given SM share.
#[derive(Debug, Clone, Copy)]
struct KernelTiming {
    /// Execution (resident) time, µs.
    exec_us: f64,
    /// Launch + setup overhead, µs.
    overhead_us: f64,
    /// SM temporal activity while resident (0..=1, whole-GPU scale).
    active: f64,
    /// SM spatial occupancy while resident (0..=1).
    occupancy: f64,
    /// Tensor-core pipe activity while resident (0..=1).
    tensor: f64,
}

/// GPU simulator for one device and precision mode.
#[derive(Debug, Clone)]
pub struct GpuSim {
    device: DeviceSpec,
    amp: bool,
}

impl GpuSim {
    /// Creates a simulator for `device`; `amp` selects mixed-precision
    /// training (tensor-core eligible GEMMs, halved GEMM traffic).
    pub fn new(device: DeviceSpec, amp: bool) -> Self {
        GpuSim { device, amp }
    }

    /// The device being simulated.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Whether AMP is enabled.
    pub fn amp(&self) -> bool {
        self.amp
    }

    /// Times one kernel given the fraction of the device it may use.
    ///
    /// The three modeled effects:
    /// * **fill** — the kernel can only use `min(tiles, share * slots)` of
    ///   the device's block slots;
    /// * **wave ramp** — kernels with few tiles lose a fixed ramp-up/-down
    ///   fraction (`tiles / (tiles + WAVE_RAMP)`), which is the
    ///   granularity advantage fused B-wide kernels have over B small
    ///   kernels at the *same* aggregate fill;
    /// * **tensor-core feeding** — TC peak is only approached as the
    ///   device fills; tiny GEMMs run at CUDA-core speed even under AMP
    ///   (the paper's Table 10: serial AMP gain ~1.0x).
    fn kernel_timing(&self, k: &Kernel, sm_fraction: f64) -> KernelTiming {
        let dev = &self.device;
        let total_slots = dev.block_slots() as f64;
        let share_slots = (total_slots * sm_fraction).max(1.0);
        let tiles = k.tiles.max(1) as f64;

        // Fraction of the whole device the kernel actually occupies.
        // GEMM libraries rescue tile-starved kernels by splitting the
        // reduction dimension (split-k), multiplying the schedulable
        // tiles when k is deep.
        let parallel_tiles = match k.gemm {
            Some(g) => {
                let splitk = (g.k as f64 / SPLITK_CHUNK).clamp(1.0, SPLITK_MAX);
                tiles * splitk
            }
            None => tiles,
        };
        let used_fraction = parallel_tiles.min(share_slots) / total_slots;
        let wave = tiles / (tiles + WAVE_RAMP);
        let use_tc = self.amp && k.is_gemm() && k.tc_eligible && dev.tensor_tflops > 0.0;
        let peak_tflops = if use_tc {
            // TCs only approach peak once the device is fed.
            dev.fp32_tflops + (dev.tensor_tflops - dev.fp32_tflops) * used_fraction
        } else {
            dev.fp32_tflops
        };
        let eff_flops = peak_tflops * 1e12 * KERNEL_EFFICIENCY * used_fraction * wave;
        let compute_us = k.flops as f64 / eff_flops * 1e6;

        let bytes = if use_tc { k.bytes / 2 } else { k.bytes };
        // Bandwidth saturates with fewer blocks than compute does.
        let mem_fraction = (tiles * MEM_SATURATION_DIVISOR).min(share_slots) / total_slots;
        let eff_bw = dev.hbm_bw_gibs * 1024f64.powi(3) * mem_fraction.min(1.0) * wave;
        let mem_us = bytes as f64 / eff_bw * 1e6;

        let exec_us = compute_us.max(mem_us);
        let overhead_us = dev.kernel_launch_us + if k.is_gemm() { dev.gemm_setup_us } else { 0.0 };

        let active = (tiles / dev.sm_count as f64).min(sm_fraction.min(1.0));
        let occupancy = used_fraction.min(sm_fraction.min(1.0)) * OCCUPANCY_CEILING;
        let tensor = if use_tc {
            (compute_us / exec_us) * used_fraction.min(sm_fraction.min(1.0))
        } else {
            0.0
        };
        KernelTiming {
            exec_us,
            overhead_us,
            active,
            occupancy,
            tensor,
        }
    }

    /// Sums a job's kernel stream at an SM share: total stream time plus
    /// the time-weighted counter integrals.
    fn stream(&self, job: &TrainingJob, sm_fraction: f64) -> StreamSummary {
        let mut total_us = 0.0;
        let mut active_us = 0.0;
        let mut occupancy_us = 0.0;
        let mut tensor_us = 0.0;
        let mut exec_us = 0.0;
        for k in &job.kernels {
            let t = self.kernel_timing(k, sm_fraction);
            total_us += t.exec_us + t.overhead_us;
            exec_us += t.exec_us;
            active_us += t.exec_us * t.active;
            occupancy_us += t.exec_us * t.occupancy;
            tensor_us += t.exec_us * t.tensor;
        }
        StreamSummary {
            total_us,
            exec_us,
            active_us,
            occupancy_us,
            tensor_us,
        }
    }

    /// Host data-pipeline wall time when `processes` loader stacks share
    /// the host, µs per round.
    fn host_wall_us(&self, host_us_per_job: f64, processes: usize) -> f64 {
        let j = processes as f64;
        let base = j * host_us_per_job / HOST_SLOTS;
        let contention = 1.0 + HOST_CONTENTION * (j - HOST_SLOTS).max(0.0);
        base * contention
    }

    /// Device memory used by `processes` processes each holding
    /// `per_process_gib` of model state.
    fn memory_gib(&self, per_process_gib: f64, processes: usize) -> f64 {
        processes as f64 * (self.device.framework_overhead_gib(self.amp) + per_process_gib)
    }

    fn job_mem_gib(&self, job: &TrainingJob) -> f64 {
        let m = job.memory;
        // AMP halves activation storage for TC-eligible tensors but keeps
        // fp32 master copies and workspaces; net saving is modest.
        let act = if self.amp {
            m.activations_gib * 0.9
        } else {
            m.activations_gib
        };
        m.weights_gib + act + m.workspace_gib
    }

    /// Simulates `j` identical jobs under `policy`. For
    /// [`SharingPolicy::Hfta`], pass the *fused* job (whose kernels carry
    /// `B` models of work and whose `models_per_job == B`) and `j = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `j == 0`, if `policy == Mig` on a device without MIG, or
    /// if `j` exceeds the MIG instance limit.
    pub fn simulate(&self, policy: SharingPolicy, job: &TrainingJob, j: usize) -> SimResult {
        assert!(j > 0, "job count must be positive");
        let dev = &self.device;
        let job_mem = self.job_mem_gib(job);
        let n_kernels = job.kernel_count() as f64;
        let models = j * job.models_per_job;

        // Per-iteration framework gap time of one job's kernel stream,
        // split into per-process CPU work (overlappable across processes)
        // and driver critical-section time (serializes across processes).
        let gaps = n_kernels * (job.sync_us_per_kernel + DRIVER_SERIAL_US);
        let gaps_cpu = gaps * job.cpu_gap_fraction;
        let gaps_driver = gaps - gaps_cpu;

        let (round_us, counters, memory_gib) = match policy {
            SharingPolicy::Serial | SharingPolicy::Hfta => {
                assert!(
                    policy != SharingPolicy::Serial || job.models_per_job == 1,
                    "serial jobs train one model"
                );
                let memory = self.memory_gib(job_mem, j);
                if memory > dev.hbm_gib {
                    return SimResult::oom(models, memory);
                }
                let s = self.stream(job, 1.0);
                let round = if policy == SharingPolicy::Hfta {
                    // HFTA is the optimized library path: its single shared
                    // input pipeline prefetches and overlaps with device
                    // execution.
                    (s.total_us + gaps).max(job.host_us)
                } else {
                    // The serial baseline is the paper's unoptimized
                    // researcher loop: host work, framework gaps and
                    // kernels alternate sequentially.
                    s.total_us + gaps + job.host_us
                };
                (round, self.counters_from(&s, round, 1.0), memory)
            }
            SharingPolicy::Concurrent => {
                let memory = self.memory_gib(job_mem, j);
                if memory > dev.hbm_gib {
                    return SimResult::oom(models, memory);
                }
                let s = self.stream(job, 1.0);
                // Time-multiplexed: execution and driver gaps serialize on
                // the device; per-process CPU gaps overlap across jobs
                // (bounded by host cores).
                let gpu_round = j as f64 * (s.total_us + gaps_driver);
                let cpu_round = gaps_cpu * (j as f64 / HOST_SLOTS).max(1.0);
                let round = gpu_round
                    .max(cpu_round)
                    .max(self.host_wall_us(job.host_us, j));
                let c = Counters {
                    sm_active: (j as f64 * s.active_us / round).min(1.0),
                    sm_occupancy: (j as f64 * s.occupancy_us / round).min(1.0),
                    tensor_active: (j as f64 * s.tensor_us / round).min(1.0),
                    smi_util: 0.0,
                };
                (round, c, memory)
            }
            SharingPolicy::Mps | SharingPolicy::Mig => {
                if policy == SharingPolicy::Mig {
                    assert!(dev.supports_mig(), "{} does not support MIG", dev.name);
                    assert!(
                        j <= dev.mig_max_instances,
                        "MIG supports at most {} instances",
                        dev.mig_max_instances
                    );
                }
                let memory = self.memory_gib(job_mem, j);
                let fits = if policy == SharingPolicy::Mig {
                    let per_gi = dev.hbm_gib / dev.mig_max_instances as f64;
                    self.memory_gib(job_mem, 1) <= per_gi
                } else {
                    memory <= dev.hbm_gib
                };
                if !fits {
                    return SimResult::oom(models, memory);
                }
                // Kernels overlap spatially, but the per-kernel
                // framework/driver gaps serialize across processes
                // (paper §2.2: overhead duplication).
                let share = if policy == SharingPolicy::Mig {
                    1.0 / dev.mig_max_instances as f64
                } else {
                    1.0 / j as f64
                };
                let s = self.stream(job, share);
                // Each process still runs its own sequential loop (host,
                // gaps, kernels); sharing only overlaps *different*
                // processes' phases. The slowest job's chain, the
                // serialized driver gaps, the host pool and the overlapped
                // device streams each bound the round.
                let per_job_chain = job.host_us + gaps + s.total_us;
                let round = per_job_chain
                    .max(j as f64 * gaps_driver * dev.mps_gap_serial_fraction)
                    .max(gaps_cpu * (j as f64 / HOST_SLOTS).max(1.0))
                    .max(self.host_wall_us(job.host_us, j));
                let c = Counters {
                    sm_active: (j as f64 * s.active_us / round).min(1.0),
                    sm_occupancy: (j as f64 * s.occupancy_us / round).min(1.0),
                    tensor_active: (j as f64 * s.tensor_us / round).min(1.0),
                    smi_util: 0.0,
                };
                (round, c, memory)
            }
        };

        let throughput_eps = (models * job.examples_per_iteration) as f64 / (round_us * 1e-6);
        let mut counters = counters;
        counters.smi_util = Counters::smi_from_active(counters.sm_active, models);
        SimResult {
            fits: true,
            models,
            throughput_eps,
            round_us,
            memory_gib,
            counters,
        }
    }

    /// Like [`GpuSim::simulate`], but also renders one process's simulated
    /// kernel stream onto a trace lane (`process = device name`,
    /// `thread = label`) and samples the DCGM-style counters as a
    /// time-series named `<label>/<counter>` (the paper's Figures 8/11/12
    /// views). Timestamps are simulated microseconds within one round.
    pub fn simulate_traced(
        &self,
        policy: SharingPolicy,
        job: &TrainingJob,
        j: usize,
        profiler: &Profiler,
        label: &str,
    ) -> SimResult {
        let result = self.simulate(policy, job, j);
        if !result.fits {
            return result;
        }
        let lane = profiler.lane(&self.device.name, label);
        let share = match policy {
            SharingPolicy::Serial | SharingPolicy::Hfta | SharingPolicy::Concurrent => 1.0,
            SharingPolicy::Mps => 1.0 / j as f64,
            SharingPolicy::Mig => 1.0 / self.device.mig_max_instances as f64,
        };
        let mut cursor = 0.0f64;
        for (i, k) in job.kernels.iter().enumerate() {
            let t = self.kernel_timing(k, share);
            let start = cursor + t.overhead_us;
            let end = start + t.exec_us;
            let name = match k.gemm {
                Some(g) => format!("gemm {}x{}x{}", g.m, g.n, g.k),
                None => "elementwise".to_string(),
            };
            profiler.begin_at(
                lane,
                name.clone(),
                start,
                vec![
                    ("flops".to_string(), Value::U64(k.flops)),
                    ("bytes".to_string(), Value::U64(k.bytes)),
                    ("tiles".to_string(), Value::U64(k.tiles)),
                ],
            );
            profiler.end_at(lane, name, end);
            profiler.counter_at(lane, &format!("{label}/sm_active"), end, t.active);
            profiler.counter_at(lane, &format!("{label}/sm_occupancy"), end, t.occupancy);
            profiler.counter_at(lane, &format!("{label}/tensor_active"), end, t.tensor);
            profiler.counter_at(
                lane,
                &format!("{label}/smi_util"),
                end,
                Counters::smi_from_active(t.active, result.models + i),
            );
            // Per-model attribution of the fused kernel's work (hfta-scope):
            // every lane does identical-shape work, so an even split is the
            // exact per-model counter series (paper Figure 8, per model).
            if job.models_per_job > 1 {
                for share in crate::attribution::per_model_shares(k, job.models_per_job) {
                    profiler.counter_at(
                        lane,
                        &format!("{label}/model{}/flops", share.model),
                        end,
                        share.flops as f64,
                    );
                    profiler.counter_at(
                        lane,
                        &format!("{label}/model{}/bytes", share.model),
                        end,
                        share.bytes as f64,
                    );
                }
            }
            cursor = end;
        }
        profiler.incr("sim.kernels", job.kernels.len() as f64);
        profiler.incr("sim.rounds", 1.0);
        profiler.set_gauge(&format!("{label}/throughput_eps"), result.throughput_eps);
        profiler.observe("sim.round_us", result.round_us);
        result
    }

    fn counters_from(&self, s: &StreamSummary, round_us: f64, scale: f64) -> Counters {
        Counters {
            sm_active: (scale * s.active_us / round_us).min(1.0),
            sm_occupancy: (scale * s.occupancy_us / round_us).min(1.0),
            tensor_active: (scale * s.tensor_us / round_us).min(1.0),
            smi_util: 0.0,
        }
    }

    /// Largest `j` (or `B`) that fits in device memory under `policy`,
    /// probing with `job_for(j)` (which should return the fused job for
    /// HFTA). Returns 0 if even one job does not fit.
    pub fn max_jobs(
        &self,
        policy: SharingPolicy,
        limit: usize,
        mut job_for: impl FnMut(usize) -> TrainingJob,
    ) -> usize {
        let mut best = 0;
        for j in 1..=limit {
            if policy == SharingPolicy::Mig && j > self.device.mig_max_instances {
                break;
            }
            let job = job_for(j);
            let (mem, cap) = match policy {
                SharingPolicy::Hfta => (
                    self.memory_gib(self.job_mem_gib(&job), 1),
                    self.device.hbm_gib,
                ),
                SharingPolicy::Mig => (
                    self.memory_gib(self.job_mem_gib(&job), 1),
                    self.device.hbm_gib / self.device.mig_max_instances as f64,
                ),
                _ => (
                    self.memory_gib(self.job_mem_gib(&job), j),
                    self.device.hbm_gib,
                ),
            };
            if mem <= cap {
                best = j;
            } else {
                break;
            }
        }
        best
    }
}

#[derive(Debug, Clone, Copy)]
struct StreamSummary {
    total_us: f64,
    #[allow(dead_code)]
    exec_us: f64,
    active_us: f64,
    occupancy_us: f64,
    tensor_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{GemmDims, JobMemory, Kernel};

    /// A small per-model workload: a few modest GEMMs plus elementwise ops —
    /// the shape of an unoptimized research model.
    fn small_job() -> TrainingJob {
        let gemm = Kernel {
            flops: 200_000_000,
            bytes: 6_000_000,
            tiles: 8,
            gemm: Some(GemmDims {
                m: 1024,
                n: 64,
                k: 512,
                batch: 1,
            }),
            pad_dim: None,
            tc_eligible: true,
        };
        let elt = Kernel::elementwise(500_000);
        TrainingJob {
            name: "small".into(),
            kernels: vec![gemm; 30].into_iter().chain(vec![elt; 30]).collect(),
            host_us: 300.0,
            sync_us_per_kernel: 0.0,
            cpu_gap_fraction: 0.0,
            memory: JobMemory {
                weights_gib: 0.05,
                activations_gib: 0.4,
                workspace_gib: 0.05,
            },
            models_per_job: 1,
            examples_per_iteration: 32,
        }
    }

    /// The HFTA-fused version: kernels carry B models of work.
    fn fused_job(b: usize) -> TrainingJob {
        let base = small_job();
        let kernels = base
            .kernels
            .iter()
            .map(|k| Kernel {
                flops: k.flops * b as u64,
                bytes: k.bytes * b as u64,
                tiles: k.tiles * b as u64,
                gemm: k.gemm.map(|g| GemmDims {
                    n: g.n * b as u64,
                    ..g
                }),
                pad_dim: k.pad_dim.map(|d| d * b as u64),
                tc_eligible: k.tc_eligible,
            })
            .collect();
        TrainingJob {
            kernels,
            memory: JobMemory {
                weights_gib: base.memory.weights_gib * b as f64,
                activations_gib: base.memory.activations_gib * b as f64,
                workspace_gib: base.memory.workspace_gib,
            },
            models_per_job: b,
            ..base
        }
    }

    fn sim() -> GpuSim {
        GpuSim::new(DeviceSpec::v100(), false)
    }

    #[test]
    fn hfta_beats_serial_substantially() {
        let s = sim();
        let serial = s.simulate(SharingPolicy::Serial, &small_job(), 1);
        let hfta = s.simulate(SharingPolicy::Hfta, &fused_job(8), 1);
        let speedup = hfta.throughput_eps / serial.throughput_eps;
        assert!(
            speedup > 3.0 && speedup < 16.0,
            "HFTA speedup {speedup} outside the plausible 3-16x band"
        );
    }

    #[test]
    fn hfta_beats_mps_at_same_model_count() {
        let s = sim();
        let j = 6;
        let mps = s.simulate(SharingPolicy::Mps, &small_job(), j);
        let hfta = s.simulate(SharingPolicy::Hfta, &fused_job(j), 1);
        assert!(
            hfta.throughput_eps > mps.throughput_eps,
            "HFTA {} <= MPS {}",
            hfta.throughput_eps,
            mps.throughput_eps
        );
    }

    #[test]
    fn mps_beats_concurrent_beats_nothing() {
        let s = sim();
        let j = 4;
        let serial = s.simulate(SharingPolicy::Serial, &small_job(), 1);
        let conc = s.simulate(SharingPolicy::Concurrent, &small_job(), j);
        let mps = s.simulate(SharingPolicy::Mps, &small_job(), j);
        // Concurrent aggregates roughly serial throughput (time-multiplexed).
        assert!(conc.throughput_eps <= serial.throughput_eps * 1.05);
        // MPS overlaps and so beats concurrent.
        assert!(mps.throughput_eps > conc.throughput_eps);
    }

    #[test]
    fn hfta_throughput_scales_with_b() {
        let s = sim();
        let t2 = s
            .simulate(SharingPolicy::Hfta, &fused_job(2), 1)
            .throughput_eps;
        let t8 = s
            .simulate(SharingPolicy::Hfta, &fused_job(8), 1)
            .throughput_eps;
        assert!(t8 > 2.0 * t2, "fused scaling too weak: {t2} -> {t8}");
    }

    #[test]
    fn memory_bounds_model_counts() {
        let s = sim();
        let max_mps = s.max_jobs(SharingPolicy::Mps, 64, |_| small_job());
        let max_hfta = s.max_jobs(SharingPolicy::Hfta, 64, fused_job);
        assert!(
            max_mps >= 1 && max_hfta > max_mps,
            "HFTA must fit more models: MPS {max_mps} vs HFTA {max_hfta}"
        );
    }

    #[test]
    fn oom_reported_not_panicked() {
        let s = sim();
        let r = s.simulate(SharingPolicy::Mps, &small_job(), 60);
        assert!(!r.fits);
        assert_eq!(r.throughput_eps, 0.0);
    }

    #[test]
    fn mig_limited_to_seven() {
        let s = GpuSim::new(DeviceSpec::a100(), false);
        let r = s.simulate(SharingPolicy::Mig, &small_job(), 7);
        assert!(r.fits);
    }

    #[test]
    #[should_panic(expected = "at most 7")]
    fn mig_rejects_more_than_seven() {
        let s = GpuSim::new(DeviceSpec::a100(), false);
        let _ = s.simulate(SharingPolicy::Mig, &small_job(), 8);
    }

    #[test]
    #[should_panic(expected = "does not support MIG")]
    fn mig_rejects_v100() {
        let _ = sim().simulate(SharingPolicy::Mig, &small_job(), 2);
    }

    #[test]
    fn amp_helps_hfta_more_than_serial() {
        // Table 10's key claim: AMP over FP32 is ~1.0x for serial but
        // substantial for HFTA (bigger GEMMs engage the tensor cores).
        let b = 8;
        let fp32 = GpuSim::new(DeviceSpec::v100(), false);
        let amp = GpuSim::new(DeviceSpec::v100(), true);
        let serial_gain = amp
            .simulate(SharingPolicy::Serial, &small_job(), 1)
            .throughput_eps
            / fp32
                .simulate(SharingPolicy::Serial, &small_job(), 1)
                .throughput_eps;
        let hfta_gain = amp
            .simulate(SharingPolicy::Hfta, &fused_job(b), 1)
            .throughput_eps
            / fp32
                .simulate(SharingPolicy::Hfta, &fused_job(b), 1)
                .throughput_eps;
        assert!(serial_gain < 1.5, "serial AMP gain {serial_gain} too high");
        assert!(hfta_gain > serial_gain, "HFTA must benefit more from AMP");
    }

    #[test]
    fn counters_scale_for_hfta_and_plateau_for_mps() {
        let s = sim();
        let mps4 = s.simulate(SharingPolicy::Mps, &small_job(), 4).counters;
        let mps8 = s.simulate(SharingPolicy::Mps, &small_job(), 8).counters;
        let hfta4 = s.simulate(SharingPolicy::Hfta, &fused_job(4), 1).counters;
        let hfta8 = s.simulate(SharingPolicy::Hfta, &fused_job(8), 1).counters;
        assert!(hfta8.sm_active > hfta4.sm_active);
        // MPS gains flatten: going 4 -> 8 jobs helps it less than HFTA.
        let mps_gain = mps8.sm_active / mps4.sm_active.max(1e-9);
        let hfta_gain = hfta8.sm_active / hfta4.sm_active.max(1e-9);
        assert!(hfta_gain >= mps_gain * 0.95);
        assert!(hfta8.sm_active > mps8.sm_active);
    }

    #[test]
    fn concurrent_counters_match_serial() {
        // Figure 8 observation (3): concurrent's utilization equals serial.
        let s = sim();
        let serial = s.simulate(SharingPolicy::Serial, &small_job(), 1).counters;
        let conc = s
            .simulate(SharingPolicy::Concurrent, &small_job(), 4)
            .counters;
        assert!((serial.sm_active - conc.sm_active).abs() < 0.1);
    }

    #[test]
    fn traced_simulation_matches_untraced_and_emits_timeline() {
        let s = sim();
        let p = Profiler::new("sim-test");
        let plain = s.simulate(SharingPolicy::Hfta, &fused_job(4), 1);
        let traced = s.simulate_traced(SharingPolicy::Hfta, &fused_job(4), 1, &p, "hfta4");
        assert_eq!(plain, traced);
        // 2 events (B/E) + 4 device counters + 2*B per-model counters
        // per kernel.
        assert_eq!(p.event_count(), (6 + 2 * 4) * fused_job(4).kernels.len());
        let report = p.report();
        let exp = &report.experiments[0];
        assert!(
            exp.series("hfta4/smi_util").is_some(),
            "Fig 11 series missing"
        );
        assert!(exp.series("hfta4/sm_active").is_some());
        assert_eq!(
            exp.counters
                .iter()
                .find(|c| c.name == "sim.kernels")
                .unwrap()
                .value,
            fused_job(4).kernels.len() as f64
        );
    }

    #[test]
    fn traced_hfta_attributes_flops_per_model() {
        let s = sim();
        let p = Profiler::new("attr-test");
        let job = fused_job(4);
        s.simulate_traced(SharingPolicy::Hfta, &job, 1, &p, "hfta4");
        let report = p.report();
        let exp = &report.experiments[0];
        // One flops + one bytes series per lane, one point per kernel, and
        // the lanes sum back to the fused job's totals at every sample.
        let mut flops_sum = 0u64;
        for m in 0..4 {
            let f = exp
                .series(&format!("hfta4/model{m}/flops"))
                .unwrap_or_else(|| panic!("missing per-model flops series for lane {m}"));
            assert_eq!(f.points.len(), job.kernels.len());
            assert!(exp.series(&format!("hfta4/model{m}/bytes")).is_some());
            flops_sum += f.points.iter().map(|pt| pt.value as u64).sum::<u64>();
        }
        assert_eq!(flops_sum, job.total_flops());
        assert!(exp.series("hfta4/model4/flops").is_none());

        // Serial jobs (models_per_job == 1) get no per-model series.
        let p1 = Profiler::new("attr-serial");
        s.simulate_traced(SharingPolicy::Serial, &small_job(), 1, &p1, "serial");
        let r1 = p1.report();
        assert!(r1.experiments[0].series("serial/model0/flops").is_none());
    }

    #[test]
    fn round_trip_throughput_consistency() {
        let s = sim();
        let r = s.simulate(SharingPolicy::Serial, &small_job(), 1);
        let expect = 32.0 / (r.round_us * 1e-6);
        assert!((r.throughput_eps - expect).abs() < 1e-6);
    }
}
