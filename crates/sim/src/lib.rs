//! # hfta-sim
//!
//! Shape-level accelerator simulator substituting for the V100 / RTX6000 /
//! A100 GPUs and TPU v3 cores of the HFTA paper's evaluation (the
//! reproduction has no accelerator hardware; see DESIGN.md §4 for the
//! substitution argument).
//!
//! The cost model encodes the paper's three causal mechanisms —
//! occupancy-limited rooflines, duplicated per-kernel/per-process overheads
//! under MPS/MIG/concurrent sharing, and per-process framework memory —
//! and exposes the same observables the paper reports: training
//! throughput, max co-located models, memory footprints and DCGM counters.
//!
//! # Example
//!
//! ```
//! use hfta_sim::{
//!     device::DeviceSpec,
//!     gpu::{GpuSim, SharingPolicy},
//!     kernel::{JobMemory, Kernel, TrainingJob},
//! };
//!
//! let job = TrainingJob {
//!     name: "toy".into(),
//!     kernels: vec![Kernel::elementwise(1 << 20); 10],
//!     host_us: 50.0,
//!     sync_us_per_kernel: 0.0,
//!     cpu_gap_fraction: 0.0,
//!     memory: JobMemory { weights_gib: 0.01, activations_gib: 0.1, workspace_gib: 0.0 },
//!     models_per_job: 1,
//!     examples_per_iteration: 32,
//! };
//! let sim = GpuSim::new(DeviceSpec::v100(), false);
//! let result = sim.simulate(SharingPolicy::Serial, &job, 1);
//! assert!(result.fits && result.throughput_eps > 0.0);
//! ```

#![warn(missing_docs)]

pub mod attribution;
pub mod counters;
pub mod device;
pub mod fleet;
pub mod gpu;
pub mod kernel;
pub mod tpu;

pub use attribution::{job_lane_totals, per_model_shares, LaneShare};
pub use counters::Counters;
pub use device::{DeviceKind, DeviceSpec};
pub use fleet::{fuse_job, DeviceFleet, MemoryModel, WidthMode};
pub use gpu::{GpuSim, SharingPolicy, SimResult};
pub use kernel::{GemmDims, JobMemory, Kernel, TrainingJob};
pub use tpu::{TpuSim, TpuSimResult};
