//! TPU v3 execution model (paper §5.2).
//!
//! TPUs have no process-level sharing (no MPS/MIG equivalents), so the
//! comparison is `serial` vs `HFTA` only. Two XLA behaviours drive the
//! paper's TPU results and are modeled explicitly:
//!
//! * **Systolic padding** — the 128x128 MXU pads small GEMM dimensions;
//!   serial models with narrow layers (e.g. DCGAN's 3-channel and
//!   1-channel heads) waste most of the array, which is why the paper sees
//!   "super-linear" HFTA speedups (fusion widens exactly the padded axis).
//! * **Vector-unit fallback** — non-GEMM operators run on the scalar /
//!   vector units at a tiny fraction of MXU throughput, and their cost
//!   scales linearly with the fusion width; workloads dominated by them
//!   (PointNet segmentation) gain little (the paper's 1.20x).

use hfta_telemetry::Profiler;
use serde::{Deserialize, Serialize, Value};

use crate::device::{DeviceKind, DeviceSpec};
use crate::kernel::{Kernel, TrainingJob};

/// Sustained fraction of peak for well-shaped MXU work.
const MXU_EFFICIENCY: f64 = 0.5;
/// Sustained fraction of peak for vector-unit work.
const VECTOR_EFFICIENCY: f64 = 0.5;
/// PyTorch/XLA lazy-tensor tracing multiplier: the paper's TPU runs use
/// PyTorch/XLA, which re-traces the python graph every step, so each
/// operator costs host time per iteration. We reuse the workload's
/// per-kernel framework gap scaled by this factor (tracing + transfer is
/// costlier than CUDA eager dispatch). The host trace runs concurrently
/// with device execution (async step), hence `max()` below — and it is
/// what HFTA amortizes over B models.
const XLA_TRACE_FACTOR: f64 = 2.0;

/// Outcome of simulating one TPU configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpuSimResult {
    /// Whether the configuration fits in HBM.
    pub fits: bool,
    /// Total models trained on the core.
    pub models: usize,
    /// Aggregate throughput, examples/second.
    pub throughput_eps: f64,
    /// Wall time of one iteration round, µs.
    pub round_us: f64,
    /// HBM in use, GiB.
    pub memory_gib: f64,
}

/// TPU core simulator.
#[derive(Debug, Clone)]
pub struct TpuSim {
    device: DeviceSpec,
}

impl TpuSim {
    /// Creates a TPU simulator.
    ///
    /// # Panics
    ///
    /// Panics if `device` is not a TPU.
    pub fn new(device: DeviceSpec) -> Self {
        assert_eq!(device.kind, DeviceKind::Tpu, "TpuSim requires a TPU spec");
        TpuSim { device }
    }

    /// The device being simulated.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Simulates one job (serial: per-model trace, `models_per_job = 1`;
    /// HFTA: fused trace, `models_per_job = B`).
    pub fn simulate(&self, job: &TrainingJob) -> TpuSimResult {
        let dev = &self.device;
        let memory_gib = dev.framework_overhead_gib(false) + job.memory.total_gib();
        if memory_gib > dev.hbm_gib {
            return TpuSimResult {
                fits: false,
                models: job.models_per_job,
                throughput_eps: 0.0,
                round_us: f64::INFINITY,
                memory_gib,
            };
        }
        let mut total_us = 0.0;
        for k in &job.kernels {
            total_us += self.kernel_us(k) + dev.kernel_launch_us;
        }
        let host_trace_us =
            job.kernels.len() as f64 * job.sync_us_per_kernel * XLA_TRACE_FACTOR + job.host_us;
        let round_us = total_us.max(host_trace_us);
        let models = job.models_per_job;
        TpuSimResult {
            fits: true,
            models,
            throughput_eps: (models * job.examples_per_iteration) as f64 / (round_us * 1e-6),
            round_us,
            memory_gib,
        }
    }

    /// Device time of one kernel, µs (excluding launch overhead).
    ///
    /// XLA lays out narrow channel axes padded to 128; both memory traffic
    /// and vector-unit work pay for the padding, and extremely narrow axes
    /// trigger an additional pathology (the paper's weak-serial-baseline
    /// observation, §5.2).
    fn kernel_us(&self, k: &Kernel) -> f64 {
        let dev = &self.device;
        let pad = k.xla_pad_factor();
        let t = match k.gemm {
            Some(g) => {
                let eff = g.systolic_efficiency().max(1e-3) * MXU_EFFICIENCY;
                let mxu_us = k.flops as f64 / (dev.tensor_tflops * 1e12 * eff) * 1e6;
                let mem_us = k.bytes as f64 * pad / (dev.hbm_bw_gibs * 1024f64.powi(3)) * 1e6;
                mxu_us.max(mem_us)
            }
            None => {
                let vec_us =
                    k.flops as f64 * pad / (dev.fp32_tflops * 1e12 * VECTOR_EFFICIENCY) * 1e6;
                let mem_us = k.bytes as f64 * pad / (dev.hbm_bw_gibs * 1024f64.powi(3)) * 1e6;
                vec_us.max(mem_us)
            }
        };
        t * k.xla_pathology_factor()
    }

    /// Like [`TpuSim::simulate`], but also renders the simulated kernel
    /// stream onto a trace lane (`process = device name`,
    /// `thread = label`) and samples MXU occupancy as a time-series named
    /// `<label>/mxu_busy`.
    pub fn simulate_traced(
        &self,
        job: &TrainingJob,
        profiler: &Profiler,
        label: &str,
    ) -> TpuSimResult {
        let result = self.simulate(job);
        if !result.fits {
            return result;
        }
        let lane = profiler.lane(&self.device.name, label);
        let mut cursor = 0.0f64;
        for k in &job.kernels {
            let start = cursor + self.device.kernel_launch_us;
            let end = start + self.kernel_us(k);
            let name = match k.gemm {
                Some(g) => format!("mxu {}x{}x{}", g.m, g.n, g.k),
                None => "vector".to_string(),
            };
            profiler.begin_at(
                lane,
                name.clone(),
                start,
                vec![
                    ("flops".to_string(), Value::U64(k.flops)),
                    ("bytes".to_string(), Value::U64(k.bytes)),
                    ("pad_factor".to_string(), Value::F64(k.xla_pad_factor())),
                ],
            );
            profiler.end_at(lane, name, end);
            let busy = match k.gemm {
                Some(g) => g.systolic_efficiency(),
                None => 0.0,
            };
            profiler.counter_at(lane, &format!("{label}/mxu_busy"), end, busy);
            if job.models_per_job > 1 {
                for share in crate::attribution::per_model_shares(k, job.models_per_job) {
                    profiler.counter_at(
                        lane,
                        &format!("{label}/model{}/flops", share.model),
                        end,
                        share.flops as f64,
                    );
                    profiler.counter_at(
                        lane,
                        &format!("{label}/model{}/bytes", share.model),
                        end,
                        share.bytes as f64,
                    );
                }
            }
            cursor = end;
        }
        profiler.incr("sim.kernels", job.kernels.len() as f64);
        profiler.set_gauge(&format!("{label}/throughput_eps"), result.throughput_eps);
        result
    }

    /// Largest fusion width that fits in HBM, probing with `job_for(b)`.
    pub fn max_models(&self, limit: usize, mut job_for: impl FnMut(usize) -> TrainingJob) -> usize {
        let mut best = 0;
        for b in 1..=limit {
            if self.simulate(&job_for(b)).fits {
                best = b;
            } else {
                break;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{GemmDims, JobMemory, Kernel};

    /// A DCGAN-like job: GEMMs with a badly padded (narrow) dimension and
    /// elementwise ops over the padded layout.
    fn narrow_job(b: u64) -> TrainingJob {
        let gemm = Kernel {
            flops: 500_000_000 * b,
            bytes: 8_000_000 * b,
            tiles: 16 * b,
            gemm: Some(GemmDims {
                m: 4096,
                n: 3 * b, // fusion widens the padded axis
                k: 512,
                batch: 1,
            }),
            pad_dim: Some(3 * b),
            tc_eligible: true,
        };
        let elt = Kernel {
            pad_dim: Some(3 * b),
            ..Kernel::elementwise(2_000_000 * b)
        };
        TrainingJob {
            name: "narrow".into(),
            kernels: vec![gemm; 20].into_iter().chain(vec![elt; 20]).collect(),
            host_us: 100.0,
            sync_us_per_kernel: 0.0,
            cpu_gap_fraction: 0.0,
            memory: JobMemory {
                weights_gib: 0.02 * b as f64,
                activations_gib: 0.2 * b as f64,
                workspace_gib: 0.05,
            },
            models_per_job: b as usize,
            examples_per_iteration: 64,
        }
    }

    /// A segmentation-like job dominated by vector-unit (non-GEMM) work.
    fn vector_job(b: u64) -> TrainingJob {
        let elt = Kernel::elementwise(20_000_000 * b);
        let gemm = Kernel {
            flops: 100_000_000 * b,
            bytes: 2_000_000 * b,
            tiles: 8 * b,
            gemm: Some(GemmDims {
                m: 2048,
                n: 128 * b,
                k: 64,
                batch: 1,
            }),
            pad_dim: None,
            tc_eligible: true,
        };
        TrainingJob {
            name: "vector".into(),
            kernels: vec![elt; 40].into_iter().chain(vec![gemm; 5]).collect(),
            host_us: 100.0,
            sync_us_per_kernel: 0.0,
            cpu_gap_fraction: 0.0,
            memory: JobMemory {
                weights_gib: 0.01 * b as f64,
                activations_gib: 0.15 * b as f64,
                workspace_gib: 0.05,
            },
            models_per_job: b as usize,
            examples_per_iteration: 32,
        }
    }

    fn sim() -> TpuSim {
        TpuSim::new(DeviceSpec::tpu_v3())
    }

    #[test]
    fn superlinear_speedup_on_padded_workloads() {
        // The Figure 6 DCGAN phenomenon: fusing widens the padded GEMM
        // axis, so B models cost less than B times one model.
        let s = sim();
        let serial = s.simulate(&narrow_job(1));
        let fused = s.simulate(&narrow_job(16));
        let speedup = fused.throughput_eps / serial.throughput_eps;
        assert!(speedup > 16.0, "expected super-linear, got {speedup}");
    }

    #[test]
    fn vector_bound_workloads_gain_little() {
        // The PointNet-seg phenomenon: non-GEMM work scales linearly.
        let s = sim();
        let serial = s.simulate(&vector_job(1));
        let fused = s.simulate(&vector_job(8));
        let speedup = fused.throughput_eps / serial.throughput_eps / 8.0;
        assert!(
            speedup < 1.6,
            "per-model speedup {speedup} should be modest for vector-bound jobs"
        );
    }

    #[test]
    fn memory_bounds_fusion_width() {
        let s = sim();
        let max = s.max_models(256, |b| narrow_job(b as u64));
        assert!(max > 4 && max < 256, "max {max}");
        assert!(!s.simulate(&narrow_job(max as u64 + 2)).fits);
    }

    #[test]
    #[should_panic(expected = "requires a TPU")]
    fn rejects_gpu_spec() {
        let _ = TpuSim::new(DeviceSpec::v100());
    }

    #[test]
    fn traced_simulation_matches_untraced() {
        let s = sim();
        let p = Profiler::new("tpu-test");
        let plain = s.simulate(&narrow_job(4));
        let traced = s.simulate_traced(&narrow_job(4), &p, "hfta4");
        assert_eq!(plain, traced);
        assert!(p.event_count() > 0);
        let report = p.report();
        assert!(report.experiments[0].series("hfta4/mxu_busy").is_some());
    }

    #[test]
    fn throughput_definition() {
        let s = sim();
        let r = s.simulate(&narrow_job(2));
        let expect = (2 * 64) as f64 / (r.round_us * 1e-6);
        assert!((r.throughput_eps - expect).abs() < 1e-6);
    }
}
