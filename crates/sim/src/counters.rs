//! DCGM-style hardware performance counters (paper Table 7, §4 metrics).

use serde::{Deserialize, Serialize};

/// DCGM field identifiers used by the paper (Table 7).
pub mod dcgm {
    /// `DCGM_FI_PROF_SM_ACTIVE` — SM temporal utilization.
    pub const SM_ACTIVE: u32 = 1002;
    /// `DCGM_FI_PROF_SM_OCCUPANCY` — SM spatial utilization.
    pub const SM_OCCUPANCY: u32 = 1003;
    /// `DCGM_FI_PROF_PIPE_TENSOR_ACTIVE` — tensor-core pipe utilization.
    pub const PIPE_TENSOR_ACTIVE: u32 = 1004;
    /// `DCGM_FI_DEV_GPU_UTIL` — the coarse nvidia-smi "GPU utilization".
    pub const GPU_UTIL: u32 = 203;

    /// `(name, macro, id)` rows of Table 7.
    pub fn table7() -> [(&'static str, &'static str, u32); 4] {
        [
            ("sm_active", "DCGM_FI_PROF_SM_ACTIVE", SM_ACTIVE),
            ("sm_occupancy", "DCGM_FI_PROF_SM_OCCUPANCY", SM_OCCUPANCY),
            (
                "tensor_active",
                "DCGM_FI_PROF_PIPE_TENSOR_ACTIVE",
                PIPE_TENSOR_ACTIVE,
            ),
            ("GPU Utilization", "DCGM_FI_DEV_GPU_UTIL", GPU_UTIL),
        ]
    }
}

/// Steady-state counter values over one simulated round (all 0..=1).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Counters {
    /// Fraction of time at least one warp is resident on an SM
    /// (temporal utilization).
    pub sm_active: f64,
    /// Average fraction of resident-warp slots in use (spatial
    /// utilization).
    pub sm_occupancy: f64,
    /// Fraction of time the tensor-core pipes are busy.
    pub tensor_active: f64,
    /// The nvidia-smi "GPU utilization" — a coarse, noisy signal the paper
    /// shows is a weak indicator (Figure 11).
    pub smi_util: f64,
}

impl Counters {
    /// All-zero counters (idle device / OOM configurations).
    pub fn idle() -> Self {
        Counters::default()
    }

    /// Models nvidia-smi's "GPU utilization": it reports the fraction of
    /// sample intervals in which *any* kernel was resident, so it saturates
    /// far below real utilization and jitters with sampling alignment.
    /// The jitter here is a deterministic hash of the configuration so
    /// figures are reproducible.
    pub fn smi_from_active(sm_active: f64, config_seed: usize) -> f64 {
        // Any activity at all pushes smi high.
        let base = (sm_active * 3.0).clamp(0.0, 0.95);
        // Deterministic "sampling noise" in [-0.15, 0.15].
        let mut h = config_seed as u64 ^ 0x9E37_79B9_7F4A_7C15;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        let noise = ((h % 1000) as f64 / 1000.0 - 0.5) * 0.3;
        (base + noise).clamp(0.05, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_ids_match_paper() {
        let t = dcgm::table7();
        assert_eq!(t[0].2, 1002);
        assert_eq!(t[1].2, 1003);
        assert_eq!(t[2].2, 1004);
        assert_eq!(t[3].2, 203);
    }

    #[test]
    fn smi_is_noisy_but_bounded() {
        for seed in 0..50 {
            let v = Counters::smi_from_active(0.2, seed);
            assert!((0.05..=1.0).contains(&v));
        }
        // Deterministic per seed.
        assert_eq!(
            Counters::smi_from_active(0.3, 7),
            Counters::smi_from_active(0.3, 7)
        );
    }

    #[test]
    fn smi_saturates_and_decouples_from_true_utilization() {
        // Doubling true utilization barely moves smi once saturated —
        // the Figure 11 "weak indicator" property.
        let low = Counters::smi_from_active(0.35, 1);
        let high = Counters::smi_from_active(0.7, 1);
        assert!((high - low).abs() < 0.35);
    }

    #[test]
    fn idle_counters_zero() {
        let c = Counters::idle();
        assert_eq!(c.sm_active, 0.0);
        assert_eq!(c.tensor_active, 0.0);
    }
}
