//! Accelerator device models: the V100, RTX6000 and A100 GPUs and the
//! TPU v3 core used in the paper's evaluation (Tables 2–4).
//!
//! These are calibrated *cost-model* descriptions, not cycle-accurate
//! models. Peak numbers come from vendor datasheets; the overhead
//! constants (kernel launch, GEMM setup, framework memory reservation)
//! come from the sources the paper itself cites: ~5–10 µs launch latency
//! (Lustig & Martonosi), GEMM setup/teardown (NVIDIA GEMM guide), and the
//! 1.52 GB FP32 / 2.12 GB AMP framework reservation that the paper's
//! Figure 7 regression measures directly.

use serde::{Deserialize, Serialize};

/// Whether the device is a GPU (SIMT, kernel launches) or a TPU core
/// (systolic MXUs driven by an XLA program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// CUDA-style GPU.
    Gpu,
    /// Cloud TPU core.
    Tpu,
}

/// A device cost-model specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"V100"`.
    pub name: String,
    /// GPU or TPU.
    pub kind: DeviceKind,
    /// Streaming multiprocessors (GPU) or MXUs (TPU).
    pub sm_count: usize,
    /// Concurrently resident thread blocks per SM at full occupancy.
    pub max_blocks_per_sm: usize,
    /// Peak FP32 (CUDA-core / vector-unit) throughput in TFLOP/s.
    pub fp32_tflops: f64,
    /// Peak tensor-core (FP16/TF32) or MXU throughput in TFLOP/s.
    /// Zero when the device has no matrix units usable for training.
    pub tensor_tflops: f64,
    /// Device memory capacity in GiB.
    pub hbm_gib: f64,
    /// Device memory bandwidth in GiB/s.
    pub hbm_bw_gibs: f64,
    /// Per-kernel launch latency in microseconds (CPU→GPU dispatch).
    pub kernel_launch_us: f64,
    /// Per-GEMM setup/teardown overhead in microseconds.
    pub gemm_setup_us: f64,
    /// Framework + context memory reserved per *process*, FP32 path (GiB).
    pub framework_overhead_fp32_gib: f64,
    /// Framework + context memory reserved per process, AMP path (GiB).
    pub framework_overhead_amp_gib: f64,
    /// Maximum MIG instances (0 = MIG unsupported).
    pub mig_max_instances: usize,
    /// Fraction of per-kernel framework/driver gap time that serializes
    /// across processes under MPS/MIG (1.0 = fully serialized). Ampere's
    /// scheduling overlaps inter-process gaps substantially better than
    /// Volta/Turing — calibrated so MPS reaches ~1.1x serial on V100 but
    /// ~2.4x on A100, as the paper measures (Tables 5/8).
    pub mps_gap_serial_fraction: f64,
    /// Release year (for the Tables 2–3 printer).
    pub year: u32,
}

impl DeviceSpec {
    /// NVIDIA V100 (Volta, 2018): 80 SMs, FP16 tensor cores, 16 GiB HBM2.
    pub fn v100() -> Self {
        DeviceSpec {
            name: "V100".into(),
            kind: DeviceKind::Gpu,
            sm_count: 80,
            max_blocks_per_sm: 4,
            fp32_tflops: 15.7,
            tensor_tflops: 125.0,
            hbm_gib: 16.0,
            hbm_bw_gibs: 900.0,
            kernel_launch_us: 8.0,
            gemm_setup_us: 4.0,
            framework_overhead_fp32_gib: 1.52,
            framework_overhead_amp_gib: 2.12,
            mig_max_instances: 0,
            mps_gap_serial_fraction: 1.0,
            year: 2018,
        }
    }

    /// NVIDIA Quadro RTX6000 (Turing): 72 SMs, 24 GiB GDDR6.
    pub fn rtx6000() -> Self {
        DeviceSpec {
            name: "RTX6000".into(),
            kind: DeviceKind::Gpu,
            sm_count: 72,
            max_blocks_per_sm: 4,
            fp32_tflops: 16.3,
            tensor_tflops: 130.5,
            hbm_gib: 24.0,
            hbm_bw_gibs: 672.0,
            kernel_launch_us: 8.0,
            gemm_setup_us: 4.0,
            framework_overhead_fp32_gib: 1.52,
            framework_overhead_amp_gib: 2.12,
            mig_max_instances: 0,
            mps_gap_serial_fraction: 1.0,
            year: 2018,
        }
    }

    /// NVIDIA A100 (Ampere, 2020): 108 SMs, TF32+FP16 tensor cores,
    /// 40 GiB HBM2e, MIG up to 7 instances.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100".into(),
            kind: DeviceKind::Gpu,
            sm_count: 108,
            max_blocks_per_sm: 4,
            fp32_tflops: 19.5,
            tensor_tflops: 312.0,
            hbm_gib: 40.0,
            hbm_bw_gibs: 1555.0,
            kernel_launch_us: 8.0,
            gemm_setup_us: 4.0,
            framework_overhead_fp32_gib: 1.52,
            framework_overhead_amp_gib: 2.12,
            mig_max_instances: 7,
            mps_gap_serial_fraction: 0.5,
            year: 2020,
        }
    }

    /// Google Cloud TPU v3 core (2018): 2 MXUs, 16 GiB HBM. The
    /// "launch" overhead models XLA dispatch, which is far cheaper than a
    /// CUDA launch but still per-op.
    pub fn tpu_v3() -> Self {
        DeviceSpec {
            name: "TPUv3".into(),
            kind: DeviceKind::Tpu,
            sm_count: 2, // MXUs
            max_blocks_per_sm: 1,
            fp32_tflops: 2.0, // scalar/vector units
            tensor_tflops: 61.5,
            hbm_gib: 16.0,
            hbm_bw_gibs: 450.0,
            kernel_launch_us: 2.0,
            gemm_setup_us: 1.0,
            framework_overhead_fp32_gib: 0.6,
            framework_overhead_amp_gib: 0.6,
            mig_max_instances: 0,
            mps_gap_serial_fraction: 1.0,
            year: 2018,
        }
    }

    /// The three evaluation GPUs, in paper order.
    pub fn evaluation_gpus() -> Vec<DeviceSpec> {
        vec![Self::v100(), Self::rtx6000(), Self::a100()]
    }

    /// Whether the device supports MIG partitioning.
    pub fn supports_mig(&self) -> bool {
        self.mig_max_instances > 0
    }

    /// Framework memory reservation per process for a precision mode.
    pub fn framework_overhead_gib(&self, amp: bool) -> f64 {
        if amp {
            self.framework_overhead_amp_gib
        } else {
            self.framework_overhead_fp32_gib
        }
    }

    /// Thread-block slots at full occupancy (`SMs * blocks/SM`).
    pub fn block_slots(&self) -> u64 {
        (self.sm_count * self.max_blocks_per_sm) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table3() {
        let v100 = DeviceSpec::v100();
        assert_eq!(v100.sm_count, 80);
        assert_eq!(v100.hbm_gib, 16.0);
        let a100 = DeviceSpec::a100();
        assert_eq!(a100.sm_count, 108);
        assert_eq!(a100.hbm_gib, 40.0);
        assert!(a100.supports_mig());
        assert!(!v100.supports_mig());
    }

    #[test]
    fn newer_gpus_have_more_compute() {
        // The paper's Table 3 trend: capability grows by generation, which
        // is what makes under-utilization worse.
        let v100 = DeviceSpec::v100();
        let a100 = DeviceSpec::a100();
        assert!(a100.fp32_tflops > v100.fp32_tflops);
        assert!(a100.tensor_tflops > v100.tensor_tflops);
        assert!(a100.hbm_bw_gibs > v100.hbm_bw_gibs);
        assert!(a100.block_slots() > v100.block_slots());
    }

    #[test]
    fn framework_overhead_matches_figure7_intercepts() {
        let v100 = DeviceSpec::v100();
        assert_eq!(v100.framework_overhead_gib(false), 1.52);
        assert_eq!(v100.framework_overhead_gib(true), 2.12);
    }

    #[test]
    fn serde_round_trip() {
        let spec = DeviceSpec::a100();
        let json = serde_json::to_string(&spec).unwrap();
        let back: DeviceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn tpu_has_no_gpu_sharing() {
        let tpu = DeviceSpec::tpu_v3();
        assert_eq!(tpu.kind, DeviceKind::Tpu);
        assert!(!tpu.supports_mig());
    }
}
