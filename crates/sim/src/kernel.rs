//! Kernel and training-job descriptions consumed by the simulator.
//!
//! A [`Kernel`] is a shape-level record of one accelerator kernel: how much
//! arithmetic and memory traffic it performs, how many independent tiles
//! (thread blocks) it decomposes into, and — if it is a GEMM — its matrix
//! dimensions (used for tensor-core eligibility on GPUs and systolic-array
//! padding efficiency on TPUs).

use serde::{Deserialize, Serialize};

/// Matrix dimensions of a GEMM-backed kernel (`batch` independent
/// `[m, k] x [k, n]` products).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmDims {
    /// Rows of the output.
    pub m: u64,
    /// Columns of the output.
    pub n: u64,
    /// Contraction dimension.
    pub k: u64,
    /// Number of independent GEMMs in the batch.
    pub batch: u64,
}

impl GemmDims {
    /// Fraction of a 128x128-tiled systolic array doing useful work for
    /// this GEMM — the XLA padding efficiency the paper blames for weak
    /// serial TPU baselines (§5.2).
    pub fn systolic_efficiency(&self) -> f64 {
        fn axis_eff(d: u64) -> f64 {
            let padded = d.div_ceil(128) * 128;
            d as f64 / padded as f64
        }
        axis_eff(self.m) * axis_eff(self.n)
    }
}

/// One accelerator kernel at shape level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes moved to/from device memory (fp32 accounting).
    pub bytes: u64,
    /// Independent thread blocks / tiles the kernel decomposes into.
    pub tiles: u64,
    /// GEMM dimensions when the kernel is matrix-multiply backed.
    pub gemm: Option<GemmDims>,
    /// The channel-like axis size XLA lays out padded-to-128 on TPUs
    /// (`None` when the op has no narrow padded axis). Drives the
    /// serial-baseline padding waste of paper §5.2; GPUs ignore it.
    pub pad_dim: Option<u64>,
    /// Whether AMP can route this GEMM to the tensor cores. cuDNN of the
    /// paper's era lacked TC kernels for several (de)convolution cases —
    /// the source of the paper's A100 DCGAN AMP anomaly (§5.1) and of
    /// DCGAN's near-1.0x AMP gains (Table 10) — so the lowering marks
    /// transposed convolutions ineligible.
    pub tc_eligible: bool,
}

impl Kernel {
    /// An elementwise (non-GEMM) kernel over `elems` elements.
    pub fn elementwise(elems: u64) -> Self {
        Kernel {
            flops: elems,
            bytes: 8 * elems,
            tiles: elems.div_ceil(16 * 1024),
            gemm: None,
            pad_dim: None,
            tc_eligible: false,
        }
    }

    /// Whether the kernel is GEMM-backed (tensor-core / MXU eligible).
    pub fn is_gemm(&self) -> bool {
        self.gemm.is_some()
    }

    /// XLA layout-padding waste multiplier for this kernel's tensors:
    /// `ceil(pad_dim / 128) * 128 / pad_dim` (1.0 when no padded axis).
    pub fn xla_pad_factor(&self) -> f64 {
        match self.pad_dim {
            Some(d) if d > 0 => (d.div_ceil(128) * 128) as f64 / d as f64,
            _ => 1.0,
        }
    }

    /// Extra slowdown XLA exhibits on kernels with *extremely* narrow
    /// padded axes (e.g. DCGAN's 3- and 1-channel heads). Pure pad-to-128
    /// accounting makes padded traffic independent of the axis width, which
    /// would bound HFTA's TPU speedup at exactly `B`; the paper's §5.2
    /// "super-linear" observation implies the serial baseline is worse than
    /// padding alone explains ("the tensor padding added in the serial
    /// baseline by the XLA compiler, making this baseline weaker than it
    /// should be otherwise"). We model that pathology as a square-root
    /// penalty once padding waste exceeds 8x.
    pub fn xla_pathology_factor(&self) -> f64 {
        (self.xla_pad_factor() / 8.0).max(1.0).sqrt()
    }
}

/// Device memory footprint of one training job (per model; GiB).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct JobMemory {
    /// Model weights + gradients + optimizer state.
    pub weights_gib: f64,
    /// Activations kept for the backward pass.
    pub activations_gib: f64,
    /// Scratch workspace (cuDNN algorithms, im2col buffers, ...).
    pub workspace_gib: f64,
}

impl JobMemory {
    /// Total per-model footprint, excluding the per-process framework
    /// reservation (which belongs to the sharing policy, not the model).
    pub fn total_gib(&self) -> f64 {
        self.weights_gib + self.activations_gib + self.workspace_gib
    }
}

/// A training job as the simulator sees it: the kernel stream of one
/// iteration plus host-side work and memory footprint.
///
/// For an HFTA array, construct the job from the *fused* operator trace
/// (each kernel already carries `B` models' work) and set
/// [`TrainingJob::models_per_job`] to `B`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingJob {
    /// Human-readable workload name.
    pub name: String,
    /// Kernels of one training iteration (forward + backward + optimizer).
    pub kernels: Vec<Kernel>,
    /// Host-side time per iteration (data loading, preprocessing), µs.
    pub host_us: f64,
    /// Per-kernel framework/driver critical-section time, µs — the
    /// eager-mode dispatch, synchronization and bookkeeping gap between
    /// kernels of *unoptimized research training loops*, calibrated
    /// against the paper's measured serial `sm_active` of ~0.1–0.2
    /// (Figures 8/12 and Appendix A). It serializes across processes
    /// sharing a GPU (driver critical path), which is why MPS/MIG cannot
    /// remove it, while HFTA pays it once per *fused* kernel.
    pub sync_us_per_kernel: f64,
    /// Fraction of the per-kernel gap that is *per-process CPU* work
    /// (Python, data transforms) rather than driver critical section.
    /// CPU-side gaps overlap across processes (up to the host cores), so
    /// `concurrent`/`MPS` can hide them — the paper's DCGAN baselines beat
    /// serial ~2.3x this way — while driver-side gaps serialize.
    pub cpu_gap_fraction: f64,
    /// Per-model device memory footprint.
    pub memory: JobMemory,
    /// Number of models this job trains simultaneously (1 for the serial
    /// baselines, `B` for HFTA).
    pub models_per_job: usize,
    /// Training examples processed per model per iteration.
    pub examples_per_iteration: usize,
}

impl TrainingJob {
    /// Total FLOPs of one iteration.
    pub fn total_flops(&self) -> u64 {
        self.kernels.iter().map(|k| k.flops).sum()
    }

    /// Total bytes of one iteration.
    pub fn total_bytes(&self) -> u64 {
        self.kernels.iter().map(|k| k.bytes).sum()
    }

    /// Number of kernel launches per iteration.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systolic_efficiency_penalizes_small_dims() {
        let tiny = GemmDims {
            m: 4096,
            n: 3,
            k: 512,
            batch: 1,
        };
        let wide = GemmDims {
            m: 4096,
            n: 96,
            k: 512,
            batch: 1,
        };
        assert!(tiny.systolic_efficiency() < 0.03);
        assert!(wide.systolic_efficiency() > 0.7);
        // Exact multiples of 128 waste nothing.
        let aligned = GemmDims {
            m: 256,
            n: 128,
            k: 64,
            batch: 1,
        };
        assert_eq!(aligned.systolic_efficiency(), 1.0);
    }

    #[test]
    fn widening_n_improves_efficiency_monotonically_to_alignment() {
        let eff = |n| {
            GemmDims {
                m: 1024,
                n,
                k: 64,
                batch: 1,
            }
            .systolic_efficiency()
        };
        assert!(eff(3) < eff(6));
        assert!(eff(6) < eff(48));
        assert!(eff(48) < eff(128));
    }

    #[test]
    fn elementwise_kernel_tiles() {
        let k = Kernel::elementwise(1024 * 1024);
        assert_eq!(k.tiles, 64);
        assert!(!k.is_gemm());
        assert_eq!(k.xla_pad_factor(), 1.0);
    }

    #[test]
    fn pad_factor_penalizes_narrow_channels() {
        let k = Kernel {
            pad_dim: Some(3),
            ..Kernel::elementwise(100)
        };
        assert!((k.xla_pad_factor() - 128.0 / 3.0).abs() < 1e-9);
        let aligned = Kernel {
            pad_dim: Some(256),
            ..Kernel::elementwise(100)
        };
        assert_eq!(aligned.xla_pad_factor(), 1.0);
    }

    #[test]
    fn job_totals() {
        let job = TrainingJob {
            name: "t".into(),
            kernels: vec![Kernel::elementwise(100), Kernel::elementwise(200)],
            host_us: 10.0,
            sync_us_per_kernel: 0.0,
            cpu_gap_fraction: 0.0,
            memory: JobMemory::default(),
            models_per_job: 1,
            examples_per_iteration: 32,
        };
        assert_eq!(job.total_flops(), 300);
        assert_eq!(job.kernel_count(), 2);
    }

    #[test]
    fn memory_total() {
        let m = JobMemory {
            weights_gib: 0.1,
            activations_gib: 0.5,
            workspace_gib: 0.2,
        };
        assert!((m.total_gib() - 0.8).abs() < 1e-12);
    }
}
