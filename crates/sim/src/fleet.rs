//! Device pool and occupancy accounting for multi-device trial
//! orchestration (`hfta-sched`).
//!
//! A [`DeviceFleet`] owns one [`GpuSim`] per device plus the bookkeeping a
//! scheduler needs: when each device frees up, how many busy
//! device-seconds accumulated, and — the HFTA-specific part — *lane*
//! accounting that splits every allocated fused lane-second into live
//! (training a surviving trial) versus dead (riding along after eviction).
//! `live / allocated` is the packing efficiency the elastic scheduler
//! exists to maximize.

use serde::{Deserialize, Serialize};

use hfta_telemetry::{FlightKind, Profiler, FLEET_TRIAL};

use crate::device::DeviceSpec;
use crate::gpu::{GpuSim, SharingPolicy};
use crate::kernel::{GemmDims, JobMemory, Kernel, TrainingJob};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Simulated seconds → the integer-ns flight grid (same rounding as the
/// scheduler's event timestamps, so bind/release align with trial events).
fn ns(t: f64) -> u64 {
    (t * 1e9).round() as u64
}

/// Linear footprint model `bytes(B) = base + B * per_lane`, fit from
/// *measured* per-width peak footprints (`bench_mem`'s `peak_bytes`
/// column) instead of the analytic [`JobMemory`] estimate. `base` absorbs
/// everything width-independent (framework state, shared workspaces);
/// `per_lane` is the marginal cost of one more fused lane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Width-independent bytes (shared framework + workspace state).
    pub base_bytes: f64,
    /// Marginal bytes per fused lane.
    pub per_lane_bytes: f64,
}

impl MemoryModel {
    /// Least-squares fit of the linear model over measured
    /// `(width, peak_bytes)` points. Returns `None` with fewer than two
    /// distinct widths (the slope would be unconstrained). Negative fitted
    /// components clamp to zero so a noisy fit never predicts a *smaller*
    /// footprint at a larger width.
    pub fn fit(points: &[(usize, u64)]) -> Option<MemoryModel> {
        let n = points.len() as f64;
        let first = points.first()?.0;
        if !points.iter().any(|&(b, _)| b != first) {
            return None;
        }
        let mean_b = points.iter().map(|&(b, _)| b as f64).sum::<f64>() / n;
        let mean_y = points.iter().map(|&(_, y)| y as f64).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut var = 0.0;
        for &(b, y) in points {
            let db = b as f64 - mean_b;
            cov += db * (y as f64 - mean_y);
            var += db * db;
        }
        let per_lane = (cov / var).max(0.0);
        let base = (mean_y - per_lane * mean_b).max(0.0);
        Some(MemoryModel {
            base_bytes: base,
            per_lane_bytes: per_lane,
        })
    }

    /// Predicted footprint of a `b`-wide fused array in bytes.
    pub fn predict_bytes(&self, b: usize) -> f64 {
        self.base_bytes + self.per_lane_bytes * b as f64
    }
}

/// How [`DeviceFleet::max_fused_width_with`] estimates the footprint of a
/// candidate fused width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WidthMode<'a> {
    /// Analytic [`JobMemory`] scaling — the paper's Table-5 estimate
    /// (weights and activations replicate per lane, workspace is shared,
    /// plus the framework reservation).
    Analytic,
    /// A [`MemoryModel`] fit from real measured footprints. The measured
    /// base already contains every width-independent reservation, so the
    /// prediction is compared against raw device capacity.
    Measured(&'a MemoryModel),
}

/// Scales a per-model training job to a `B`-wide fused job, the way HFTA
/// fusion scales each kernel (paper §3.1): arithmetic, traffic and tiles
/// carry `B` models of work, GEMMs widen along `n`, weights and
/// activations replicate per model while the workspace is shared, and the
/// fused job trains `models_per_job = B` models.
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn fuse_job(base: &TrainingJob, b: usize) -> TrainingJob {
    assert!(b > 0, "fused width must be positive");
    let kernels = base
        .kernels
        .iter()
        .map(|k| Kernel {
            flops: k.flops * b as u64,
            bytes: k.bytes * b as u64,
            tiles: k.tiles * b as u64,
            gemm: k.gemm.map(|g| GemmDims {
                n: g.n * b as u64,
                ..g
            }),
            pad_dim: k.pad_dim.map(|d| d * b as u64),
            tc_eligible: k.tc_eligible,
        })
        .collect();
    TrainingJob {
        kernels,
        memory: JobMemory {
            weights_gib: base.memory.weights_gib * b as f64,
            activations_gib: base.memory.activations_gib * b as f64,
            workspace_gib: base.memory.workspace_gib,
        },
        models_per_job: b,
        ..base.clone()
    }
}

/// One device of the fleet: its simulator plus busy/lane accounting.
#[derive(Debug)]
struct FleetDevice {
    sim: GpuSim,
    name: String,
    busy_until_s: f64,
    busy_s: f64,
    live_lane_s: f64,
    alloc_lane_s: f64,
    /// FLOPs charged for lanes still training a surviving trial.
    useful_flops: f64,
    /// FLOPs charged for the whole allocated width (dead lanes included).
    total_flops: f64,
}

/// A pool of simulated devices with occupancy and packing accounting.
#[derive(Debug)]
pub struct DeviceFleet {
    devices: Vec<FleetDevice>,
}

impl DeviceFleet {
    /// A fleet of `count` identical devices.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn homogeneous(spec: DeviceSpec, amp: bool, count: usize) -> Self {
        assert!(count > 0, "fleet needs at least one device");
        Self::new((0..count).map(|_| GpuSim::new(spec.clone(), amp)).collect())
    }

    /// A heterogeneous fleet from `(spec, count)` device classes, in class
    /// order: `[(v100, 2), (a100, 1)]` yields devices `V100#0, V100#1,
    /// A100#2`. The class mix is what gives preemptive lane migration
    /// something to exploit — a trial extracted from a saturated slow class
    /// can resume bit-identically on a fast one.
    ///
    /// # Panics
    ///
    /// Panics if the classes sum to zero devices.
    pub fn heterogeneous(classes: &[(DeviceSpec, usize)], amp: bool) -> Self {
        Self::new(
            classes
                .iter()
                .flat_map(|(spec, count)| (0..*count).map(|_| GpuSim::new(spec.clone(), amp)))
                .collect(),
        )
    }

    /// The device-class (spec) name of device `id`, without the fleet
    /// index: `"V100"` for `"V100#3"`.
    pub fn device_class(&self, id: usize) -> &str {
        &self.devices[id].sim.device().name
    }

    /// A fleet from explicit per-device simulators.
    ///
    /// # Panics
    ///
    /// Panics if `sims` is empty.
    pub fn new(sims: Vec<GpuSim>) -> Self {
        assert!(!sims.is_empty(), "fleet needs at least one device");
        let devices = sims
            .into_iter()
            .enumerate()
            .map(|(i, sim)| {
                let name = format!("{}#{i}", sim.device().name);
                FleetDevice {
                    sim,
                    name,
                    busy_until_s: 0.0,
                    busy_s: 0.0,
                    live_lane_s: 0.0,
                    alloc_lane_s: 0.0,
                    useful_flops: 0.0,
                    total_flops: 0.0,
                }
            })
            .collect();
        DeviceFleet { devices }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Unique display name of device `id` (spec name + fleet index), used
    /// for per-device Chrome-trace lanes.
    pub fn name(&self, id: usize) -> &str {
        &self.devices[id].name
    }

    /// The simulator of device `id`.
    pub fn sim(&self, id: usize) -> &GpuSim {
        &self.devices[id].sim
    }

    /// The largest fused width of `profile` that fits device `id`'s
    /// memory (framework reservation included), capped at `limit` — the
    /// per-device max-B selection mirroring the paper's Table 5. Returns 0
    /// when even width 1 does not fit.
    pub fn max_fused_width(&self, id: usize, profile: &TrainingJob, limit: usize) -> usize {
        self.devices[id]
            .sim
            .max_jobs(SharingPolicy::Hfta, limit, |b| fuse_job(profile, b))
    }

    /// [`DeviceFleet::max_fused_width`] with a selectable footprint
    /// estimator: [`WidthMode::Analytic`] reproduces the Table-5 style
    /// estimate, [`WidthMode::Measured`] sizes the array from a
    /// [`MemoryModel`] fit to real `bench_mem` footprints instead.
    pub fn max_fused_width_with(
        &self,
        id: usize,
        profile: &TrainingJob,
        limit: usize,
        mode: WidthMode<'_>,
    ) -> usize {
        match mode {
            WidthMode::Analytic => self.max_fused_width(id, profile, limit),
            WidthMode::Measured(model) => {
                let cap = self.devices[id].sim.device().hbm_gib * GIB;
                (1..=limit)
                    .take_while(|&b| model.predict_bytes(b) <= cap)
                    .last()
                    .unwrap_or(0)
            }
        }
    }

    /// Simulated seconds one training step of a `width`-wide fusion of
    /// `profile` takes on device `id`. `policy` is
    /// [`SharingPolicy::Serial`] for the width-1 serial baseline and
    /// [`SharingPolicy::Hfta`] for fused arrays.
    ///
    /// # Panics
    ///
    /// Panics if the job does not fit the device, or if a serial-policy
    /// call passes `width != 1`.
    pub fn step_time_s(
        &self,
        id: usize,
        profile: &TrainingJob,
        width: usize,
        policy: SharingPolicy,
    ) -> f64 {
        let result = match policy {
            SharingPolicy::Serial => {
                assert_eq!(width, 1, "serial baseline trains one model per device");
                self.devices[id].sim.simulate(policy, profile, 1)
            }
            _ => self.devices[id]
                .sim
                .simulate(policy, &fuse_job(profile, width), 1),
        };
        assert!(
            result.fits,
            "width-{width} job does not fit device {} — scheduler must respect max_fused_width",
            self.name(id)
        );
        result.round_us * 1e-6
    }

    /// The device that frees up first (lowest `busy_until`, ties to the
    /// lowest id) and the time it frees.
    pub fn next_free(&self) -> (usize, f64) {
        let mut best = 0;
        for (i, d) in self.devices.iter().enumerate() {
            if d.busy_until_s < self.devices[best].busy_until_s {
                best = i;
            }
        }
        (best, self.devices[best].busy_until_s)
    }

    /// Devices idle at simulated time `t`, in id order.
    pub fn idle_devices(&self, t: f64) -> Vec<usize> {
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.busy_until_s <= t)
            .map(|(i, _)| i)
            .collect()
    }

    /// When device `id` frees up.
    pub fn busy_until_s(&self, id: usize) -> f64 {
        self.devices[id].busy_until_s
    }

    /// Occupies device `id` from `start_s` for `dur_s` with an array of
    /// allocated width `width`, of which `live` lanes still train a
    /// surviving trial.
    ///
    /// # Panics
    ///
    /// Panics if the device is still busy at `start_s`, or `live > width`.
    pub fn occupy(&mut self, id: usize, start_s: f64, dur_s: f64, width: usize, live: usize) {
        assert!(live <= width, "live lanes exceed allocated width");
        let d = &mut self.devices[id];
        assert!(
            d.busy_until_s <= start_s + 1e-12,
            "device {} is busy until {} (> {start_s})",
            d.name,
            d.busy_until_s
        );
        d.busy_until_s = start_s + dur_s;
        d.busy_s += dur_s;
        d.live_lane_s += live as f64 * dur_s;
        d.alloc_lane_s += width as f64 * dur_s;
        // Fleet-lane flight events: bind at the booking start, release at
        // its (future) end. Both ride under [`FLEET_TRIAL`], which the
        // per-trial monotone clamp and SLO derivation exempt. The array id
        // comes from the ambient cursor the scheduler sets before booking.
        if let Some(p) = Profiler::current() {
            let array = p.flight_cursor().array;
            let dev = Some(id as u64);
            p.flight_event(
                FLEET_TRIAL,
                ns(start_s),
                FlightKind::DeviceBind,
                dev,
                array,
                None,
                format!("width {width} live {live}"),
            );
            p.flight_event(
                FLEET_TRIAL,
                ns(start_s + dur_s),
                FlightKind::DeviceRelease,
                dev,
                array,
                None,
                format!("busy {:.3}s", d.busy_s),
            );
        }
    }

    /// Charges FLOPs to device `id`: `useful` for the lanes still training
    /// a surviving trial, `total` for the whole allocated width. Called by
    /// the scheduler alongside [`DeviceFleet::occupy`] so occupancy gains
    /// a quality dimension — a device can be 100% busy while most of its
    /// arithmetic rides on dead lanes.
    ///
    /// # Panics
    ///
    /// Panics if `useful > total`.
    pub fn charge_flops(&mut self, id: usize, useful: f64, total: f64) {
        assert!(
            useful <= total * (1.0 + 1e-12) + 1e-9,
            "useful FLOPs {useful} exceed total {total}"
        );
        let d = &mut self.devices[id];
        d.useful_flops += useful;
        d.total_flops += total;
    }

    /// Useful GFLOP/s device `id` attained over its busy seconds (0 when
    /// it never ran).
    pub fn attained_gflops(&self, id: usize) -> f64 {
        let d = &self.devices[id];
        if d.busy_s <= 0.0 {
            return 0.0;
        }
        d.useful_flops / d.busy_s / 1e9
    }

    /// Fraction of device `id`'s FP32 peak its *useful* FLOPs attained
    /// over its busy time (0 when it never ran). Busy ≠ utilized: dead
    /// lanes and sub-peak kernels both drag this below 1.0.
    pub fn utilization(&self, id: usize) -> f64 {
        let peak = self.devices[id].sim.device().fp32_tflops * 1e3; // GFLOP/s
        if peak <= 0.0 {
            return 0.0;
        }
        self.attained_gflops(id) / peak
    }

    /// Fleet-wide useful FLOPs over `Σ busy_s × per-device FP32 peak`
    /// (0 when nothing ran).
    pub fn fleet_utilization(&self) -> f64 {
        let capacity: f64 = self
            .devices
            .iter()
            .map(|d| d.busy_s * d.sim.device().fp32_tflops * 1e12)
            .sum();
        if capacity <= 0.0 {
            return 0.0;
        }
        let useful: f64 = self.devices.iter().map(|d| d.useful_flops).sum();
        useful / capacity
    }

    /// Total busy device-seconds across the fleet.
    pub fn device_seconds(&self) -> f64 {
        self.devices.iter().map(|d| d.busy_s).sum()
    }

    /// Total busy device-hours across the fleet.
    pub fn device_hours(&self) -> f64 {
        self.device_seconds() / 3600.0
    }

    /// Live lane-seconds over allocated lane-seconds (1.0 when nothing
    /// ran) — dead width from evicted-but-riding lanes drags this down.
    pub fn packing_efficiency(&self) -> f64 {
        let alloc: f64 = self.devices.iter().map(|d| d.alloc_lane_s).sum();
        if alloc <= 0.0 {
            return 1.0;
        }
        let live: f64 = self.devices.iter().map(|d| d.live_lane_s).sum();
        live / alloc
    }

    /// Busy device-seconds over `devices × horizon_s` (0 for an empty
    /// horizon).
    pub fn occupancy(&self, horizon_s: f64) -> f64 {
        if horizon_s <= 0.0 {
            return 0.0;
        }
        self.device_seconds() / (self.devices.len() as f64 * horizon_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> TrainingJob {
        TrainingJob {
            name: "fleet-test".into(),
            kernels: vec![Kernel::elementwise(1 << 20); 10],
            host_us: 50.0,
            sync_us_per_kernel: 0.0,
            cpu_gap_fraction: 0.0,
            memory: JobMemory {
                weights_gib: 0.05,
                activations_gib: 1.0,
                workspace_gib: 0.1,
            },
            models_per_job: 1,
            examples_per_iteration: 32,
        }
    }

    #[test]
    fn fuse_job_scales_kernels_and_memory() {
        let base = job();
        let fused = fuse_job(&base, 4);
        assert_eq!(fused.models_per_job, 4);
        assert_eq!(fused.total_flops(), 4 * base.total_flops());
        assert!((fused.memory.weights_gib - 0.2).abs() < 1e-12);
        // Workspace is shared, not replicated.
        assert!((fused.memory.workspace_gib - 0.1).abs() < 1e-12);
    }

    #[test]
    fn max_fused_width_respects_memory() {
        let fleet = DeviceFleet::homogeneous(DeviceSpec::v100(), false, 1);
        let w = fleet.max_fused_width(0, &job(), 64);
        // V100: 16 GiB minus the framework reservation over ~1.05 GiB per
        // model — somewhere in the 8..=16 band.
        assert!((8..=16).contains(&w), "max width {w}");
        // The cap is honored.
        assert_eq!(fleet.max_fused_width(0, &job(), 4), 4);
    }

    #[test]
    fn memory_model_fit_recovers_linear_footprints() {
        // Points generated from an exactly linear footprint.
        let points: Vec<(usize, u64)> = [1usize, 2, 4, 6]
            .iter()
            .map(|&b| (b, 3_000_000_000 + 1_200_000_000 * b as u64))
            .collect();
        let m = MemoryModel::fit(&points).unwrap();
        assert!((m.base_bytes - 3.0e9).abs() < 1.0);
        assert!((m.per_lane_bytes - 1.2e9).abs() < 1.0);
        assert!((m.predict_bytes(8) - (3.0e9 + 9.6e9)).abs() < 1.0);
        // One width (or none) is not enough to constrain the slope.
        assert!(MemoryModel::fit(&[(4, 100)]).is_none());
        assert!(MemoryModel::fit(&[]).is_none());
    }

    #[test]
    fn measured_width_mode_tracks_analytic_estimate() {
        let fleet = DeviceFleet::homogeneous(DeviceSpec::v100(), false, 1);
        let base = job();
        let analytic = fleet.max_fused_width(0, &base, 64);

        // Synthesize "measurements" from the same analytic footprint the
        // simulator charges (framework reservation + per-lane weights and
        // activations + shared workspace): the fitted model must then
        // reproduce the analytic width choice exactly.
        let gib = |g: f64| (g * GIB) as u64;
        let fw = fleet.sim(0).device().framework_overhead_fp32_gib;
        let points: Vec<(usize, u64)> = [1usize, 2, 4, 6]
            .iter()
            .map(|&b| {
                let m = fuse_job(&base, b).memory;
                (
                    b,
                    gib(fw + m.weights_gib + m.activations_gib + m.workspace_gib),
                )
            })
            .collect();
        let model = MemoryModel::fit(&points).unwrap();
        let measured = fleet.max_fused_width_with(0, &base, 64, WidthMode::Measured(&model));
        assert_eq!(measured, analytic, "measured mode diverged from analytic");
        assert_eq!(
            fleet.max_fused_width_with(0, &base, 64, WidthMode::Analytic),
            analytic
        );
        // The limit cap still binds.
        assert_eq!(
            fleet.max_fused_width_with(0, &base, 4, WidthMode::Measured(&model)),
            4
        );

        // A real measured profile (bench_mem on this CPU runtime) sees a
        // *smaller* per-lane cost than the analytic GPU estimate — the
        // fused array shares the im2col/GEMM workspace and the pool
        // amortizes per-lane slack — so the measured width is never below
        // the analytic one. The delta direction is the documented
        // CPU-measured vs GPU-analytic gap.
        let shared = MemoryModel {
            base_bytes: points[0].1 as f64,
            per_lane_bytes: model.per_lane_bytes * 0.6,
        };
        let w = fleet.max_fused_width_with(0, &base, 64, WidthMode::Measured(&shared));
        assert!(
            w >= analytic,
            "shared-workspace width {w} < analytic {analytic}"
        );

        // A model that never fits reports width 0.
        let huge = MemoryModel {
            base_bytes: 1e18,
            per_lane_bytes: 1.0,
        };
        assert_eq!(
            fleet.max_fused_width_with(0, &base, 8, WidthMode::Measured(&huge)),
            0
        );
    }

    #[test]
    fn heterogeneous_fleet_orders_classes_and_scales_speed() {
        let fleet = DeviceFleet::heterogeneous(
            &[
                (DeviceSpec::v100(), 2),
                (DeviceSpec::rtx6000(), 1),
                (DeviceSpec::a100(), 1),
            ],
            false,
        );
        assert_eq!(fleet.len(), 4);
        assert_eq!(fleet.name(0), "V100#0");
        assert_eq!(fleet.name(1), "V100#1");
        assert_eq!(fleet.name(2), "RTX6000#2");
        assert_eq!(fleet.name(3), "A100#3");
        assert_eq!(fleet.device_class(1), "V100");
        assert_eq!(fleet.device_class(3), "A100");
        // The faster class runs the same fused step faster.
        let v100 = fleet.step_time_s(0, &job(), 4, SharingPolicy::Hfta);
        let a100 = fleet.step_time_s(3, &job(), 4, SharingPolicy::Hfta);
        assert!(a100 < v100, "A100 step {a100} not below V100 {v100}");
    }

    #[test]
    fn fused_step_slower_than_serial_but_sublinear() {
        let fleet = DeviceFleet::homogeneous(DeviceSpec::v100(), false, 1);
        let serial = fleet.step_time_s(0, &job(), 1, SharingPolicy::Serial);
        let fused = fleet.step_time_s(0, &job(), 6, SharingPolicy::Hfta);
        assert!(fused > serial * 0.5, "fused step implausibly fast");
        assert!(
            fused < serial * 6.0,
            "fused step slower than 6 serial steps: no fusion win"
        );
    }

    #[test]
    fn occupancy_and_packing_accounting() {
        let mut fleet = DeviceFleet::homogeneous(DeviceSpec::v100(), false, 2);
        assert_eq!(fleet.next_free(), (0, 0.0));
        fleet.occupy(0, 0.0, 10.0, 8, 8);
        fleet.occupy(1, 0.0, 5.0, 8, 4); // half the width rides dead
        assert_eq!(fleet.next_free(), (1, 5.0));
        assert_eq!(fleet.idle_devices(5.0), vec![1]);
        fleet.occupy(1, 6.0, 4.0, 4, 4);
        assert!((fleet.device_seconds() - 19.0).abs() < 1e-12);
        // live = 80 + 20 + 16 = 116; alloc = 80 + 40 + 16 = 136.
        assert!((fleet.packing_efficiency() - 116.0 / 136.0).abs() < 1e-12);
        assert!((fleet.occupancy(10.0) - 19.0 / 20.0).abs() < 1e-12);
        assert_eq!(fleet.name(1), "V100#1");
    }

    #[test]
    fn flops_charging_measures_utilization_quality() {
        let mut fleet = DeviceFleet::homogeneous(DeviceSpec::v100(), false, 2);
        assert_eq!(fleet.utilization(0), 0.0);
        assert_eq!(fleet.fleet_utilization(), 0.0);
        // Device 0: busy 10 s, half the arithmetic on dead lanes.
        fleet.occupy(0, 0.0, 10.0, 8, 4);
        fleet.charge_flops(0, 5.0e13, 1.0e14);
        // 5e13 flops / 10 s = 5e12 flop/s = 5000 GFLOP/s.
        assert!((fleet.attained_gflops(0) - 5000.0).abs() < 1e-9);
        // V100 fp32 peak is 15.7 TFLOP/s.
        assert!((fleet.utilization(0) - 5.0e12 / 15.7e12).abs() < 1e-12);
        // Device 1 never ran: busy but-unused capacity is not counted.
        assert_eq!(fleet.utilization(1), 0.0);
        assert!((fleet.fleet_utilization() - 5.0e13 / (10.0 * 15.7e12)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "exceed total")]
    fn useful_flops_above_total_panics() {
        let mut fleet = DeviceFleet::homogeneous(DeviceSpec::v100(), false, 1);
        fleet.charge_flops(0, 2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "is busy until")]
    fn double_booking_panics() {
        let mut fleet = DeviceFleet::homogeneous(DeviceSpec::v100(), false, 1);
        fleet.occupy(0, 0.0, 10.0, 1, 1);
        fleet.occupy(0, 5.0, 1.0, 1, 1);
    }
}
