//! Per-model utilization attribution for fused kernels (hfta-scope).
//!
//! A fused HFTA kernel carries `B` models' work in one launch, so the
//! device-level counters (Figure 8 of the paper) only show the *array's*
//! utilization. For per-model accounting — "how much of the fused array's
//! FLOPs/bytes did model `i` consume?" — the fused kernel's totals are
//! split evenly across the `B` lanes: every lane of a fused operator does
//! identical-shape work (same operator types, same shapes — the fusability
//! precondition of Table 6), so an even split *is* the exact attribution,
//! up to integer remainders, which go to the lower lane indices.
//!
//! [`crate::gpu::GpuSim::simulate_traced`] and
//! [`crate::tpu::TpuSim::simulate_traced`] use these splits to emit
//! `<label>/model<i>/flops` and `<label>/model<i>/bytes` counter series
//! alongside the device-level DCGM series, giving `scope_report` a
//! Figure-8-style per-model utilization view from a single fused trace.

use serde::{Deserialize, Serialize};

use crate::kernel::{Kernel, TrainingJob};

/// One model lane's share of a fused kernel's (or job's) work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneShare {
    /// Model index within the fused array (`0..B`).
    pub model: u64,
    /// FLOPs attributed to this lane.
    pub flops: u64,
    /// Device-memory bytes attributed to this lane.
    pub bytes: u64,
}

/// Splits `total` evenly across `b` lanes, handing the remainder to the
/// lower indices so the shares always sum back to `total` exactly.
pub fn split_even(total: u64, b: usize) -> Vec<u64> {
    assert!(b > 0, "cannot attribute work across zero lanes");
    let base = total / b as u64;
    let rem = total % b as u64;
    (0..b as u64).map(|i| base + u64::from(i < rem)).collect()
}

/// Attributes one fused kernel's FLOPs and bytes across `b` model lanes.
pub fn per_model_shares(kernel: &Kernel, b: usize) -> Vec<LaneShare> {
    let flops = split_even(kernel.flops, b);
    let bytes = split_even(kernel.bytes, b);
    flops
        .into_iter()
        .zip(bytes)
        .enumerate()
        .map(|(i, (flops, bytes))| LaneShare {
            model: i as u64,
            flops,
            bytes,
        })
        .collect()
}

/// Attributes a whole job's iteration (every kernel summed) across its
/// [`TrainingJob::models_per_job`] lanes.
pub fn job_lane_totals(job: &TrainingJob) -> Vec<LaneShare> {
    let b = job.models_per_job.max(1);
    let mut totals: Vec<LaneShare> = (0..b as u64)
        .map(|model| LaneShare {
            model,
            flops: 0,
            bytes: 0,
        })
        .collect();
    for k in &job.kernels {
        for share in per_model_shares(k, b) {
            let t = &mut totals[share.model as usize];
            t.flops += share.flops;
            t.bytes += share.bytes;
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::JobMemory;

    #[test]
    fn split_even_exact_when_divisible() {
        assert_eq!(split_even(12, 4), vec![3, 3, 3, 3]);
        assert_eq!(split_even(0, 3), vec![0, 0, 0]);
    }

    #[test]
    fn split_even_remainder_goes_to_lower_indices() {
        assert_eq!(split_even(10, 3), vec![4, 3, 3]);
        assert_eq!(split_even(7, 4), vec![2, 2, 2, 1]);
        // Shares always conserve the total.
        for (total, b) in [(1u64, 7usize), (100, 3), (12345, 8)] {
            assert_eq!(split_even(total, b).iter().sum::<u64>(), total);
        }
    }

    #[test]
    fn per_model_shares_conserve_kernel_totals() {
        let k = Kernel::elementwise(1_000_001);
        let shares = per_model_shares(&k, 4);
        assert_eq!(shares.len(), 4);
        assert_eq!(shares.iter().map(|s| s.flops).sum::<u64>(), k.flops);
        assert_eq!(shares.iter().map(|s| s.bytes).sum::<u64>(), k.bytes);
        assert_eq!(shares[0].model, 0);
        assert_eq!(shares[3].model, 3);
    }

    #[test]
    fn job_lane_totals_sum_to_job_totals() {
        let job = TrainingJob {
            name: "t".into(),
            kernels: vec![
                Kernel::elementwise(100_003),
                Kernel::elementwise(50_001),
                Kernel::elementwise(7),
            ],
            host_us: 0.0,
            sync_us_per_kernel: 0.0,
            cpu_gap_fraction: 0.0,
            memory: JobMemory::default(),
            models_per_job: 3,
            examples_per_iteration: 1,
        };
        let totals = job_lane_totals(&job);
        assert_eq!(totals.len(), 3);
        assert_eq!(
            totals.iter().map(|s| s.flops).sum::<u64>(),
            job.total_flops()
        );
        assert_eq!(
            totals.iter().map(|s| s.bytes).sum::<u64>(),
            job.total_bytes()
        );
        // Lanes differ by at most the per-kernel remainders.
        let max = totals.iter().map(|s| s.flops).max().unwrap();
        let min = totals.iter().map(|s| s.flops).min().unwrap();
        assert!(max - min <= job.kernels.len() as u64);
    }
}
