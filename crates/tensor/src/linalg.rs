//! Dense linear algebra: `matmul`, batched `bmm`, and `baddbmm`.
//!
//! `baddbmm` is load-bearing for HFTA: the horizontal fusion of `B` linear
//! layers `y_b = x_b W_b + bias_b` is exactly one
//! `baddbmm(bias[B,1,F_y], x[B,N,F_x], w[B,F_x,F_y])` (Table 6 of the paper).

use crate::tensor::Tensor;

/// `out[m,n] += a[m,k] * b[k,n]` over raw slices, ikj loop order for
/// cache-friendly row-major access.
fn gemm_accumulate(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (ov, &bv) in orow.iter_mut().zip(brow) {
                *ov += av * bv;
            }
        }
    }
}

impl Tensor {
    /// 2-D matrix multiplication: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with matching inner dimensions.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.rank(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (other.dim(0), other.dim(1));
        assert_eq!(
            k, k2,
            "matmul inner dims mismatch: [{m}, {k}] x [{k2}, {n}]"
        );
        let mut out = vec![0.0f32; m * n];
        gemm_accumulate(&mut out, self.as_slice(), other.as_slice(), m, k, n);
        Tensor::from_vec(out, [m, n])
    }

    /// Batched matrix multiplication: `[B, m, k] x [B, k, n] -> [B, m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 3-D with matching batch and inner
    /// dimensions.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm lhs must be 3-D");
        assert_eq!(other.rank(), 3, "bmm rhs must be 3-D");
        let (b, m, k) = (self.dim(0), self.dim(1), self.dim(2));
        let (b2, k2, n) = (other.dim(0), other.dim(1), other.dim(2));
        assert_eq!(b, b2, "bmm batch dims mismatch: {b} vs {b2}");
        assert_eq!(k, k2, "bmm inner dims mismatch: {k} vs {k2}");
        let mut out = vec![0.0f32; b * m * n];
        let da = self.as_slice();
        let db = other.as_slice();
        for i in 0..b {
            gemm_accumulate(
                &mut out[i * m * n..(i + 1) * m * n],
                &da[i * m * k..(i + 1) * m * k],
                &db[i * k * n..(i + 1) * k * n],
                m,
                k,
                n,
            );
        }
        Tensor::from_vec(out, [b, m, n])
    }

    /// Batched `beta * bias + alpha * (self @ other)` with a broadcastable
    /// bias (`torch.baddbmm` semantics with `beta = alpha = 1`).
    ///
    /// `bias` must broadcast to `[B, m, n]` (typically `[B, 1, n]`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn baddbmm(&self, other: &Tensor, bias: &Tensor) -> Tensor {
        let prod = self.bmm(other);
        bias.add(&prod)
    }

    /// `self @ other` where `other` is transposed on its last two axes:
    /// `[B, m, k] x [B, n, k] -> [B, m, n]`. Avoids materializing the
    /// transpose in backward passes.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 3-D with matching dims.
    pub fn bmm_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm_nt lhs must be 3-D");
        assert_eq!(other.rank(), 3, "bmm_nt rhs must be 3-D");
        let (b, m, k) = (self.dim(0), self.dim(1), self.dim(2));
        let (b2, n, k2) = (other.dim(0), other.dim(1), other.dim(2));
        assert_eq!(b, b2, "bmm_nt batch dims mismatch");
        assert_eq!(k, k2, "bmm_nt inner dims mismatch");
        let da = self.as_slice();
        let db = other.as_slice();
        let mut out = vec![0.0f32; b * m * n];
        for i in 0..b {
            let ab = &da[i * m * k..(i + 1) * m * k];
            let bb = &db[i * n * k..(i + 1) * n * k];
            let ob = &mut out[i * m * n..(i + 1) * m * n];
            for r in 0..m {
                let arow = &ab[r * k..(r + 1) * k];
                for c in 0..n {
                    let brow = &bb[c * k..(c + 1) * k];
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += arow[p] * brow[p];
                    }
                    ob[r * n + c] = acc;
                }
            }
        }
        Tensor::from_vec(out, [b, m, n])
    }

    /// `self^T @ other` batched: `[B, k, m] x [B, k, n] -> [B, m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 3-D with matching dims.
    pub fn bmm_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm_tn lhs must be 3-D");
        assert_eq!(other.rank(), 3, "bmm_tn rhs must be 3-D");
        let (b, k, m) = (self.dim(0), self.dim(1), self.dim(2));
        let (b2, k2, n) = (other.dim(0), other.dim(1), other.dim(2));
        assert_eq!(b, b2, "bmm_tn batch dims mismatch");
        assert_eq!(k, k2, "bmm_tn inner dims mismatch");
        let da = self.as_slice();
        let db = other.as_slice();
        let mut out = vec![0.0f32; b * m * n];
        for i in 0..b {
            let ab = &da[i * k * m..(i + 1) * k * m];
            let bb = &db[i * k * n..(i + 1) * k * n];
            let ob = &mut out[i * m * n..(i + 1) * m * n];
            // out[r, c] = sum_p a[p, r] * b[p, c] — walk p outermost so both
            // reads stay sequential.
            for p in 0..k {
                let arow = &ab[p * m..(p + 1) * m];
                let brow = &bb[p * n..(p + 1) * n];
                for (r, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let orow = &mut ob[r * n..(r + 1) * n];
                    for (ov, &bv) in orow.iter_mut().zip(brow) {
                        *ov += av * bv;
                    }
                }
            }
        }
        Tensor::from_vec(out, [b, m, n])
    }

    /// Dot product of two 1-D tensors.
    ///
    /// # Panics
    ///
    /// Panics unless both are 1-D with equal length.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.rank(), 1, "dot lhs must be 1-D");
        assert_eq!(other.rank(), 1, "dot rhs must be 1-D");
        assert_eq!(self.numel(), other.numel(), "dot length mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a * b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        assert_eq!(a.matmul(&b).to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::arange(6).reshape(&[3, 2]); // [[0,1],[2,3],[4,5]]
        let b = Tensor::arange(2).reshape(&[2, 1]); // [[0],[1]]
        assert_eq!(a.matmul(&b).to_vec(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims mismatch")]
    fn matmul_dim_check() {
        let _ = Tensor::zeros([2, 3]).matmul(&Tensor::zeros([2, 3]));
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::arange(12).reshape(&[2, 2, 3]);
        let b = Tensor::arange(18).reshape(&[2, 3, 3]);
        let c = a.bmm(&b);
        for i in 0..2 {
            let ai = a.narrow(0, i, 1).reshape(&[2, 3]);
            let bi = b.narrow(0, i, 1).reshape(&[3, 3]);
            let ci = c.narrow(0, i, 1).reshape(&[2, 3]);
            assert_eq!(ai.matmul(&bi), ci);
        }
    }

    #[test]
    fn baddbmm_broadcasts_bias() {
        let x = Tensor::ones([2, 3, 4]);
        let w = Tensor::ones([2, 4, 5]);
        let bias = Tensor::from_vec((0..10).map(|i| i as f32).collect(), [2, 1, 5]);
        let y = x.baddbmm(&w, &bias);
        assert_eq!(y.dims(), &[2, 3, 5]);
        // Each product element is 4 (sum of ones over k=4) plus the bias.
        assert_eq!(y.at(&[0, 0, 0]), 4.0);
        assert_eq!(y.at(&[0, 2, 3]), 7.0);
        assert_eq!(y.at(&[1, 1, 4]), 13.0);
    }

    #[test]
    fn bmm_nt_equals_bmm_of_transpose() {
        let a = Tensor::arange(12).reshape(&[2, 2, 3]);
        let b = Tensor::arange(24).reshape(&[2, 4, 3]);
        let direct = a.bmm_nt(&b);
        let via_transpose = a.bmm(&b.transpose(1, 2));
        assert!(direct.allclose(&via_transpose, 1e-6));
    }

    #[test]
    fn bmm_tn_equals_transpose_bmm() {
        let a = Tensor::arange(12).reshape(&[2, 3, 2]);
        let b = Tensor::arange(18).reshape(&[2, 3, 3]);
        let direct = a.bmm_tn(&b);
        let via_transpose = a.transpose(1, 2).bmm(&b);
        assert!(direct.allclose(&via_transpose, 1e-6));
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], [3]);
        assert_eq!(a.dot(&b), 32.0);
    }
}
