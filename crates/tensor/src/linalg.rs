//! Dense linear algebra: `matmul`, batched `bmm`, and `baddbmm`.
//!
//! `baddbmm` is load-bearing for HFTA: the horizontal fusion of `B` linear
//! layers `y_b = x_b W_b + bias_b` is exactly one
//! `baddbmm(bias[B,1,F_y], x[B,N,F_x], w[B,F_x,F_y])` (Table 6 of the paper).
//!
//! All products execute on the blocked, register-tiled kernels of
//! `hfta-kernels`; the batched variants additionally parallelize across the
//! `B` (fused-model) batch dimension when there are at least as many
//! batches as pool threads. Chunk decomposition follows the kernel layer's
//! determinism contract, so results are bit-identical at any thread count.

use crate::elementwise::broadcast_strides;
use crate::shape::Shape;
use crate::tensor::Tensor;
use hfta_kernels::{self as kernels, UnsafeSlice};

/// Below this many total FLOPs a batched product just loops serially (the
/// per-batch kernels may still parallelize internally when large).
const BATCH_PAR_MIN_FLOPS: usize = 1 << 20;

type GemmFn = fn(&mut [f32], &[f32], &[f32], usize, usize, usize);

/// Runs `kernel` over `bsz` independent `[m,n] += f(a_i, b_i)` blocks,
/// accumulating into `out`. Parallelizes across batches when that beats the
/// kernels' internal row parallelism; either path is bit-identical.
#[allow(clippy::too_many_arguments)]
fn batched_gemm(
    out: &mut [f32],
    da: &[f32],
    db: &[f32],
    bsz: usize,
    m: usize,
    k: usize,
    n: usize,
    a_stride: usize,
    b_stride: usize,
    kernel: GemmFn,
) {
    let block = m * n;
    let threads = kernels::num_threads();
    let batch_parallel =
        bsz > 1 && threads > 1 && bsz >= threads && 2 * m * k * n * bsz >= BATCH_PAR_MIN_FLOPS;
    if !batch_parallel {
        for i in 0..bsz {
            kernel(
                &mut out[i * block..(i + 1) * block],
                &da[i * a_stride..(i + 1) * a_stride],
                &db[i * b_stride..(i + 1) * b_stride],
                m,
                k,
                n,
            );
        }
        return;
    }
    let shared = UnsafeSlice::new(out);
    kernels::parallel_for_work(bsz, 1, 2 * m * k * n * bsz, |range| {
        for i in range {
            // SAFETY: each batch writes its own disjoint output block.
            let ob = unsafe { shared.slice_mut(i * block..(i + 1) * block) };
            kernel(
                ob,
                &da[i * a_stride..(i + 1) * a_stride],
                &db[i * b_stride..(i + 1) * b_stride],
                m,
                k,
                n,
            );
        }
    });
}

/// Fills `out` (shaped `out_shape`) with `src` broadcast across it.
fn broadcast_fill(out: &mut [f32], src: &Tensor, out_shape: &Shape) {
    if src.shape() == out_shape {
        out.copy_from_slice(src.as_slice());
        return;
    }
    if src.numel() == 1 {
        out.fill(src.as_slice()[0]);
        return;
    }
    assert!(
        src.shape().broadcasts_to(out_shape),
        "baddbmm bias {} does not broadcast to {}",
        src.shape(),
        out_shape
    );
    let strides = broadcast_strides(src.shape(), out_shape);
    let data = src.as_slice();
    let rank = out_shape.rank();
    let dims = out_shape.dims().to_vec();
    let mut idx = vec![0usize; rank];
    let mut offset = 0usize;
    for slot in out.iter_mut() {
        *slot = data[offset];
        for axis in (0..rank).rev() {
            idx[axis] += 1;
            offset += strides[axis];
            if idx[axis] < dims[axis] {
                break;
            }
            idx[axis] = 0;
            offset -= strides[axis] * dims[axis];
        }
    }
}

impl Tensor {
    /// 2-D matrix multiplication: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with matching inner dimensions.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.rank(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (other.dim(0), other.dim(1));
        assert_eq!(
            k, k2,
            "matmul inner dims mismatch: [{m}, {k}] x [{k2}, {n}]"
        );
        let flops = 2.0 * (m * k * n) as f64;
        let bytes = 4.0 * (m * k + k * n + m * n) as f64;
        kernels::profiled("matmul", flops, bytes, || {
            let mut out = Tensor::zeros([m, n]);
            kernels::gemm(
                out.as_mut_slice(),
                self.as_slice(),
                other.as_slice(),
                m,
                k,
                n,
            );
            out
        })
    }

    /// Batched matrix multiplication: `[B, m, k] x [B, k, n] -> [B, m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 3-D with matching batch and inner
    /// dimensions.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm lhs must be 3-D");
        assert_eq!(other.rank(), 3, "bmm rhs must be 3-D");
        let (b, m, k) = (self.dim(0), self.dim(1), self.dim(2));
        let (b2, k2, n) = (other.dim(0), other.dim(1), other.dim(2));
        assert_eq!(b, b2, "bmm batch dims mismatch: {b} vs {b2}");
        assert_eq!(k, k2, "bmm inner dims mismatch: {k} vs {k2}");
        let flops = 2.0 * (b * m * k * n) as f64;
        let bytes = 4.0 * (b * (m * k + k * n + m * n)) as f64;
        kernels::profiled("bmm", flops, bytes, || {
            let mut out = Tensor::zeros([b, m, n]);
            batched_gemm(
                out.as_mut_slice(),
                self.as_slice(),
                other.as_slice(),
                b,
                m,
                k,
                n,
                m * k,
                k * n,
                kernels::gemm,
            );
            out
        })
    }

    /// Batched `bias + self @ other` with a broadcastable bias
    /// (`torch.baddbmm` semantics with `beta = alpha = 1`).
    ///
    /// `bias` must broadcast to `[B, m, n]` (typically `[B, 1, n]`). The
    /// output buffer is seeded with the broadcast bias and the product
    /// accumulates into it — one pass, no intermediate `bmm` result.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn baddbmm(&self, other: &Tensor, bias: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "baddbmm lhs must be 3-D");
        assert_eq!(other.rank(), 3, "baddbmm rhs must be 3-D");
        let (b, m, k) = (self.dim(0), self.dim(1), self.dim(2));
        let (b2, k2, n) = (other.dim(0), other.dim(1), other.dim(2));
        assert_eq!(b, b2, "baddbmm batch dims mismatch: {b} vs {b2}");
        assert_eq!(k, k2, "baddbmm inner dims mismatch: {k} vs {k2}");
        let flops = 2.0 * (b * m * k * n) as f64;
        // Bias seeding writes the output once more on top of the gemm traffic.
        let bytes = 4.0 * (b * (m * k + k * n + 2 * m * n)) as f64;
        kernels::profiled("baddbmm", flops, bytes, || {
            let out_shape = Shape::new(vec![b, m, n]);
            let mut out = Tensor::zeros(out_shape.clone());
            broadcast_fill(out.as_mut_slice(), bias, &out_shape);
            batched_gemm(
                out.as_mut_slice(),
                self.as_slice(),
                other.as_slice(),
                b,
                m,
                k,
                n,
                m * k,
                k * n,
                kernels::gemm,
            );
            out
        })
    }

    /// `self @ other` where `other` is transposed on its last two axes:
    /// `[B, m, k] x [B, n, k] -> [B, m, n]`. Avoids materializing the
    /// transpose in backward passes.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 3-D with matching dims.
    pub fn bmm_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm_nt lhs must be 3-D");
        assert_eq!(other.rank(), 3, "bmm_nt rhs must be 3-D");
        let (b, m, k) = (self.dim(0), self.dim(1), self.dim(2));
        let (b2, n, k2) = (other.dim(0), other.dim(1), other.dim(2));
        assert_eq!(b, b2, "bmm_nt batch dims mismatch");
        assert_eq!(k, k2, "bmm_nt inner dims mismatch");
        let flops = 2.0 * (b * m * k * n) as f64;
        let bytes = 4.0 * (b * (m * k + n * k + m * n)) as f64;
        kernels::profiled("bmm_nt", flops, bytes, || {
            let mut out = Tensor::zeros([b, m, n]);
            batched_gemm(
                out.as_mut_slice(),
                self.as_slice(),
                other.as_slice(),
                b,
                m,
                k,
                n,
                m * k,
                n * k,
                kernels::gemm_nt,
            );
            out
        })
    }

    /// `self^T @ other` batched: `[B, k, m] x [B, k, n] -> [B, m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 3-D with matching dims.
    pub fn bmm_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm_tn lhs must be 3-D");
        assert_eq!(other.rank(), 3, "bmm_tn rhs must be 3-D");
        let (b, k, m) = (self.dim(0), self.dim(1), self.dim(2));
        let (b2, k2, n) = (other.dim(0), other.dim(1), other.dim(2));
        assert_eq!(b, b2, "bmm_tn batch dims mismatch");
        assert_eq!(k, k2, "bmm_tn inner dims mismatch");
        let flops = 2.0 * (b * m * k * n) as f64;
        let bytes = 4.0 * (b * (k * m + k * n + m * n)) as f64;
        kernels::profiled("bmm_tn", flops, bytes, || {
            let mut out = Tensor::zeros([b, m, n]);
            batched_gemm(
                out.as_mut_slice(),
                self.as_slice(),
                other.as_slice(),
                b,
                m,
                k,
                n,
                k * m,
                k * n,
                kernels::gemm_tn,
            );
            out
        })
    }

    /// Dot product of two 1-D tensors.
    ///
    /// # Panics
    ///
    /// Panics unless both are 1-D with equal length.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.rank(), 1, "dot lhs must be 1-D");
        assert_eq!(other.rank(), 1, "dot rhs must be 1-D");
        assert_eq!(self.numel(), other.numel(), "dot length mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a * b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]);
        assert_eq!(a.matmul(&b).to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::arange(6).reshape(&[3, 2]); // [[0,1],[2,3],[4,5]]
        let b = Tensor::arange(2).reshape(&[2, 1]); // [[0],[1]]
        assert_eq!(a.matmul(&b).to_vec(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims mismatch")]
    fn matmul_dim_check() {
        let _ = Tensor::zeros([2, 3]).matmul(&Tensor::zeros([2, 3]));
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::arange(12).reshape(&[2, 2, 3]);
        let b = Tensor::arange(18).reshape(&[2, 3, 3]);
        let c = a.bmm(&b);
        for i in 0..2 {
            let ai = a.narrow(0, i, 1).reshape(&[2, 3]);
            let bi = b.narrow(0, i, 1).reshape(&[3, 3]);
            let ci = c.narrow(0, i, 1).reshape(&[2, 3]);
            assert_eq!(ai.matmul(&bi), ci);
        }
    }

    #[test]
    fn baddbmm_broadcasts_bias() {
        let x = Tensor::ones([2, 3, 4]);
        let w = Tensor::ones([2, 4, 5]);
        let bias = Tensor::from_vec((0..10).map(|i| i as f32).collect(), [2, 1, 5]);
        let y = x.baddbmm(&w, &bias);
        assert_eq!(y.dims(), &[2, 3, 5]);
        // Each product element is 4 (sum of ones over k=4) plus the bias.
        assert_eq!(y.at(&[0, 0, 0]), 4.0);
        assert_eq!(y.at(&[0, 2, 3]), 7.0);
        assert_eq!(y.at(&[1, 1, 4]), 13.0);
    }

    #[test]
    fn baddbmm_single_pass_equals_bmm_plus_add() {
        let x = Tensor::arange(24).reshape(&[2, 3, 4]).mul_scalar(0.1);
        let w = Tensor::arange(40).reshape(&[2, 4, 5]).mul_scalar(0.05);
        for bias_dims in [vec![2, 1, 5], vec![1], vec![2, 3, 5], vec![5]] {
            let numel: usize = bias_dims.iter().product();
            let bias = Tensor::arange(numel).reshape(&bias_dims).mul_scalar(0.3);
            let fused = x.baddbmm(&w, &bias);
            let two_pass = bias.add(&x.bmm(&w));
            assert!(fused.allclose(&two_pass, 1e-5), "bias dims {bias_dims:?}");
        }
    }

    #[test]
    fn bmm_nt_equals_bmm_of_transpose() {
        let a = Tensor::arange(12).reshape(&[2, 2, 3]);
        let b = Tensor::arange(24).reshape(&[2, 4, 3]);
        let direct = a.bmm_nt(&b);
        let via_transpose = a.bmm(&b.transpose(1, 2));
        assert!(direct.allclose(&via_transpose, 1e-6));
    }

    #[test]
    fn bmm_tn_equals_transpose_bmm() {
        let a = Tensor::arange(12).reshape(&[2, 3, 2]);
        let b = Tensor::arange(18).reshape(&[2, 3, 3]);
        let direct = a.bmm_tn(&b);
        let via_transpose = a.transpose(1, 2).bmm(&b);
        assert!(direct.allclose(&via_transpose, 1e-6));
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], [3]);
        assert_eq!(a.dot(&b), 32.0);
    }
}
