//! Reductions: sums, means, maxima and the broadcast adjoint `sum_to`.

use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements, as a scalar tensor.
    pub fn sum(&self) -> Tensor {
        Tensor::scalar(self.as_slice().iter().sum())
    }

    /// Mean of all elements, as a scalar tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn mean(&self) -> Tensor {
        assert!(self.numel() > 0, "mean of empty tensor");
        Tensor::scalar(self.as_slice().iter().sum::<f32>() / self.numel() as f32)
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max_value(&self) -> f32 {
        assert!(self.numel() > 0, "max of empty tensor");
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn min_value(&self) -> f32 {
        assert!(self.numel() > 0, "min of empty tensor");
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
    }

    /// Sums along `axis`.
    ///
    /// With `keep_dim` the reduced axis stays as size 1; otherwise it is
    /// removed.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn sum_axis(&self, axis: usize, keep_dim: bool) -> Tensor {
        self.reduce_axis(axis, keep_dim, 0.0, |acc, v| acc + v)
    }

    /// Means along `axis` (see [`Tensor::sum_axis`] for `keep_dim`).
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range or has size 0.
    pub fn mean_axis(&self, axis: usize, keep_dim: bool) -> Tensor {
        let n = self.dim(axis);
        assert!(n > 0, "mean over empty axis");
        self.sum_axis(axis, keep_dim).div_scalar(n as f32)
    }

    /// Maxima along `axis` (see [`Tensor::sum_axis`] for `keep_dim`).
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range or has size 0.
    pub fn max_axis(&self, axis: usize, keep_dim: bool) -> Tensor {
        assert!(self.dim(axis) > 0, "max over empty axis");
        self.reduce_axis(axis, keep_dim, f32::NEG_INFINITY, f32::max)
    }

    /// Indices of the maxima along `axis` (as `f32` values; axis removed).
    ///
    /// Ties resolve to the first occurrence, matching `torch.argmax`
    /// semantics on CPU.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range or has size 0.
    pub fn argmax_axis(&self, axis: usize) -> Tensor {
        self.shape().check_axis(axis).expect("argmax axis");
        let n = self.dim(axis);
        assert!(n > 0, "argmax over empty axis");
        let (outer, inner) = self.split_at_axis(axis);
        let data = self.as_slice();
        let mut dims = self.dims().to_vec();
        dims.remove(axis);
        let mut out_t = Tensor::zeros(dims);
        let out = out_t.as_mut_slice();
        for o in 0..outer {
            for i in 0..inner {
                let mut best = f32::NEG_INFINITY;
                let mut best_k = 0usize;
                for k in 0..n {
                    let v = data[(o * n + k) * inner + i];
                    if v > best {
                        best = v;
                        best_k = k;
                    }
                }
                out[o * inner + i] = best_k as f32;
            }
        }
        out_t
    }

    /// Max along `axis` together with the argmax indices (both keep the
    /// reduced axis removed). Used by max-pool-style backward passes.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range or has size 0.
    pub fn max_axis_with_indices(&self, axis: usize) -> (Tensor, Vec<usize>) {
        self.shape().check_axis(axis).expect("max axis");
        let n = self.dim(axis);
        assert!(n > 0, "max over empty axis");
        let (outer, inner) = self.split_at_axis(axis);
        let data = self.as_slice();
        let mut dims = self.dims().to_vec();
        dims.remove(axis);
        let mut out_t = Tensor::full(dims, f32::NEG_INFINITY);
        let out = out_t.as_mut_slice();
        let mut idx = vec![0usize; outer * inner];
        for o in 0..outer {
            for i in 0..inner {
                for k in 0..n {
                    let v = data[(o * n + k) * inner + i];
                    if v > out[o * inner + i] {
                        out[o * inner + i] = v;
                        idx[o * inner + i] = k;
                    }
                }
            }
        }
        (out_t, idx)
    }

    /// Reduces this tensor down to `target` shape by summing over broadcast
    /// axes — the adjoint of broadcasting, used in autograd backward passes.
    ///
    /// # Panics
    ///
    /// Panics if `target` does not broadcast to `self.shape()`.
    pub fn sum_to(&self, target: &Shape) -> Tensor {
        if self.shape() == target {
            return self.clone();
        }
        assert!(
            target.broadcasts_to(self.shape()),
            "sum_to target {} does not broadcast to {}",
            target,
            self.shape()
        );
        let mut t = self.clone();
        // Reduce leading extra axes.
        while t.rank() > target.rank() {
            t = t.sum_axis(0, false);
        }
        // Reduce size-1 target axes.
        for axis in 0..target.rank() {
            if target.dim(axis) == 1 && t.dim(axis) != 1 {
                t = t.sum_axis(axis, true);
            }
        }
        if t.shape() != target {
            // target may be rank-0 scalar after reductions
            t = t.reshape(target.dims());
        }
        t
    }

    /// (product of dims before `axis`, product of dims after `axis`).
    pub(crate) fn split_at_axis(&self, axis: usize) -> (usize, usize) {
        let dims = self.dims();
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        (outer, inner)
    }

    fn reduce_axis(
        &self,
        axis: usize,
        keep_dim: bool,
        init: f32,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Tensor {
        self.shape().check_axis(axis).expect("reduce axis");
        let n = self.dim(axis);
        let (_, inner) = self.split_at_axis(axis);
        let data = self.as_slice();
        let mut dims = self.dims().to_vec();
        if keep_dim {
            dims[axis] = 1;
        } else {
            dims.remove(axis);
        }
        let mut out_t = Tensor::full(dims, init);
        let out = out_t.as_mut_slice();
        if inner > 0 {
            // Parallel chunks cover whole outer slices, so each output
            // element's reduction (ascending k) stays on one thread and the
            // result is bit-identical at any thread count.
            let grain_outer = (crate::tensor::ELEMWISE_GRAIN / (n * inner).max(1)).max(1);
            hfta_kernels::for_each_chunk_mut(out, grain_outer * inner, |start, chunk| {
                for (rel, orow) in chunk.chunks_mut(inner).enumerate() {
                    let o = start / inner + rel;
                    for k in 0..n {
                        let base = (o * n + k) * inner;
                        for (i, slot) in orow.iter_mut().enumerate() {
                            *slot = f(*slot, data[base + i]);
                        }
                    }
                }
            });
        }
        out_t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> Tensor {
        Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3])
    }

    #[test]
    fn global_reductions() {
        assert_eq!(m23().sum().item(), 21.0);
        assert_eq!(m23().mean().item(), 3.5);
        assert_eq!(m23().max_value(), 6.0);
        assert_eq!(m23().min_value(), 1.0);
    }

    #[test]
    fn sum_axis_both_axes() {
        let s0 = m23().sum_axis(0, false);
        assert_eq!(s0.dims(), &[3]);
        assert_eq!(s0.to_vec(), vec![5.0, 7.0, 9.0]);
        let s1 = m23().sum_axis(1, true);
        assert_eq!(s1.dims(), &[2, 1]);
        assert_eq!(s1.to_vec(), vec![6.0, 15.0]);
    }

    #[test]
    fn mean_and_max_axis() {
        assert_eq!(m23().mean_axis(1, false).to_vec(), vec![2.0, 5.0]);
        assert_eq!(m23().max_axis(0, false).to_vec(), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn argmax_first_tie_wins() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.0], [1, 4]);
        assert_eq!(t.argmax_axis(1).to_vec(), vec![1.0]);
        let t2 = Tensor::from_vec(vec![5.0, 1.0, 2.0, 9.0], [2, 2]);
        assert_eq!(t2.argmax_axis(1).to_vec(), vec![0.0, 1.0]);
        assert_eq!(t2.argmax_axis(0).to_vec(), vec![0.0, 1.0]);
    }

    #[test]
    fn max_with_indices_matches_argmax() {
        let t = Tensor::from_vec(vec![1.0, 7.0, 4.0, 2.0, 0.0, 3.0], [2, 3]);
        let (m, idx) = t.max_axis_with_indices(1);
        assert_eq!(m.to_vec(), vec![7.0, 3.0]);
        assert_eq!(idx, vec![1, 2]);
    }

    #[test]
    fn sum_to_undoes_broadcast() {
        // Broadcasting [3] across [2,3] then summing back.
        let g = Tensor::ones([2, 3]);
        let reduced = g.sum_to(&Shape::new(vec![3]));
        assert_eq!(reduced.to_vec(), vec![2.0, 2.0, 2.0]);
        let reduced2 = g.sum_to(&Shape::new(vec![2, 1]));
        assert_eq!(reduced2.to_vec(), vec![3.0, 3.0]);
        let reduced3 = g.sum_to(&Shape::scalar());
        assert_eq!(reduced3.item(), 6.0);
    }

    #[test]
    fn sum_to_identity_when_same_shape() {
        let t = m23();
        assert_eq!(t.sum_to(&t.shape().clone()), t);
    }

    #[test]
    fn middle_axis_reduction() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]);
        let s = t.sum_axis(1, false);
        assert_eq!(s.dims(), &[2, 4]);
        // First outer block: rows [0..4],[4..8],[8..12] summed columnwise.
        assert_eq!(s.at(&[0, 0]), 0.0 + 4.0 + 8.0);
        assert_eq!(s.at(&[1, 3]), 15.0 + 19.0 + 23.0);
    }
}
