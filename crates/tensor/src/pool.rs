//! Max pooling with argmax indices and its gradient.

use crate::tensor::Tensor;

/// Result of a max-pool forward pass: the pooled output plus flat argmax
/// indices into the *input's* spatial plane, needed by the backward pass.
#[derive(Debug, Clone)]
pub struct MaxPool2dOutput {
    /// Pooled output `[N, C, Ho, Wo]`.
    pub output: Tensor,
    /// For every output element, the flat `h * W + w` index of the winning
    /// input element within its `[H, W]` plane.
    pub indices: Vec<usize>,
}

/// 2-D max pooling over `[N, C, H, W]` with square-window semantics of
/// `torch.nn.MaxPool2d(kernel, stride)`.
///
/// # Panics
///
/// Panics if the input is not 4-D or the window geometry is inconsistent.
pub fn max_pool2d(x: &Tensor, kernel: (usize, usize), stride: (usize, usize)) -> MaxPool2dOutput {
    assert_eq!(x.rank(), 4, "max_pool2d input must be [N, C, H, W]");
    let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (kh, kw) = kernel;
    let (sh, sw) = stride;
    assert!(
        kh > 0 && kw > 0 && sh > 0 && sw > 0,
        "degenerate pool geometry"
    );
    assert!(h >= kh && w >= kw, "pool window larger than input");
    let ho = (h - kh) / sh + 1;
    let wo = (w - kw) / sw + 1;
    let src = x.as_slice();
    let mut out_t = Tensor::full([n, c, ho, wo], f32::NEG_INFINITY);
    let out = out_t.as_mut_slice();
    let mut indices = vec![0usize; n * c * ho * wo];
    for nc in 0..n * c {
        let plane = &src[nc * h * w..(nc + 1) * h * w];
        for p in 0..ho {
            for q in 0..wo {
                let o = (nc * ho + p) * wo + q;
                for u in 0..kh {
                    let row = (p * sh + u) * w + q * sw;
                    for v in 0..kw {
                        let val = plane[row + v];
                        if val > out[o] {
                            out[o] = val;
                            indices[o] = row + v;
                        }
                    }
                }
            }
        }
    }
    MaxPool2dOutput {
        output: out_t,
        indices,
    }
}

/// Gradient of [`max_pool2d`]: routes each output gradient to its winning
/// input position.
///
/// # Panics
///
/// Panics if `gy`'s element count disagrees with `indices`.
pub fn max_pool2d_backward(gy: &Tensor, indices: &[usize], input_dims: &[usize]) -> Tensor {
    assert_eq!(gy.numel(), indices.len(), "grad/index length mismatch");
    assert_eq!(input_dims.len(), 4, "input dims must be [N, C, H, W]");
    let (h, w) = (input_dims[2], input_dims[3]);
    let plane = h * w;
    let (ho, wo) = (gy.dim(2), gy.dim(3));
    let oplane = ho * wo;
    let mut gx_t = Tensor::zeros(input_dims.to_vec());
    let gx = gx_t.as_mut_slice();
    let g = gy.as_slice();
    for (o, &ix) in indices.iter().enumerate() {
        let nc = o / oplane;
        gx[nc * plane + ix] += g[o];
    }
    gx_t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_2x2_stride_2() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            [1, 1, 4, 4],
        );
        let r = max_pool2d(&x, (2, 2), (2, 2));
        assert_eq!(r.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(r.output.to_vec(), vec![4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn pool_overlapping_windows() {
        let x = Tensor::arange(9).reshape(&[1, 1, 3, 3]);
        let r = max_pool2d(&x, (2, 2), (1, 1));
        assert_eq!(r.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(r.output.to_vec(), vec![4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 0.0], [1, 1, 2, 2]);
        let r = max_pool2d(&x, (2, 2), (2, 2));
        assert_eq!(r.output.item(), 3.0);
        let gy = Tensor::from_vec(vec![5.0], [1, 1, 1, 1]);
        let gx = max_pool2d_backward(&gy, &r.indices, &[1, 1, 2, 2]);
        assert_eq!(gx.to_vec(), vec![0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn backward_accumulates_on_overlap() {
        // With stride 1, the same (max) input element can win two windows.
        let x = Tensor::from_vec(
            vec![0.0, 0.0, 0.0, 0.0, 9.0, 0.0, 0.0, 0.0, 0.0],
            [1, 1, 3, 3],
        );
        let r = max_pool2d(&x, (2, 2), (1, 1));
        let gy = Tensor::ones([1, 1, 2, 2]);
        let gx = max_pool2d_backward(&gy, &r.indices, &[1, 1, 3, 3]);
        assert_eq!(gx.at(&[0, 0, 1, 1]), 4.0);
        assert_eq!(gx.sum().item(), 4.0);
    }

    #[test]
    fn channels_pool_independently() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, // channel 0
                40.0, 30.0, 20.0, 10.0, // channel 1
            ],
            [1, 2, 2, 2],
        );
        let r = max_pool2d(&x, (2, 2), (2, 2));
        assert_eq!(r.output.to_vec(), vec![4.0, 40.0]);
    }
}
