//! Softmax-family kernels along an arbitrary axis.

use crate::tensor::Tensor;

impl Tensor {
    /// Numerically stable softmax along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range or the axis is empty.
    pub fn softmax(&self, axis: usize) -> Tensor {
        self.log_softmax(axis).exp()
    }

    /// Numerically stable log-softmax along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range or the axis is empty.
    pub fn log_softmax(&self, axis: usize) -> Tensor {
        self.shape().check_axis(axis).expect("log_softmax axis");
        let n = self.dim(axis);
        assert!(n > 0, "log_softmax over empty axis");
        let (outer, inner) = self.split_at_axis(axis);
        let src = self.as_slice();
        let mut out_t = Tensor::zeros(self.shape().clone());
        let out = out_t.as_mut_slice();
        for o in 0..outer {
            for i in 0..inner {
                let mut mx = f32::NEG_INFINITY;
                for k in 0..n {
                    mx = mx.max(src[(o * n + k) * inner + i]);
                }
                let mut sum = 0.0f32;
                for k in 0..n {
                    sum += (src[(o * n + k) * inner + i] - mx).exp();
                }
                let lse = mx + sum.ln();
                for k in 0..n {
                    let idx = (o * n + k) * inner + i;
                    out[idx] = src[idx] - lse;
                }
            }
        }
        out_t
    }
}

/// Gradient of [`Tensor::log_softmax`]: `gx = gy - softmax(x) * sum(gy)`
/// along the same axis.
pub fn log_softmax_backward(gy: &Tensor, log_probs: &Tensor, axis: usize) -> Tensor {
    let sum_gy = gy.sum_axis(axis, true);
    gy.sub(&log_probs.exp().mul(&sum_gy))
}

/// Gradient of [`Tensor::softmax`]:
/// `gx = probs * (gy - sum(gy * probs))` along the same axis.
pub fn softmax_backward(gy: &Tensor, probs: &Tensor, axis: usize) -> Tensor {
    let dot = gy.mul(probs).sum_axis(axis, true);
    probs.mul(&gy.sub(&dot))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], [2, 3]);
        let s = t.softmax(1);
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| s.at(&[r, c])).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Uniform logits → uniform probabilities.
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2]).softmax(1);
        let b = Tensor::from_vec(vec![1001.0, 1002.0], [1, 2]).softmax(1);
        // f32 ulp at magnitude ~1e3 dominates; shapes agree to ~1e-4.
        assert!(a.allclose(&b, 1e-4));
        assert!(!b.has_non_finite());
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let t = Tensor::from_vec(vec![0.5, -1.0, 2.0], [1, 3]);
        let ls = t.log_softmax(1);
        let expected = t.softmax(1).ln();
        assert!(ls.allclose(&expected, 1e-5));
    }

    #[test]
    fn softmax_along_axis0() {
        let t = Tensor::from_vec(vec![0.0, 0.0, 100.0, 0.0], [2, 2]);
        let s = t.softmax(0);
        assert!((s.at(&[1, 0]) - 1.0).abs() < 1e-5);
        assert!((s.at(&[0, 1]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_backward_numeric() {
        let x = Tensor::from_vec(vec![0.3, -0.8, 0.5, 1.1], [2, 2]);
        let w = Tensor::from_vec(vec![0.7, -0.2, 0.4, 0.9], [2, 2]);
        let loss = |x: &Tensor| x.log_softmax(1).mul(&w).sum().item();
        let ana = log_softmax_backward(&w, &x.log_softmax(1), 1);
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!((num - ana.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_backward_numeric() {
        let x = Tensor::from_vec(vec![0.1, 0.9, -0.4, 0.2], [2, 2]);
        let w = Tensor::from_vec(vec![1.0, -1.0, 0.5, 0.25], [2, 2]);
        let loss = |x: &Tensor| x.softmax(1).mul(&w).sum().item();
        let ana = softmax_backward(&w, &x.softmax(1), 1);
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!((num - ana.as_slice()[i]).abs() < 1e-3);
        }
    }
}
