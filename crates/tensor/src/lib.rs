//! # hfta-tensor
//!
//! Dense `f32` n-dimensional tensors and the neural-network kernels needed
//! by the HFTA (Horizontally Fused Training Array, MLSys 2021)
//! reproduction: broadcasting arithmetic, reductions, batched GEMM
//! (`bmm`/`baddbmm`), **grouped** (transposed) convolutions, max pooling,
//! batch normalization and softmax — each with the gradient kernels the
//! autograd layer (`hfta-nn`) builds on.
//!
//! Grouped convolution and `baddbmm` deserve the emphasis: they are the
//! already-well-optimized operators that HFTA's inter-model horizontal
//! fusion maps onto (Table 6 of the paper).
//!
//! # Example
//!
//! ```
//! use hfta_tensor::{conv::{conv2d, ConvCfg}, Rng, Tensor};
//!
//! let mut rng = Rng::seed_from(0);
//! let x = rng.randn([1, 3, 8, 8]);
//! let w = rng.randn([16, 3, 3, 3]);
//! let y = conv2d(&x, &w, None, ConvCfg::square(1, 1, 1));
//! assert_eq!(y.dims(), &[1, 16, 8, 8]);
//! ```

#![warn(missing_docs)]

pub mod activation;
pub mod conv;
mod elementwise;
pub mod error;
mod init;
mod layout;
mod linalg;
pub mod norm;
pub mod pool;
mod reduce;
mod shape;
mod tensor;

pub use error::{Result, TensorError};
pub use init::Rng;
pub use shape::{IndexIter, Shape};
pub use tensor::Tensor;
