//! Error types for tensor operations.

use std::fmt;

/// Errors produced by fallible tensor operations.
///
/// Most arithmetic entry points in this crate panic on shape mismatches
/// (mirroring the ergonomics of mainstream DL frameworks, where shape bugs
/// are programming errors), but conversion and validation APIs return
/// `Result<_, TensorError>` so callers can recover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match (or broadcast) did not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// A reshape was requested to a shape with a different element count.
    InvalidReshape {
        /// Element count of the source tensor.
        from: usize,
        /// Requested target shape.
        to: Vec<usize>,
    },
    /// An axis argument was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// A dimension did not satisfy a divisibility requirement
    /// (e.g. grouped convolution channel counts).
    NotDivisible {
        /// The quantity that had to be divisible.
        value: usize,
        /// The required divisor.
        by: usize,
        /// Human-readable context.
        what: &'static str,
    },
    /// An argument had an invalid value (zero-size dim, empty input, ...).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::InvalidReshape { from, to } => {
                write!(f, "cannot reshape {from} elements into {to:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::NotDivisible { value, by, what } => {
                write!(f, "{what} ({value}) is not divisible by {by}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience alias for tensor results.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = TensorError::ShapeMismatch {
            lhs: vec![2, 3],
            rhs: vec![4],
            op: "add",
        };
        let msg = err.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn invalid_reshape_display() {
        let err = TensorError::InvalidReshape {
            from: 6,
            to: vec![4],
        };
        assert_eq!(err.to_string(), "cannot reshape 6 elements into [4]");
    }
}
