//! The dense tensor type.

use crate::error::{Result, TensorError};
use crate::shape::Shape;
use hfta_mem::Storage;

/// Elements per parallel chunk for elementwise/reduction loops. Chunk
/// boundaries depend only on this constant and the tensor size — never the
/// thread count — so results are identical on any pool size (the chunked
/// loops below don't split any float accumulation across chunks).
pub(crate) const ELEMWISE_GRAIN: usize = 1 << 15;

/// A dense, row-major, contiguous `f32` tensor.
///
/// `Tensor` is the storage substrate for the whole HFTA reproduction: the
/// autograd engine in `hfta-nn` wraps it, and the fused operators in
/// `hfta-core` are expressed entirely in terms of its kernels (grouped
/// convolution, `baddbmm`, widened batch-norm, ...).
///
/// All layout-changing ops materialize new storage — simplicity and
/// predictability over zero-copy views. Storage comes from the `hfta-mem`
/// size-class pool: dropped tensors recycle their buffers into later
/// allocations (bit-identically — recycled buffers are value-filled
/// exactly as a fresh `vec![fill; len]` would be), and live/peak bytes are
/// tracked per class (`hfta_mem::stats`).
///
/// # Example
///
/// ```
/// use hfta_tensor::Tensor;
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// let b = Tensor::ones([2, 2]);
/// let c = a.add(&b);
/// assert_eq!(c.to_vec(), vec![2.0, 3.0, 4.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    data: Storage,
    shape: Shape,
}

impl Tensor {
    // ---------------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------------

    /// Creates a tensor from a flat `Vec` and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor {
            data: Storage::from_vec(data),
            shape,
        }
    }

    /// Fallible variant of [`Tensor::from_vec`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] if the lengths disagree.
    pub fn try_from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.numel() {
            return Err(TensorError::InvalidReshape {
                from: data.len(),
                to: shape.dims().to_vec(),
            });
        }
        Ok(Tensor {
            data: Storage::from_vec(data),
            shape,
        })
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: Storage::filled(1, value),
            shape: Shape::scalar(),
        }
    }

    /// Tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor {
            data: Storage::filled(shape.numel(), value),
            shape,
        }
    }

    /// Tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 0.0)
    }

    /// Pooled copy of this tensor's elements under a new shape of equal
    /// element count — the storage-recycling backbone of `reshape`.
    pub(crate) fn copy_with_shape(&self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        debug_assert_eq!(self.data.len(), shape.numel());
        Tensor {
            data: Storage::copy_of(self.data.as_slice()),
            shape,
        }
    }

    /// Pooled copy of a slice — unlike [`Tensor::from_vec`], the backing
    /// buffer comes from the recycling pool, so hot paths that build a
    /// tensor from scratch data stay allocation-free at steady state.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_slice(data: &[f32], shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Tensor {
            data: Storage::copy_of(data),
            shape,
        }
    }

    /// Tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Zeros with the same shape as `self`.
    pub fn zeros_like(&self) -> Self {
        Self::zeros(self.shape.clone())
    }

    /// Ones with the same shape as `self`.
    pub fn ones_like(&self) -> Self {
        Self::ones(self.shape.clone())
    }

    /// `[0, 1, ..., n-1]` as a 1-D tensor.
    pub fn arange(n: usize) -> Self {
        Tensor::from_vec((0..n).map(|i| i as f32).collect(), [n])
    }

    /// `n` evenly spaced values from `start` to `end` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        assert!(n > 0, "linspace needs at least one point");
        if n == 1 {
            return Tensor::from_vec(vec![start], [1]);
        }
        let step = (end - start) / (n - 1) as f32;
        Tensor::from_vec((0..n).map(|i| start + step * i as f32).collect(), [n])
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    // ---------------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn dim(&self, axis: usize) -> usize {
        self.shape.dim(axis)
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Immutable view of the underlying storage (row-major).
    pub fn as_slice(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Mutable view of the underlying storage (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data.as_mut_slice()
    }

    /// Copies the storage into a fresh (unpooled) `Vec`.
    pub fn to_vec(&self) -> Vec<f32> {
        self.data.as_slice().to_vec()
    }

    /// Consumes the tensor, returning its storage as a plain `Vec` (the
    /// buffer leaves the pool's accounting).
    pub fn into_vec(self) -> Vec<f32> {
        self.data.into_vec()
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on out-of-range indices.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on out-of-range indices.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() requires exactly one element, shape is {}",
            self.shape
        );
        self.data[0]
    }

    /// Whether any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Maximum absolute elementwise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Whether all elements are within `tol` of `other`'s.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }

    // ---------------------------------------------------------------------
    // Pointwise construction helpers (used by the op modules)
    // ---------------------------------------------------------------------

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let src = self.data.as_slice();
        let mut data = Storage::zeroed(src.len());
        hfta_kernels::for_each_chunk_mut(data.as_mut_slice(), ELEMWISE_GRAIN, |start, chunk| {
            let len = chunk.len();
            for (o, &v) in chunk.iter_mut().zip(&src[start..start + len]) {
                *o = f(v);
            }
        });
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        hfta_kernels::for_each_chunk_mut(self.data.as_mut_slice(), ELEMWISE_GRAIN, |_, chunk| {
            for v in chunk {
                *v = f(*v);
            }
        });
    }

    /// Combines two same-shaped tensors elementwise (no broadcasting).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ; use the broadcasting binary ops
    /// ([`Tensor::add`], [`Tensor::mul`], ...) otherwise.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip requires identical shapes ({} vs {})",
            self.shape, other.shape
        );
        let (da, db) = (self.data.as_slice(), other.data.as_slice());
        let mut data = Storage::zeroed(da.len());
        hfta_kernels::for_each_chunk_mut(data.as_mut_slice(), ELEMWISE_GRAIN, |start, chunk| {
            for (j, o) in chunk.iter_mut().enumerate() {
                *o = f(da[start + j], db[start + j]);
            }
        });
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:?}, ..., {:?}]",
                &self.data[..4],
                &self.data[self.numel() - 4..]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        let t = Tensor::from_vec(vec![1.0, 2.0], [2]);
        assert_eq!(t.dims(), &[2]);
        assert!(Tensor::try_from_vec(vec![1.0], [2]).is_err());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_panics_on_wrong_length() {
        let _ = Tensor::from_vec(vec![1.0], [2]);
    }

    #[test]
    fn constructors_fill_correctly() {
        assert_eq!(Tensor::zeros([2, 2]).to_vec(), vec![0.0; 4]);
        assert_eq!(Tensor::ones([3]).to_vec(), vec![1.0; 3]);
        assert_eq!(Tensor::full([2], 7.5).to_vec(), vec![7.5, 7.5]);
        assert_eq!(Tensor::arange(4).to_vec(), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn eye_is_identity() {
        let e = Tensor::eye(3);
        assert_eq!(e.at(&[0, 0]), 1.0);
        assert_eq!(e.at(&[1, 2]), 0.0);
        assert_eq!(e.as_slice().iter().sum::<f32>(), 3.0);
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(0.0, 1.0, 5);
        assert_eq!(t.to_vec(), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(Tensor::linspace(3.0, 9.0, 1).to_vec(), vec![3.0]);
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros([2, 3]);
        t.set(&[1, 2], 5.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
        assert_eq!(t.as_slice()[5], 5.0);
    }

    #[test]
    fn item_scalar() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    #[should_panic(expected = "exactly one element")]
    fn item_panics_on_multi_element() {
        Tensor::zeros([2]).item();
    }

    #[test]
    fn allclose_and_diff() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![1.0, 2.1], [2]);
        assert!((a.max_abs_diff(&b) - 0.1).abs() < 1e-6);
        assert!(a.allclose(&b, 0.2));
        assert!(!a.allclose(&b, 0.05));
    }

    #[test]
    fn has_non_finite_detects_nan_and_inf() {
        let mut t = Tensor::zeros([2]);
        assert!(!t.has_non_finite());
        t.set(&[0], f32::NAN);
        assert!(t.has_non_finite());
    }

    #[test]
    fn display_truncates_large_tensors() {
        let small = format!("{}", Tensor::ones([2]));
        assert!(small.contains("1.0"));
        let large = format!("{}", Tensor::zeros([100]));
        assert!(large.contains("..."));
    }
}
