//! Shape arithmetic: dimension bookkeeping, strides and broadcasting.

use crate::error::{Result, TensorError};

/// The shape (dimension sizes) of a tensor.
///
/// Shapes are always row-major; [`Shape::strides`] returns the contiguous
/// row-major strides. A rank-0 shape denotes a scalar with one element.
///
/// # Example
///
/// ```
/// use hfta_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension sizes.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// The scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dims; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major (C-contiguous) strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the index rank or any coordinate is out of
    /// range.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for i in (0..self.dims.len()).rev() {
            debug_assert!(index[i] < self.dims[i], "index out of bounds");
            off += index[i] * stride;
            stride *= self.dims[i];
        }
        off
    }

    /// Validates `axis` against the rank.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] when `axis >= rank`.
    pub fn check_axis(&self, axis: usize) -> Result<()> {
        if axis >= self.rank() {
            Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
        } else {
            Ok(())
        }
    }

    /// Computes the NumPy-style broadcast of two shapes.
    ///
    /// Dimensions are aligned from the trailing end; a dimension of size 1
    /// broadcasts against any size.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if any aligned pair of
    /// dimensions differs and neither is 1.
    ///
    /// # Example
    ///
    /// ```
    /// use hfta_tensor::Shape;
    /// let a = Shape::new(vec![4, 1, 3]);
    /// let b = Shape::new(vec![2, 1]);
    /// assert_eq!(a.broadcast(&b).unwrap().dims(), &[4, 2, 3]);
    /// ```
    pub fn broadcast(&self, other: &Shape) -> Result<Shape> {
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0; rank];
        #[allow(clippy::needless_range_loop)]
        for i in 0..rank {
            let a = if i < rank - self.rank() {
                1
            } else {
                self.dims[i - (rank - self.rank())]
            };
            let b = if i < rank - other.rank() {
                1
            } else {
                other.dims[i - (rank - other.rank())]
            };
            dims[i] = if a == b || b == 1 {
                a
            } else if a == 1 {
                b
            } else {
                return Err(TensorError::ShapeMismatch {
                    lhs: self.dims.clone(),
                    rhs: other.dims.clone(),
                    op: "broadcast",
                });
            };
        }
        Ok(Shape::new(dims))
    }

    /// Whether this shape broadcasts to `target` without ambiguity.
    pub fn broadcasts_to(&self, target: &Shape) -> bool {
        match self.broadcast(target) {
            Ok(b) => b == *target,
            Err(_) => false,
        }
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

/// Iterates over all multi-dimensional indices of a shape in row-major order.
///
/// Produced by [`Shape`]-driven loops in kernels that cannot be expressed as
/// flat traversals (e.g. broadcast binary ops).
#[derive(Debug, Clone)]
pub struct IndexIter {
    dims: Vec<usize>,
    current: Vec<usize>,
    done: bool,
}

impl IndexIter {
    /// Creates an iterator over all indices of `shape`.
    pub fn new(shape: &Shape) -> Self {
        let done = shape.numel() == 0;
        IndexIter {
            dims: shape.dims().to_vec(),
            current: vec![0; shape.rank()],
            done,
        }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.current.clone();
        // Advance odometer-style.
        let mut i = self.dims.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.current[i] += 1;
            if self.current[i] < self.dims[i] {
                break;
            }
            self.current[i] = 0;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(vec![5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn numel_counts_elements() {
        assert_eq!(Shape::new(vec![2, 3]).numel(), 6);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::new(vec![0, 7]).numel(), 0);
    }

    #[test]
    fn offset_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
        assert_eq!(s.offset(&[0, 1, 2]), 6);
    }

    #[test]
    fn broadcast_rules() {
        let a = Shape::new(vec![4, 1, 3]);
        let b = Shape::new(vec![2, 1]);
        assert_eq!(a.broadcast(&b).unwrap().dims(), &[4, 2, 3]);
        let s = Shape::scalar();
        assert_eq!(a.broadcast(&s).unwrap(), a);
        let bad = Shape::new(vec![4, 2, 2]);
        assert!(a.broadcast(&bad).is_err());
    }

    #[test]
    fn broadcasts_to_is_directional() {
        let a = Shape::new(vec![1, 3]);
        let t = Shape::new(vec![5, 3]);
        assert!(a.broadcasts_to(&t));
        assert!(!t.broadcasts_to(&a));
    }

    #[test]
    fn index_iter_row_major_order() {
        let s = Shape::new(vec![2, 2]);
        let all: Vec<_> = IndexIter::new(&s).collect();
        assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn index_iter_empty_shape_yields_nothing() {
        let s = Shape::new(vec![0, 3]);
        assert_eq!(IndexIter::new(&s).count(), 0);
    }

    #[test]
    fn index_iter_scalar_yields_one_empty_index() {
        let all: Vec<_> = IndexIter::new(&Shape::scalar()).collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn check_axis_bounds() {
        let s = Shape::new(vec![2, 3]);
        assert!(s.check_axis(1).is_ok());
        assert!(s.check_axis(2).is_err());
    }
}
