//! Layout transforms: reshape, permute, concatenation, slicing, padding.
//!
//! All transforms materialize new contiguous storage.

use crate::tensor::Tensor;

impl Tensor {
    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let numel: usize = dims.iter().product();
        assert_eq!(
            numel,
            self.numel(),
            "cannot reshape {} elements into {:?}",
            self.numel(),
            dims
        );
        self.copy_with_shape(dims.to_vec())
    }

    /// Flattens into a 1-D tensor.
    pub fn flatten(&self) -> Tensor {
        self.reshape(&[self.numel()])
    }

    /// Flattens all dimensions from `start_axis` onward into one.
    ///
    /// # Panics
    ///
    /// Panics if `start_axis >= rank`.
    pub fn flatten_from(&self, start_axis: usize) -> Tensor {
        assert!(start_axis < self.rank(), "flatten_from axis out of range");
        let mut dims: Vec<usize> = self.dims()[..start_axis].to_vec();
        dims.push(self.dims()[start_axis..].iter().product());
        self.reshape(&dims)
    }

    /// Inserts a size-1 axis at `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis > rank`.
    pub fn unsqueeze(&self, axis: usize) -> Tensor {
        assert!(axis <= self.rank(), "unsqueeze axis out of range");
        let mut dims = self.dims().to_vec();
        dims.insert(axis, 1);
        self.reshape(&dims)
    }

    /// Removes a size-1 axis at `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the axis is out of range or not of size 1.
    pub fn squeeze(&self, axis: usize) -> Tensor {
        assert!(axis < self.rank(), "squeeze axis out of range");
        assert_eq!(self.dim(axis), 1, "squeeze axis must have size 1");
        let mut dims = self.dims().to_vec();
        dims.remove(axis);
        self.reshape(&dims)
    }

    /// Permutes axes into the given order, materializing the result.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..rank`.
    pub fn permute(&self, order: &[usize]) -> Tensor {
        assert_eq!(order.len(), self.rank(), "permute rank mismatch");
        let mut seen = vec![false; self.rank()];
        for &a in order {
            assert!(a < self.rank() && !seen[a], "permute order invalid");
            seen[a] = true;
        }
        let src_dims = self.dims();
        let new_dims: Vec<usize> = order.iter().map(|&a| src_dims[a]).collect();
        let src_strides = self.shape().strides();
        // stride of output axis i in the source layout
        let walk_strides: Vec<usize> = order.iter().map(|&a| src_strides[a]).collect();
        let mut out_t = Tensor::zeros(new_dims.clone());
        let src = self.as_slice();
        let rank = new_dims.len();
        let mut idx = vec![0usize; rank];
        let mut src_off = 0usize;
        for slot in out_t.as_mut_slice().iter_mut() {
            *slot = src[src_off];
            for axis in (0..rank).rev() {
                idx[axis] += 1;
                src_off += walk_strides[axis];
                if idx[axis] < new_dims[axis] {
                    break;
                }
                idx[axis] = 0;
                src_off -= walk_strides[axis] * new_dims[axis];
            }
        }
        out_t
    }

    /// Swaps two axes.
    ///
    /// # Panics
    ///
    /// Panics if either axis is out of range.
    pub fn transpose(&self, a: usize, b: usize) -> Tensor {
        let mut order: Vec<usize> = (0..self.rank()).collect();
        order.swap(a, b);
        self.permute(&order)
    }

    /// Matrix transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn t(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "t() requires a 2-D tensor");
        self.transpose(0, 1)
    }

    /// Concatenates tensors along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `tensors` is empty, ranks differ, or non-`axis` dims differ.
    pub fn concat(tensors: &[&Tensor], axis: usize) -> Tensor {
        assert!(!tensors.is_empty(), "concat of zero tensors");
        let first = tensors[0];
        assert!(axis < first.rank(), "concat axis out of range");
        for t in tensors {
            assert_eq!(t.rank(), first.rank(), "concat rank mismatch");
            for d in 0..first.rank() {
                if d != axis {
                    assert_eq!(t.dim(d), first.dim(d), "concat dim {d} mismatch");
                }
            }
        }
        let (outer, inner) = first.split_at_axis(axis);
        let total_axis: usize = tensors.iter().map(|t| t.dim(axis)).sum();
        let mut dims = first.dims().to_vec();
        dims[axis] = total_axis;
        let mut out_t = Tensor::zeros(dims);
        let out = out_t.as_mut_slice();
        let mut axis_off = 0usize;
        for t in tensors {
            let n = t.dim(axis);
            let src = t.as_slice();
            for o in 0..outer {
                let dst_base = (o * total_axis + axis_off) * inner;
                let src_base = o * n * inner;
                out[dst_base..dst_base + n * inner]
                    .copy_from_slice(&src[src_base..src_base + n * inner]);
            }
            axis_off += n;
        }
        out_t
    }

    /// Splits into `chunks` equal parts along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the axis size is not divisible by `chunks`.
    pub fn chunk(&self, chunks: usize, axis: usize) -> Vec<Tensor> {
        assert!(chunks > 0, "chunk count must be positive");
        let n = self.dim(axis);
        assert_eq!(
            n % chunks,
            0,
            "axis {axis} size {n} not divisible by {chunks}"
        );
        let each = n / chunks;
        (0..chunks)
            .map(|c| self.narrow(axis, c * each, each))
            .collect()
    }

    /// Slice of `len` elements starting at `start` along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the axis bounds.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Tensor {
        assert!(axis < self.rank(), "narrow axis out of range");
        let n = self.dim(axis);
        assert!(
            start + len <= n,
            "narrow window [{start}, {start}+{len}) out of bounds for axis size {n}"
        );
        let (outer, inner) = self.split_at_axis(axis);
        let src = self.as_slice();
        let mut dims = self.dims().to_vec();
        dims[axis] = len;
        let mut out_t = Tensor::zeros(dims);
        let out = out_t.as_mut_slice();
        for o in 0..outer {
            let src_base = (o * n + start) * inner;
            let dst_base = o * len * inner;
            out[dst_base..dst_base + len * inner]
                .copy_from_slice(&src[src_base..src_base + len * inner]);
        }
        out_t
    }

    /// Writes `src` into the window of `len = src.dim(axis)` elements
    /// starting at `start` along `axis` — the scatter counterpart of
    /// [`Tensor::narrow`], used when unfusing gradients back to models.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible or the window is out of bounds.
    pub fn narrow_assign(&mut self, axis: usize, start: usize, src: &Tensor) {
        assert!(axis < self.rank(), "narrow_assign axis out of range");
        assert_eq!(src.rank(), self.rank(), "narrow_assign rank mismatch");
        let len = src.dim(axis);
        let n = self.dim(axis);
        assert!(start + len <= n, "narrow_assign window out of bounds");
        for d in 0..self.rank() {
            if d != axis {
                assert_eq!(self.dim(d), src.dim(d), "narrow_assign dim {d} mismatch");
            }
        }
        let (outer, inner) = self.split_at_axis(axis);
        let s = src.as_slice();
        let dst = self.as_mut_slice();
        for o in 0..outer {
            let dst_base = (o * n + start) * inner;
            let src_base = o * len * inner;
            dst[dst_base..dst_base + len * inner]
                .copy_from_slice(&s[src_base..src_base + len * inner]);
        }
    }

    /// Selects rows along `axis` by index.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn index_select(&self, axis: usize, indices: &[usize]) -> Tensor {
        assert!(axis < self.rank(), "index_select axis out of range");
        let n = self.dim(axis);
        let (outer, inner) = self.split_at_axis(axis);
        let src = self.as_slice();
        let mut dims = self.dims().to_vec();
        dims[axis] = indices.len();
        let mut out_t = Tensor::zeros(dims);
        let out = out_t.as_mut_slice();
        for o in 0..outer {
            for (j, &ix) in indices.iter().enumerate() {
                assert!(ix < n, "index {ix} out of range for axis size {n}");
                let src_base = (o * n + ix) * inner;
                let dst_base = (o * indices.len() + j) * inner;
                out[dst_base..dst_base + inner].copy_from_slice(&src[src_base..src_base + inner]);
            }
        }
        out_t
    }

    /// Repeats each element along `axis` `repeats` times
    /// (`torch.repeat_interleave` semantics).
    ///
    /// Used to broadcast per-model optimizer hyper-parameters over fused
    /// parameter tensors of shape `[B * C, ...]`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range or `repeats == 0`.
    pub fn repeat_interleave(&self, repeats: usize, axis: usize) -> Tensor {
        assert!(axis < self.rank(), "repeat_interleave axis out of range");
        assert!(repeats > 0, "repeats must be positive");
        let indices: Vec<usize> = (0..self.dim(axis))
            .flat_map(|i| std::iter::repeat_n(i, repeats))
            .collect();
        self.index_select(axis, &indices)
    }

    /// Tiles the whole tensor `repeats` times along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range or `repeats == 0`.
    pub fn tile(&self, repeats: usize, axis: usize) -> Tensor {
        assert!(repeats > 0, "repeats must be positive");
        let copies: Vec<&Tensor> = std::iter::repeat_n(self, repeats).collect();
        Tensor::concat(&copies, axis)
    }

    /// Zero-pads the last two axes by `(pad_h, pad_w)` on each side.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has rank < 2.
    pub fn pad2d(&self, pad_h: usize, pad_w: usize) -> Tensor {
        assert!(self.rank() >= 2, "pad2d requires rank >= 2");
        if pad_h == 0 && pad_w == 0 {
            return self.clone();
        }
        let rank = self.rank();
        let h = self.dim(rank - 2);
        let w = self.dim(rank - 1);
        let outer: usize = self.dims()[..rank - 2].iter().product();
        let nh = h + 2 * pad_h;
        let nw = w + 2 * pad_w;
        let src = self.as_slice();
        let mut dims = self.dims().to_vec();
        dims[rank - 2] = nh;
        dims[rank - 1] = nw;
        let mut out_t = Tensor::zeros(dims);
        let out = out_t.as_mut_slice();
        for o in 0..outer {
            for y in 0..h {
                let src_base = (o * h + y) * w;
                let dst_base = (o * nh + y + pad_h) * nw + pad_w;
                out[dst_base..dst_base + w].copy_from_slice(&src[src_base..src_base + w]);
            }
        }
        out_t
    }

    /// Removes `(pad_h, pad_w)` from each side of the last two axes —
    /// the adjoint of [`Tensor::pad2d`].
    ///
    /// # Panics
    ///
    /// Panics if the padding exceeds the axis sizes.
    pub fn unpad2d(&self, pad_h: usize, pad_w: usize) -> Tensor {
        if pad_h == 0 && pad_w == 0 {
            return self.clone();
        }
        let rank = self.rank();
        let h = self.dim(rank - 2);
        let w = self.dim(rank - 1);
        assert!(h > 2 * pad_h && w > 2 * pad_w, "unpad2d exceeds dims");
        self.narrow(rank - 2, pad_h, h - 2 * pad_h)
            .narrow(rank - 1, pad_w, w - 2 * pad_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_and_flatten() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.flatten().dims(), &[6]);
        assert_eq!(t.flatten_from(1).dims(), &[2, 3]);
        let t4 = Tensor::arange(24).reshape(&[2, 3, 2, 2]);
        assert_eq!(t4.flatten_from(1).dims(), &[2, 12]);
    }

    #[test]
    fn squeeze_unsqueeze_round_trip() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        let u = t.unsqueeze(1);
        assert_eq!(u.dims(), &[2, 1, 3]);
        assert_eq!(u.squeeze(1).dims(), &[2, 3]);
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let tt = t.t();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.to_vec(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        // Involution.
        assert_eq!(tt.t(), t);
    }

    #[test]
    fn permute_3d() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]);
        let p = t.permute(&[2, 0, 1]);
        assert_eq!(p.dims(), &[4, 2, 3]);
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..4 {
                    assert_eq!(p.at(&[c, a, b]), t.at(&[a, b, c]));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "permute order invalid")]
    fn permute_rejects_duplicates() {
        Tensor::zeros([2, 2]).permute(&[0, 0]);
    }

    #[test]
    fn concat_axis0_and_1() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], [1, 2]);
        let c0 = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c0.dims(), &[2, 2]);
        assert_eq!(c0.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        let c1 = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c1.dims(), &[1, 4]);
        assert_eq!(c1.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn chunk_then_concat_round_trip() {
        let t = Tensor::arange(12).reshape(&[2, 6]);
        let parts = t.chunk(3, 1);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].dims(), &[2, 2]);
        let refs: Vec<&Tensor> = parts.iter().collect();
        assert_eq!(Tensor::concat(&refs, 1), t);
    }

    #[test]
    fn narrow_middle_axis() {
        let t = Tensor::arange(24).reshape(&[2, 3, 4]);
        let n = t.narrow(1, 1, 2);
        assert_eq!(n.dims(), &[2, 2, 4]);
        assert_eq!(n.at(&[0, 0, 0]), t.at(&[0, 1, 0]));
        assert_eq!(n.at(&[1, 1, 3]), t.at(&[1, 2, 3]));
    }

    #[test]
    fn narrow_assign_is_inverse_of_narrow() {
        let t = Tensor::arange(12).reshape(&[3, 4]);
        let mut z = Tensor::zeros([3, 4]);
        z.narrow_assign(0, 1, &t.narrow(0, 1, 1));
        assert_eq!(z.at(&[1, 2]), t.at(&[1, 2]));
        assert_eq!(z.at(&[0, 0]), 0.0);
    }

    #[test]
    fn index_select_rows() {
        let t = Tensor::arange(6).reshape(&[3, 2]);
        let s = t.index_select(0, &[2, 0]);
        assert_eq!(s.to_vec(), vec![4.0, 5.0, 0.0, 1.0]);
    }

    #[test]
    fn repeat_interleave_vs_tile() {
        let t = Tensor::from_vec(vec![1.0, 2.0], [2]);
        assert_eq!(
            t.repeat_interleave(3, 0).to_vec(),
            vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]
        );
        assert_eq!(t.tile(3, 0).to_vec(), vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn pad_unpad_round_trip() {
        let t = Tensor::arange(4).reshape(&[1, 1, 2, 2]);
        let p = t.pad2d(1, 2);
        assert_eq!(p.dims(), &[1, 1, 4, 6]);
        assert_eq!(p.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(p.at(&[0, 0, 1, 2]), t.at(&[0, 0, 0, 0]));
        assert_eq!(p.unpad2d(1, 2), t);
    }
}
