//! Elementwise arithmetic with NumPy-style broadcasting.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Strides of `shape` when broadcast into `out` (0 on broadcast axes),
/// aligned to `out`'s rank.
pub(crate) fn broadcast_strides(shape: &Shape, out: &Shape) -> Vec<usize> {
    let strides = shape.strides();
    let offset = out.rank() - shape.rank();
    let mut result = vec![0; out.rank()];
    for i in 0..shape.rank() {
        result[offset + i] = if shape.dim(i) == 1 { 0 } else { strides[i] };
    }
    result
}

/// Applies `f(a, b)` over the broadcast of the two tensors.
fn broadcast_zip(
    a: &Tensor,
    b: &Tensor,
    f: impl Fn(f32, f32) -> f32 + Sync,
    op: &'static str,
) -> Tensor {
    // Fast path: identical shapes.
    if a.shape() == b.shape() {
        return a.zip(b, f);
    }
    // Fast path: scalar operands.
    if b.numel() == 1 {
        let s = b.as_slice()[0];
        return a.map(|v| f(v, s));
    }
    if a.numel() == 1 {
        let s = a.as_slice()[0];
        return b.map(|v| f(s, v));
    }
    let out_shape = a
        .shape()
        .broadcast(b.shape())
        .unwrap_or_else(|e| panic!("{op}: {e}"));
    let sa = broadcast_strides(a.shape(), &out_shape);
    let sb = broadcast_strides(b.shape(), &out_shape);
    let da = a.as_slice();
    let db = b.as_slice();
    let rank = out_shape.rank();
    let dims = out_shape.dims().to_vec();
    let mut out = Tensor::zeros(out_shape);
    // Odometer walk with incremental source offsets.
    let mut idx = vec![0usize; rank];
    let mut oa = 0usize;
    let mut ob = 0usize;
    for slot in out.as_mut_slice().iter_mut() {
        *slot = f(da[oa], db[ob]);
        for axis in (0..rank).rev() {
            idx[axis] += 1;
            oa += sa[axis];
            ob += sb[axis];
            if idx[axis] < dims[axis] {
                break;
            }
            idx[axis] = 0;
            oa -= sa[axis] * dims[axis];
            ob -= sb[axis] * dims[axis];
        }
    }
    out
}

impl Tensor {
    /// Elementwise addition with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not broadcast.
    pub fn add(&self, other: &Tensor) -> Tensor {
        broadcast_zip(self, other, |a, b| a + b, "add")
    }

    /// Elementwise subtraction with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not broadcast.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        broadcast_zip(self, other, |a, b| a - b, "sub")
    }

    /// Elementwise multiplication with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not broadcast.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        broadcast_zip(self, other, |a, b| a * b, "mul")
    }

    /// Elementwise division with broadcasting.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not broadcast.
    pub fn div(&self, other: &Tensor) -> Tensor {
        broadcast_zip(self, other, |a, b| a / b, "div")
    }

    /// Elementwise maximum with broadcasting.
    pub fn maximum(&self, other: &Tensor) -> Tensor {
        broadcast_zip(self, other, f32::max, "maximum")
    }

    /// Elementwise minimum with broadcasting.
    pub fn minimum(&self, other: &Tensor) -> Tensor {
        broadcast_zip(self, other, f32::min, "minimum")
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Subtracts a scalar from every element.
    pub fn sub_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v - s)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Divides every element by a scalar.
    pub fn div_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v / s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|v| -v)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.map(|v| v * v)
    }

    /// Elementwise reciprocal.
    pub fn recip(&self) -> Tensor {
        self.map(|v| 1.0 / v)
    }

    /// Elementwise power with a scalar exponent.
    pub fn powf(&self, e: f32) -> Tensor {
        self.map(|v| v.powf(e))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|v| 1.0 / (1.0 + (-v).exp()))
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Elementwise leaky ReLU with the given negative slope.
    pub fn leaky_relu(&self, negative_slope: f32) -> Tensor {
        self.map(|v| if v >= 0.0 { v } else { v * negative_slope })
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Elementwise `1.0` where `self > other` (broadcasting), else `0.0`.
    pub fn gt_mask(&self, other: &Tensor) -> Tensor {
        broadcast_zip(self, other, |a, b| if a > b { 1.0 } else { 0.0 }, "gt_mask")
    }

    /// Elementwise `1.0` where `self >= 0`, else `0.0`.
    pub fn nonneg_mask(&self) -> Tensor {
        self.map(|v| if v >= 0.0 { 1.0 } else { 0.0 })
    }

    /// In-place `self += other * alpha` (no broadcasting).
    ///
    /// The optimizer hot path: avoids allocating for every accumulation.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign_scaled(&mut self, other: &Tensor, alpha: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_assign_scaled shape mismatch"
        );
        let o = other.as_slice();
        hfta_kernels::for_each_chunk_mut(
            self.as_mut_slice(),
            crate::tensor::ELEMWISE_GRAIN,
            |start, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v += o[start + j] * alpha;
                }
            },
        );
    }

    /// In-place elementwise `self = self * a + other * b` (no broadcasting).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn lerp_assign(&mut self, other: &Tensor, a: f32, b: f32) {
        assert_eq!(self.shape(), other.shape(), "lerp_assign shape mismatch");
        let o = other.as_slice();
        hfta_kernels::for_each_chunk_mut(
            self.as_mut_slice(),
            crate::tensor::ELEMWISE_GRAIN,
            |start, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = *v * a + o[start + j] * b;
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::from_vec(v, s)
    }

    #[test]
    fn add_same_shape() {
        let a = t(vec![1.0, 2.0, 3.0], &[3]);
        let b = t(vec![10.0, 20.0, 30.0], &[3]);
        assert_eq!(a.add(&b).to_vec(), vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn broadcast_row_and_column() {
        let m = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let row = t(vec![10.0, 20.0, 30.0], &[3]);
        assert_eq!(
            m.add(&row).to_vec(),
            vec![11.0, 22.0, 33.0, 14.0, 25.0, 36.0]
        );
        let col = t(vec![100.0, 200.0], &[2, 1]);
        assert_eq!(
            m.add(&col).to_vec(),
            vec![101.0, 102.0, 103.0, 204.0, 205.0, 206.0]
        );
    }

    #[test]
    fn broadcast_scalar_fast_path() {
        let m = t(vec![1.0, 2.0], &[2]);
        assert_eq!(m.mul(&Tensor::scalar(3.0)).to_vec(), vec![3.0, 6.0]);
        assert_eq!(Tensor::scalar(10.0).sub(&m).to_vec(), vec![9.0, 8.0]);
    }

    #[test]
    fn broadcast_both_expand() {
        // [2,1] x [1,3] -> [2,3]
        let a = t(vec![1.0, 2.0], &[2, 1]);
        let b = t(vec![10.0, 20.0, 30.0], &[1, 3]);
        assert_eq!(a.mul(&b).to_vec(), vec![10.0, 20.0, 30.0, 20.0, 40.0, 60.0]);
    }

    #[test]
    fn broadcast_3d_middle_axis() {
        // [2,1,2] + [1,3,1] -> [2,3,2]
        let a = t(vec![0.0, 1.0, 10.0, 11.0], &[2, 1, 2]);
        let b = t(vec![100.0, 200.0, 300.0], &[1, 3, 1]);
        let c = a.add(&b);
        assert_eq!(c.dims(), &[2, 3, 2]);
        assert_eq!(c.at(&[0, 0, 0]), 100.0);
        assert_eq!(c.at(&[0, 2, 1]), 301.0);
        assert_eq!(c.at(&[1, 1, 0]), 210.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn incompatible_broadcast_panics() {
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![1.0, 2.0, 3.0], &[3]);
        let _ = a.add(&b);
    }

    #[test]
    fn unary_ops() {
        let a = t(vec![-1.0, 0.0, 4.0], &[3]);
        assert_eq!(a.relu().to_vec(), vec![0.0, 0.0, 4.0]);
        assert_eq!(a.leaky_relu(0.5).to_vec(), vec![-0.5, 0.0, 4.0]);
        assert_eq!(a.abs().to_vec(), vec![1.0, 0.0, 4.0]);
        assert_eq!(a.neg().to_vec(), vec![1.0, 0.0, -4.0]);
        assert_eq!(a.square().to_vec(), vec![1.0, 0.0, 16.0]);
        assert_eq!(t(vec![4.0], &[1]).sqrt().to_vec(), vec![2.0]);
        assert_eq!(a.clamp(-0.5, 1.0).to_vec(), vec![-0.5, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_and_tanh_at_zero() {
        let z = Tensor::zeros([1]);
        assert!((z.sigmoid().item() - 0.5).abs() < 1e-7);
        assert_eq!(z.tanh().item(), 0.0);
    }

    #[test]
    fn scalar_helpers() {
        let a = t(vec![2.0, 4.0], &[2]);
        assert_eq!(a.add_scalar(1.0).to_vec(), vec![3.0, 5.0]);
        assert_eq!(a.mul_scalar(0.5).to_vec(), vec![1.0, 2.0]);
        assert_eq!(a.div_scalar(2.0).to_vec(), vec![1.0, 2.0]);
        assert_eq!(a.sub_scalar(2.0).to_vec(), vec![0.0, 2.0]);
    }

    #[test]
    fn masks() {
        let a = t(vec![-1.0, 2.0], &[2]);
        assert_eq!(a.nonneg_mask().to_vec(), vec![0.0, 1.0]);
        assert_eq!(a.gt_mask(&Tensor::scalar(0.0)).to_vec(), vec![0.0, 1.0]);
    }

    #[test]
    fn inplace_accumulators() {
        let mut a = t(vec![1.0, 2.0], &[2]);
        a.add_assign_scaled(&t(vec![10.0, 10.0], &[2]), 0.5);
        assert_eq!(a.to_vec(), vec![6.0, 7.0]);
        a.lerp_assign(&t(vec![0.0, 0.0], &[2]), 0.5, 0.5);
        assert_eq!(a.to_vec(), vec![3.0, 3.5]);
    }

    #[test]
    fn maximum_minimum() {
        let a = t(vec![1.0, 5.0], &[2]);
        let b = t(vec![3.0, 2.0], &[2]);
        assert_eq!(a.maximum(&b).to_vec(), vec![3.0, 5.0]);
        assert_eq!(a.minimum(&b).to_vec(), vec![1.0, 2.0]);
    }
}
