//! Convolution kernels with **group support** and their gradients.
//!
//! Grouped convolution is the cornerstone of HFTA: the horizontal fusion of
//! `B` convolutions with `G = g` groups is one convolution with `G = B * g`
//! groups over channel-concatenated inputs (Table 6 of the paper). Both the
//! serial and fused paths in this workspace execute through these kernels.
//!
//! Implementation is classic im2col/col2im + per-group GEMM, with the
//! transposed convolution expressed through the same adjoint kernels.

use crate::tensor::Tensor;
use hfta_kernels::{self as kernels, UnsafeSlice};
use hfta_mem::scratch;
use std::time::Instant;

/// Target FLOPs per parallel chunk when fanning out over (sample, group)
/// blocks. A pure function of the problem shape — never of the thread
/// count — so chunk boundaries (and therefore results) are identical on
/// any pool size.
const PAR_CHUNK_FLOPS: usize = 1 << 19;

/// Chunk size (in `(sample, group)` blocks) for `per_block_flops` each.
fn block_grain(per_block_flops: usize, n_blocks: usize) -> usize {
    PAR_CHUNK_FLOPS
        .checked_div(per_block_flops)
        .map_or(n_blocks.max(1), |g| g.clamp(1, n_blocks.max(1)))
}

/// Pre-reserves the im2col column scratch for a `parallel_for` fan-out of
/// `n_blocks` blocks at `grain` blocks per chunk: at most one column buffer
/// per concurrently running chunk is ever live.
fn reserve_cols(len: usize, n_blocks: usize, grain: usize) {
    let workers = kernels::num_threads().min(n_blocks.max(1).div_ceil(grain));
    scratch::reserve("conv.cols", len, workers);
}

/// Configuration for 2-D (de)convolutions: `(height, width)` stride and
/// zero-padding, plus channel groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvCfg {
    /// Stride as `(stride_h, stride_w)`.
    pub stride: (usize, usize),
    /// Zero-padding as `(pad_h, pad_w)` applied to both sides.
    pub padding: (usize, usize),
    /// Number of channel groups.
    pub groups: usize,
}

impl ConvCfg {
    /// Symmetric configuration: equal stride and padding on both axes.
    pub fn square(stride: usize, padding: usize, groups: usize) -> Self {
        ConvCfg {
            stride: (stride, stride),
            padding: (padding, padding),
            groups,
        }
    }

    /// Unit stride, no padding, a single group.
    pub fn unit() -> Self {
        Self::square(1, 0, 1)
    }

    /// Returns a copy with the group count multiplied by `b` — the HFTA
    /// horizontal-fusion transform of the configuration.
    pub fn fused(self, b: usize) -> Self {
        ConvCfg {
            groups: self.groups * b,
            ..self
        }
    }

    /// Output spatial size for an input of `(h, w)` under kernel `(kh, kw)`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (kernel larger than padded
    /// input).
    pub fn out_hw(&self, (h, w): (usize, usize), (kh, kw): (usize, usize)) -> (usize, usize) {
        let hp = h + 2 * self.padding.0;
        let wp = w + 2 * self.padding.1;
        assert!(
            hp >= kh && wp >= kw,
            "kernel ({kh}, {kw}) larger than padded input ({hp}, {wp})"
        );
        ((hp - kh) / self.stride.0 + 1, (wp - kw) / self.stride.1 + 1)
    }

    /// Output spatial size of the *transposed* convolution.
    pub fn transpose_out_hw(
        &self,
        (h, w): (usize, usize),
        (kh, kw): (usize, usize),
    ) -> (usize, usize) {
        (
            (h - 1) * self.stride.0 + kh - 2 * self.padding.0,
            (w - 1) * self.stride.1 + kw - 2 * self.padding.1,
        )
    }
}

impl Default for ConvCfg {
    fn default() -> Self {
        Self::unit()
    }
}

/// Lowers one padded image `[c, hp, wp]` into `cols` (`[c*kh*kw, ho*wo]`,
/// fully overwritten), so callers can hand in recycled scratch.
fn im2col_into(
    cols: &mut [f32],
    img: &[f32],
    c: usize,
    (hp, wp): (usize, usize),
    (kh, kw): (usize, usize),
    (sh, sw): (usize, usize),
    (ho, wo): (usize, usize),
) {
    debug_assert_eq!(cols.len(), c * kh * kw * ho * wo);
    let col_w = ho * wo;
    for ci in 0..c {
        for u in 0..kh {
            for v in 0..kw {
                let row = ((ci * kh + u) * kw + v) * col_w;
                for p in 0..ho {
                    let src_row = (ci * hp + p * sh + u) * wp + v;
                    let dst = row + p * wo;
                    for q in 0..wo {
                        cols[dst + q] = img[src_row + q * sw];
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: accumulates columns back into the padded image.
fn col2im(
    cols: &[f32],
    img: &mut [f32],
    c: usize,
    (hp, wp): (usize, usize),
    (kh, kw): (usize, usize),
    (sh, sw): (usize, usize),
    (ho, wo): (usize, usize),
) {
    let col_w = ho * wo;
    for ci in 0..c {
        for u in 0..kh {
            for v in 0..kw {
                let row = ((ci * kh + u) * kw + v) * col_w;
                for p in 0..ho {
                    let dst_row = (ci * hp + p * sh + u) * wp + v;
                    let src = row + p * wo;
                    for q in 0..wo {
                        img[dst_row + q * sw] += cols[src + q];
                    }
                }
            }
        }
    }
}

fn check_conv_args(x: &Tensor, w: &Tensor, cfg: &ConvCfg) {
    assert_eq!(x.rank(), 4, "conv2d input must be [N, C, H, W]");
    assert_eq!(w.rank(), 4, "conv2d weight must be [Cout, Cin/g, kh, kw]");
    let cin = x.dim(1);
    let cout = w.dim(0);
    assert_eq!(
        cin % cfg.groups,
        0,
        "input channels {cin} not divisible by groups {}",
        cfg.groups
    );
    assert_eq!(
        cout % cfg.groups,
        0,
        "output channels {cout} not divisible by groups {}",
        cfg.groups
    );
    assert_eq!(
        w.dim(1),
        cin / cfg.groups,
        "weight in-channels {} != Cin/groups {}",
        w.dim(1),
        cin / cfg.groups
    );
}

/// Which GEMM formulation the conv2d forward runs per (sample, group) block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConvAlgo {
    /// im2col followed by a plain [`kernels::gemm`], which re-packs the
    /// group's weight matrix inside every call. The historical default.
    Im2col,
    /// The per-group weight matrices are packed into micro-kernel panel
    /// layout once up front ([`kernels::pack_a_into`]) and every block runs
    /// [`kernels::gemm_prepacked`], trading one pass of pack work per group
    /// for `n` repacks. Bit-identical to `Im2col` under every bit-exact
    /// backend; pays off when the batch is deep relative to the GEMM.
    Prepacked,
}

/// Picks the forward algorithm for one conv2d launch.
///
/// Without a find-db (`HFTA_TUNE_DB` unset) this is always
/// [`ConvAlgo::Im2col`] — the historical path, zero selection overhead.
/// With one, the per-block GEMM shape `(coutg, krows, spatial)` keys a
/// persisted decision under op `"conv2d"`; on a miss, block `(0, 0)` is
/// timed both ways — the shared im2col lowering excluded, the one-off pack
/// cost amortized over the `n` samples that reuse a group's panels — and
/// the winner recorded write-through.
#[allow(clippy::too_many_arguments)]
fn choose_conv2d_algo(
    w_data: &[f32],
    xp_data: &[f32],
    cing: usize,
    coutg: usize,
    krows: usize,
    spatial: usize,
    block: usize,
    (hp, wp): (usize, usize),
    (kh, kw): (usize, usize),
    stride: (usize, usize),
    (ho, wo): (usize, usize),
    n: usize,
) -> ConvAlgo {
    if !kernels::tune::enabled() || n == 0 || block == 0 || krows == 0 {
        return ConvAlgo::Im2col;
    }
    let key = kernels::tune::key("conv2d", coutg, krows, spatial, kernels::num_threads());
    if let Some(winner) = kernels::tune::lookup(&key) {
        return if winner == "prepacked" {
            ConvAlgo::Prepacked
        } else {
            ConvAlgo::Im2col
        };
    }
    let aplen = kernels::packed_a_len(coutg, krows);
    let wmat0 = &w_data[..coutg * krows];
    scratch::reserve("conv.cols", krows * spatial, 1);
    scratch::reserve("conv.tune.out", block, 1);
    scratch::reserve("conv.tune.pack", aplen, 1);
    let (im2col_us, prepacked_us) = scratch::with(krows * spatial, |cols| {
        im2col_into(
            cols,
            &xp_data[..cing * hp * wp],
            cing,
            (hp, wp),
            (kh, kw),
            stride,
            (ho, wo),
        );
        scratch::with(block, |tmp| {
            // Warm-up dispatch: the GEMM's own per-shape tuning (and any
            // lazy pool spin-up) must not be billed to the im2col candidate.
            kernels::gemm(tmp, wmat0, cols, coutg, krows, spatial);
            let t0 = Instant::now();
            kernels::gemm(tmp, wmat0, cols, coutg, krows, spatial);
            let im2col_us = t0.elapsed().as_secs_f64() * 1e6;
            scratch::with(aplen, |apack| {
                let t0 = Instant::now();
                kernels::pack_a_into(wmat0, coutg, krows, apack);
                let pack_us = t0.elapsed().as_secs_f64() * 1e6;
                let t0 = Instant::now();
                kernels::gemm_prepacked(tmp, apack, cols, coutg, krows, spatial);
                let gemm_us = t0.elapsed().as_secs_f64() * 1e6;
                (im2col_us, gemm_us + pack_us / n as f64)
            })
        })
    });
    let winner = if prepacked_us < im2col_us {
        ConvAlgo::Prepacked
    } else {
        ConvAlgo::Im2col
    };
    let name = match winner {
        ConvAlgo::Prepacked => "prepacked",
        ConvAlgo::Im2col => "im2col",
    };
    kernels::tune::record(
        &key,
        name,
        &[("im2col", im2col_us), ("prepacked", prepacked_us)],
    );
    winner
}

/// 2-D convolution: `x [N, Cin, H, W]`, `w [Cout, Cin/g, kh, kw]`,
/// optional `b [Cout]` → `[N, Cout, Ho, Wo]`.
///
/// # Panics
///
/// Panics on inconsistent shapes or group counts.
///
/// # Example
///
/// ```
/// use hfta_tensor::{conv::{conv2d, ConvCfg}, Tensor};
/// let x = Tensor::ones([1, 1, 3, 3]);
/// let w = Tensor::ones([1, 1, 2, 2]);
/// let y = conv2d(&x, &w, None, ConvCfg::unit());
/// assert_eq!(y.dims(), &[1, 1, 2, 2]);
/// assert_eq!(y.to_vec(), vec![4.0; 4]);
/// ```
pub fn conv2d(x: &Tensor, w: &Tensor, b: Option<&Tensor>, cfg: ConvCfg) -> Tensor {
    check_conv_args(x, w, &cfg);
    let (n, cin, h, wdt) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (cout, _, kh, kw) = (w.dim(0), w.dim(1), w.dim(2), w.dim(3));
    if let Some(bias) = b {
        assert_eq!(bias.dims(), &[cout], "bias must be [Cout]");
    }
    let g = cfg.groups;
    let (cing, coutg) = (cin / g, cout / g);
    let (ho, wo) = cfg.out_hw((h, wdt), (kh, kw));
    let xp = x.pad2d(cfg.padding.0, cfg.padding.1);
    let (hp, wp) = (xp.dim(2), xp.dim(3));
    let xp_data = xp.as_slice();
    let w_data = w.as_slice();
    let krows = cing * kh * kw;
    let spatial = ho * wo;
    let bias_data = b.map(|bias| bias.as_slice());
    // Each (sample, group) pair writes one contiguous, disjoint output
    // block, so the blocks parallelize trivially across the worker pool —
    // the CPU analogue of the bigger-fused-kernel effect HFTA exploits (a
    // fused conv with B x g groups exposes B x more independent blocks).
    // The bias is folded into the block initialization: each output row is
    // seeded with its channel's bias and the GEMM accumulates on top, so
    // there is no second pass over the output.
    let block = coutg * spatial;
    let per_block_flops = 2 * coutg * krows * spatial;
    // Per (sample, group) block: image read, im2col columns written then
    // re-read by the GEMM, weights read, output written.
    let per_block_bytes = 4 * (cing * hp * wp + 2 * krows * spatial + coutg * krows + block);
    let bytes = (n * g * per_block_bytes) as f64;
    kernels::profiled("conv2d", (n * g * per_block_flops) as f64, bytes, || {
        let grain = block_grain(per_block_flops, n * g);
        reserve_cols(krows * spatial, n * g, grain);
        let mut out = Tensor::zeros([n, cout, ho, wo]);
        let algo = choose_conv2d_algo(
            w_data,
            xp_data,
            cing,
            coutg,
            krows,
            spatial,
            block,
            (hp, wp),
            (kh, kw),
            cfg.stride,
            (ho, wo),
            n,
        );
        let shared = UnsafeSlice::new(out.as_mut_slice());
        let run_blocks = |wpack: &[f32], aplen: usize| {
            kernels::parallel_for_work(n * g, grain, n * g * per_block_flops, |range| {
                for idx in range {
                    let (ni, gi) = (idx / g, idx % g);
                    // SAFETY: each (sample, group) index owns a disjoint block.
                    let out_block = unsafe { shared.slice_mut(idx * block..(idx + 1) * block) };
                    if let Some(bd) = bias_data {
                        for (co, row) in out_block.chunks_exact_mut(spatial).enumerate() {
                            row.fill(bd[gi * coutg + co]);
                        }
                    }
                    let img = &xp_data
                        [(ni * cin + gi * cing) * hp * wp..(ni * cin + (gi + 1) * cing) * hp * wp];
                    scratch::with(krows * spatial, |cols| {
                        im2col_into(cols, img, cing, (hp, wp), (kh, kw), cfg.stride, (ho, wo));
                        if aplen > 0 {
                            let apack = &wpack[gi * aplen..(gi + 1) * aplen];
                            kernels::gemm_prepacked(out_block, apack, cols, coutg, krows, spatial);
                        } else {
                            let wmat = &w_data[gi * coutg * krows..(gi + 1) * coutg * krows];
                            kernels::gemm(out_block, wmat, cols, coutg, krows, spatial);
                        }
                    });
                }
            });
        };
        match algo {
            ConvAlgo::Im2col => run_blocks(&[], 0),
            ConvAlgo::Prepacked => {
                // Pack every group's weight matrix into micro-kernel panel
                // layout once; all `n` samples of a group then reuse its
                // panels instead of re-packing inside each GEMM call.
                let aplen = kernels::packed_a_len(coutg, krows);
                scratch::reserve("conv.wpack", g * aplen, 1);
                scratch::with(g * aplen, |wpack| {
                    for gi in 0..g {
                        kernels::pack_a_into(
                            &w_data[gi * coutg * krows..(gi + 1) * coutg * krows],
                            coutg,
                            krows,
                            &mut wpack[gi * aplen..(gi + 1) * aplen],
                        );
                    }
                    run_blocks(wpack, aplen);
                });
            }
        }
        out
    })
}

/// Gradient of [`conv2d`] with respect to its input.
///
/// `w` is the forward weight, `gy` the output gradient, `(h, w)` the
/// original input spatial size.
///
/// # Panics
///
/// Panics on inconsistent shapes.
pub fn conv2d_grad_input(
    w: &Tensor,
    gy: &Tensor,
    input_hw: (usize, usize),
    cin: usize,
    cfg: ConvCfg,
) -> Tensor {
    assert_eq!(gy.rank(), 4, "grad output must be [N, Cout, Ho, Wo]");
    let (n, cout, ho, wo) = (gy.dim(0), gy.dim(1), gy.dim(2), gy.dim(3));
    let (kh, kw) = (w.dim(2), w.dim(3));
    let g = cfg.groups;
    let (cing, coutg) = (cin / g, cout / g);
    assert_eq!(w.dim(0), cout, "weight Cout mismatch");
    assert_eq!(w.dim(1), cing, "weight Cin/g mismatch");
    let (hp, wp) = (
        input_hw.0 + 2 * cfg.padding.0,
        input_hw.1 + 2 * cfg.padding.1,
    );
    let krows = cing * kh * kw;
    let spatial = ho * wo;
    let gy_data = gy.as_slice();
    let w_data = w.as_slice();
    // Each (sample, group) pair owns one disjoint [cing, hp, wp] block of
    // the padded input gradient, so the blocks fan out across the pool.
    let block = cing * hp * wp;
    let per_block_flops = 2 * coutg * krows * spatial;
    // Per block: grad-output and weights read, columns written then folded
    // by col2im, padded input gradient written.
    let per_block_bytes = 4 * (coutg * spatial + coutg * krows + 2 * krows * spatial + block);
    kernels::profiled(
        "conv2d_grad_input",
        (n * g * per_block_flops) as f64,
        (n * g * per_block_bytes) as f64,
        || {
            let grain = block_grain(per_block_flops, n * g);
            reserve_cols(krows * spatial, n * g, grain);
            let mut gx_pad = Tensor::zeros([n, cin, hp, wp]);
            let shared = UnsafeSlice::new(gx_pad.as_mut_slice());
            kernels::parallel_for_work(n * g, grain, n * g * per_block_flops, |range| {
                for idx in range {
                    let (ni, gi) = (idx / g, idx % g);
                    let wmat = &w_data[gi * coutg * krows..(gi + 1) * coutg * krows];
                    let gybase = (ni * cout + gi * coutg) * spatial;
                    let gymat = &gy_data[gybase..gybase + coutg * spatial];
                    // cols = w^T @ gy : [krows, spatial]; the scratch
                    // checkout arrives zero-filled, which gemm_tn's
                    // accumulation requires.
                    scratch::with(krows * spatial, |cols| {
                        kernels::gemm_tn(cols, wmat, gymat, krows, coutg, spatial);
                        // SAFETY: each (sample, group) index owns a disjoint block.
                        let img = unsafe { shared.slice_mut(idx * block..(idx + 1) * block) };
                        col2im(cols, img, cing, (hp, wp), (kh, kw), cfg.stride, (ho, wo));
                    });
                }
            });
            gx_pad.unpad2d(cfg.padding.0, cfg.padding.1)
        },
    )
}

/// Gradient of [`conv2d`] with respect to its weight.
///
/// # Panics
///
/// Panics on inconsistent shapes.
pub fn conv2d_grad_weight(
    x: &Tensor,
    gy: &Tensor,
    kernel_hw: (usize, usize),
    cfg: ConvCfg,
) -> Tensor {
    let (n, cin, h, wdt) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (n2, cout, ho, wo) = (gy.dim(0), gy.dim(1), gy.dim(2), gy.dim(3));
    assert_eq!(n, n2, "batch mismatch between input and grad output");
    let (kh, kw) = kernel_hw;
    let g = cfg.groups;
    let (cing, coutg) = (cin / g, cout / g);
    debug_assert_eq!(cfg.out_hw((h, wdt), (kh, kw)), (ho, wo));
    let xp = x.pad2d(cfg.padding.0, cfg.padding.1);
    let (hp, wp) = (xp.dim(2), xp.dim(3));
    let xp_data = xp.as_slice();
    let gy_data = gy.as_slice();
    let krows = cing * kh * kw;
    let spatial = ho * wo;
    // The weight gradient REDUCES over the batch: every sample accumulates
    // into the same per-group block of `gw`, and float addition is not
    // associative, so that reduction must never be split across chunks.
    // With g >= 2 the groups fan out across the pool (each group walks
    // `ni` in ascending order on one thread); with g == 1 the batch loop
    // stays serial and the GEMM parallelizes internally over output rows.
    // Path selection depends only on the shape — never the thread count —
    // and both paths keep the identical per-element accumulation order.
    let block = coutg * krows;
    let flops = 2 * n * g * coutg * spatial * krows;
    // Per (sample, group): image read, columns written + re-read, grad
    // output read, weight-gradient block read-modify-written.
    let bytes =
        (4 * n * g * (cing * hp * wp + 2 * krows * spatial + coutg * spatial + 2 * block)) as f64;
    kernels::profiled("conv2d_grad_weight", flops as f64, bytes, || {
        let mut gw = Tensor::zeros([cout, cing, kh, kw]);
        let group_work = |gw_block: &mut [f32], gi: usize| {
            for ni in 0..n {
                let img = &xp_data
                    [(ni * cin + gi * cing) * hp * wp..(ni * cin + (gi + 1) * cing) * hp * wp];
                scratch::with(krows * spatial, |cols| {
                    im2col_into(cols, img, cing, (hp, wp), (kh, kw), cfg.stride, (ho, wo));
                    let gybase = (ni * cout + gi * coutg) * spatial;
                    let gymat = &gy_data[gybase..gybase + coutg * spatial];
                    // gw_g += gy [coutg, spatial] @ cols^T [spatial, krows]
                    kernels::gemm_nt(gw_block, gymat, cols, coutg, spatial, krows);
                });
            }
        };
        if g >= 2 {
            let per_group_flops = 2 * n * coutg * spatial * krows;
            let grain = block_grain(per_group_flops, g);
            reserve_cols(krows * spatial, g, grain);
            let shared = UnsafeSlice::new(gw.as_mut_slice());
            kernels::parallel_for_work(g, grain, flops, |range| {
                for gi in range {
                    // SAFETY: each group owns a disjoint block of `gw`.
                    let gw_block = unsafe { shared.slice_mut(gi * block..(gi + 1) * block) };
                    group_work(gw_block, gi);
                }
            });
        } else {
            reserve_cols(krows * spatial, 1, 1);
            group_work(gw.as_mut_slice(), 0);
        }
        gw
    })
}

/// Gradient of [`conv2d`] with respect to its bias: `gy` summed over batch
/// and spatial axes.
pub fn conv2d_grad_bias(gy: &Tensor) -> Tensor {
    gy.sum_axis(3, false).sum_axis(2, false).sum_axis(0, false)
}

/// 2-D transposed convolution ("deconvolution"): `x [N, Cin, H, W]`,
/// `w [Cin, Cout/g, kh, kw]`, optional `b [Cout]` → `[N, Cout, Ho, Wo]`
/// with `Ho = (H-1)*stride - 2*pad + kh`.
///
/// Implemented as the adjoint of [`conv2d`]: the forward pass is
/// [`conv2d_grad_input`] with the channel roles swapped.
///
/// # Panics
///
/// Panics on inconsistent shapes or group counts.
pub fn conv_transpose2d(x: &Tensor, w: &Tensor, b: Option<&Tensor>, cfg: ConvCfg) -> Tensor {
    assert_eq!(x.rank(), 4, "conv_transpose2d input must be [N, Cin, H, W]");
    assert_eq!(
        w.rank(),
        4,
        "conv_transpose2d weight must be [Cin, Cout/g, kh, kw]"
    );
    let (_, cin, h, wdt) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    assert_eq!(w.dim(0), cin, "weight Cin mismatch");
    let g = cfg.groups;
    let coutg = w.dim(1);
    let cout = coutg * g;
    let (kh, kw) = (w.dim(2), w.dim(3));
    let (ho, wo) = cfg.transpose_out_hw((h, wdt), (kh, kw));
    // Viewed as a conv mapping [N, cout, ho, wo] -> [N, cin, h, w], the
    // weight already has conv layout [Cout_conv=cin, Cin_conv/g=coutg, ...].
    let mut y = conv2d_grad_input(w, x, (ho, wo), cout, cfg);
    if let Some(bias) = b {
        assert_eq!(bias.dims(), &[cout], "bias must be [Cout]");
        let spatial = ho * wo;
        let n = y.dim(0);
        let bd = bias.as_slice();
        let yd = y.as_mut_slice();
        for ni in 0..n {
            #[allow(clippy::needless_range_loop)]
            for co in 0..cout {
                let base = (ni * cout + co) * spatial;
                for v in &mut yd[base..base + spatial] {
                    *v += bd[co];
                }
            }
        }
    }
    y
}

/// Gradient of [`conv_transpose2d`] with respect to its input: a plain
/// [`conv2d`] of the output gradient with the same weight.
pub fn conv_transpose2d_grad_input(w: &Tensor, gy: &Tensor, cfg: ConvCfg) -> Tensor {
    conv2d(gy, w, None, cfg)
}

/// Gradient of [`conv_transpose2d`] with respect to its weight.
pub fn conv_transpose2d_grad_weight(
    x: &Tensor,
    gy: &Tensor,
    kernel_hw: (usize, usize),
    cfg: ConvCfg,
) -> Tensor {
    // In the adjoint view, `gy` plays the conv input and `x` the conv
    // output-gradient.
    conv2d_grad_weight(gy, x, kernel_hw, cfg)
}

/// 1-D convolution: `x [N, Cin, L]`, `w [Cout, Cin/g, k]` → `[N, Cout, Lo]`.
///
/// Delegates to [`conv2d`] with a unit height axis.
///
/// # Panics
///
/// Panics on inconsistent shapes.
pub fn conv1d(
    x: &Tensor,
    w: &Tensor,
    b: Option<&Tensor>,
    stride: usize,
    padding: usize,
    groups: usize,
) -> Tensor {
    assert_eq!(x.rank(), 3, "conv1d input must be [N, C, L]");
    assert_eq!(w.rank(), 3, "conv1d weight must be [Cout, Cin/g, k]");
    let x4 = x.reshape(&[x.dim(0), x.dim(1), 1, x.dim(2)]);
    let w4 = w.reshape(&[w.dim(0), w.dim(1), 1, w.dim(2)]);
    let cfg = ConvCfg {
        stride: (1, stride),
        padding: (0, padding),
        groups,
    };
    let y = conv2d(&x4, &w4, b, cfg);
    y.reshape(&[y.dim(0), y.dim(1), y.dim(3)])
}

/// Gradients of [`conv1d`]: `(grad_input, grad_weight, grad_bias)`.
pub fn conv1d_backward(
    x: &Tensor,
    w: &Tensor,
    gy: &Tensor,
    stride: usize,
    padding: usize,
    groups: usize,
) -> (Tensor, Tensor, Tensor) {
    let x4 = x.reshape(&[x.dim(0), x.dim(1), 1, x.dim(2)]);
    let w4 = w.reshape(&[w.dim(0), w.dim(1), 1, w.dim(2)]);
    let gy4 = gy.reshape(&[gy.dim(0), gy.dim(1), 1, gy.dim(2)]);
    let cfg = ConvCfg {
        stride: (1, stride),
        padding: (0, padding),
        groups,
    };
    let gx = conv2d_grad_input(&w4, &gy4, (1, x.dim(2)), x.dim(1), cfg);
    let gw = conv2d_grad_weight(&x4, &gy4, (1, w.dim(2)), cfg);
    let gb = conv2d_grad_bias(&gy4);
    (
        gx.reshape(&[x.dim(0), x.dim(1), x.dim(2)]),
        gw.reshape(&[w.dim(0), w.dim(1), w.dim(2)]),
        gb,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive direct convolution reference (groups supported).
    fn conv2d_naive(x: &Tensor, w: &Tensor, b: Option<&Tensor>, cfg: ConvCfg) -> Tensor {
        let (n, cin, h, wdt) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let (cout, _, kh, kw) = (w.dim(0), w.dim(1), w.dim(2), w.dim(3));
        let g = cfg.groups;
        let (cing, coutg) = (cin / g, cout / g);
        let (ho, wo) = cfg.out_hw((h, wdt), (kh, kw));
        let mut out = Tensor::zeros([n, cout, ho, wo]);
        for ni in 0..n {
            for co in 0..cout {
                let gi = co / coutg;
                for p in 0..ho {
                    for q in 0..wo {
                        let mut acc = b.map_or(0.0, |bias| bias.at(&[co]));
                        for ci in 0..cing {
                            for u in 0..kh {
                                for v in 0..kw {
                                    let yy =
                                        (p * cfg.stride.0 + u) as isize - cfg.padding.0 as isize;
                                    let xx =
                                        (q * cfg.stride.1 + v) as isize - cfg.padding.1 as isize;
                                    if yy >= 0
                                        && xx >= 0
                                        && (yy as usize) < h
                                        && (xx as usize) < wdt
                                    {
                                        acc +=
                                            x.at(&[ni, gi * cing + ci, yy as usize, xx as usize])
                                                * w.at(&[co, ci, u, v]);
                                    }
                                }
                            }
                        }
                        out.set(&[ni, co, p, q], acc);
                    }
                }
            }
        }
        out
    }

    fn randn(shape: &[usize], seed: u64) -> Tensor {
        // Small deterministic pseudo-random fill.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state as f64 / u64::MAX as f64) as f32 - 0.5) * 2.0
            })
            .collect();
        Tensor::from_vec(data, shape.to_vec())
    }

    #[test]
    fn conv2d_matches_naive_basic() {
        let x = randn(&[2, 3, 5, 5], 1);
        let w = randn(&[4, 3, 3, 3], 2);
        let b = randn(&[4], 3);
        for cfg in [
            ConvCfg::unit(),
            ConvCfg::square(1, 1, 1),
            ConvCfg::square(2, 1, 1),
        ] {
            let fast = conv2d(&x, &w, Some(&b), cfg);
            let slow = conv2d_naive(&x, &w, Some(&b), cfg);
            assert!(fast.allclose(&slow, 1e-4), "cfg {cfg:?}");
        }
    }

    #[test]
    fn grouped_conv_matches_naive() {
        let x = randn(&[2, 4, 6, 6], 4);
        let w = randn(&[6, 2, 3, 3], 5); // groups=2: Cin/g = 2
        let cfg = ConvCfg::square(1, 1, 2);
        let fast = conv2d(&x, &w, None, cfg);
        let slow = conv2d_naive(&x, &w, None, cfg);
        assert!(fast.allclose(&slow, 1e-4));
    }

    #[test]
    fn grouped_conv_equals_concat_of_independent_convs() {
        // The HFTA identity: B independent convs == one grouped conv on
        // channel-concatenated input with block-diagonal (stacked) weights.
        let b = 3;
        let cfg = ConvCfg::square(1, 1, 1);
        let xs: Vec<Tensor> = (0..b)
            .map(|i| randn(&[2, 3, 5, 5], 10 + i as u64))
            .collect();
        let ws: Vec<Tensor> = (0..b)
            .map(|i| randn(&[4, 3, 3, 3], 20 + i as u64))
            .collect();
        let bs: Vec<Tensor> = (0..b).map(|i| randn(&[4], 30 + i as u64)).collect();
        let per_model: Vec<Tensor> = (0..b)
            .map(|i| conv2d(&xs[i], &ws[i], Some(&bs[i]), cfg))
            .collect();
        let x_fused = Tensor::concat(&xs.iter().collect::<Vec<_>>(), 1);
        let w_fused = Tensor::concat(&ws.iter().collect::<Vec<_>>(), 0);
        let b_fused = Tensor::concat(&bs.iter().collect::<Vec<_>>(), 0);
        let fused = conv2d(&x_fused, &w_fused, Some(&b_fused), cfg.fused(b));
        let expect = Tensor::concat(&per_model.iter().collect::<Vec<_>>(), 1);
        assert!(fused.allclose(&expect, 1e-4));
    }

    #[test]
    fn conv_adjoint_identity_input() {
        // <conv(x), y> == <x, conv_grad_input(y)> proves the adjoint pair.
        let cfg = ConvCfg::square(2, 1, 1);
        let x = randn(&[1, 2, 6, 6], 7);
        let w = randn(&[3, 2, 3, 3], 8);
        let y = conv2d(&x, &w, None, cfg);
        let gy = randn(y.dims(), 9);
        let gx = conv2d_grad_input(&w, &gy, (6, 6), 2, cfg);
        let lhs = y.flatten().dot(&gy.flatten());
        let rhs = x.flatten().dot(&gx.flatten());
        assert!(
            (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn conv_adjoint_identity_weight() {
        let cfg = ConvCfg::square(1, 1, 2);
        let x = randn(&[2, 4, 5, 5], 11);
        let w = randn(&[4, 2, 3, 3], 12);
        let y = conv2d(&x, &w, None, cfg);
        let gy = randn(y.dims(), 13);
        let gw = conv2d_grad_weight(&x, &gy, (3, 3), cfg);
        assert_eq!(gw.dims(), w.dims());
        let lhs = y.flatten().dot(&gy.flatten());
        // d<conv(x;w), gy>/dw . w == <gw, w> because conv is linear in w.
        let rhs = gw.flatten().dot(&w.flatten());
        assert!(
            (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn grad_bias_sums_spatial_and_batch() {
        let gy = Tensor::ones([2, 3, 4, 4]);
        let gb = conv2d_grad_bias(&gy);
        assert_eq!(gb.dims(), &[3]);
        assert_eq!(gb.to_vec(), vec![32.0; 3]);
    }

    #[test]
    fn conv_transpose_shape_and_upsampling() {
        // DCGAN-style: stride-2 convtranspose doubles spatial size.
        let x = randn(&[1, 8, 4, 4], 21);
        let w = randn(&[8, 4, 4, 4], 22);
        let cfg = ConvCfg::square(2, 1, 1);
        let y = conv_transpose2d(&x, &w, None, cfg);
        assert_eq!(y.dims(), &[1, 4, 8, 8]);
    }

    #[test]
    fn conv_transpose_is_adjoint_of_conv() {
        // <convT(x), z> == <x, conv(z)> for weight-shared pair.
        let cfg = ConvCfg::square(2, 1, 1);
        let x = randn(&[1, 6, 4, 4], 31);
        let w = randn(&[6, 3, 4, 4], 32);
        let y = conv_transpose2d(&x, &w, None, cfg);
        let z = randn(y.dims(), 33);
        let back = conv2d(&z, &w, None, cfg);
        let lhs = y.flatten().dot(&z.flatten());
        let rhs = x.flatten().dot(&back.flatten());
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn conv_transpose_grouped_equals_concat() {
        let b = 2;
        let cfg = ConvCfg::square(2, 1, 1);
        let xs: Vec<Tensor> = (0..b)
            .map(|i| randn(&[1, 4, 3, 3], 40 + i as u64))
            .collect();
        let ws: Vec<Tensor> = (0..b)
            .map(|i| randn(&[4, 2, 4, 4], 50 + i as u64))
            .collect();
        let bs: Vec<Tensor> = (0..b).map(|i| randn(&[2], 60 + i as u64)).collect();
        let per: Vec<Tensor> = (0..b)
            .map(|i| conv_transpose2d(&xs[i], &ws[i], Some(&bs[i]), cfg))
            .collect();
        let xf = Tensor::concat(&xs.iter().collect::<Vec<_>>(), 1);
        let wf = Tensor::concat(&ws.iter().collect::<Vec<_>>(), 0);
        let bf = Tensor::concat(&bs.iter().collect::<Vec<_>>(), 0);
        let fused = conv_transpose2d(&xf, &wf, Some(&bf), cfg.fused(b));
        let expect = Tensor::concat(&per.iter().collect::<Vec<_>>(), 1);
        assert!(fused.allclose(&expect, 1e-4));
    }

    #[test]
    fn conv_transpose_backward_adjoints() {
        let cfg = ConvCfg::square(2, 1, 1);
        let x = randn(&[2, 4, 3, 3], 71);
        let w = randn(&[4, 2, 4, 4], 72);
        let y = conv_transpose2d(&x, &w, None, cfg);
        let gy = randn(y.dims(), 73);
        let gx = conv_transpose2d_grad_input(&w, &gy, cfg);
        assert_eq!(gx.dims(), x.dims());
        let gw = conv_transpose2d_grad_weight(&x, &gy, (4, 4), cfg);
        assert_eq!(gw.dims(), w.dims());
        // Linearity adjoint checks.
        let lhs = y.flatten().dot(&gy.flatten());
        assert!((lhs - x.flatten().dot(&gx.flatten())).abs() < 1e-2 * lhs.abs().max(1.0));
        assert!((lhs - w.flatten().dot(&gw.flatten())).abs() < 1e-2 * lhs.abs().max(1.0));
    }

    #[test]
    fn conv1d_matches_manual() {
        // x = [1,2,3], kernel = [1,1] -> [3, 5]
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 1, 3]);
        let w = Tensor::from_vec(vec![1.0, 1.0], [1, 1, 2]);
        let y = conv1d(&x, &w, None, 1, 0, 1);
        assert_eq!(y.dims(), &[1, 1, 2]);
        assert_eq!(y.to_vec(), vec![3.0, 5.0]);
    }

    #[test]
    fn conv1d_backward_shapes() {
        let x = randn(&[2, 3, 10], 81);
        let w = randn(&[4, 3, 3], 82);
        let y = conv1d(&x, &w, None, 1, 1, 1);
        assert_eq!(y.dims(), &[2, 4, 10]);
        let gy = randn(y.dims(), 83);
        let (gx, gw, gb) = conv1d_backward(&x, &w, &gy, 1, 1, 1);
        assert_eq!(gx.dims(), x.dims());
        assert_eq!(gw.dims(), w.dims());
        assert_eq!(gb.dims(), &[4]);
    }

    #[test]
    fn parallel_conv_matches_sequential_path() {
        // A shape big enough to cross the multithreading threshold must
        // produce exactly the same output as the naive reference.
        let x = randn(&[8, 8, 16, 16], 91);
        let w = randn(&[16, 8, 3, 3], 92);
        let cfg = ConvCfg::square(1, 1, 1);
        let fast = conv2d(&x, &w, None, cfg);
        let slow = conv2d_naive(&x, &w, None, cfg);
        assert!(fast.allclose(&slow, 1e-3));
    }

    #[test]
    fn prepacked_conv_algo_is_bit_identical_to_im2col() {
        // Seed a find-db whose entry forces the prepacked algorithm for this
        // exact per-block GEMM shape, so the test is deterministic instead
        // of depending on which candidate happens to win a timing race.
        let x = randn(&[3, 4, 10, 10], 101);
        let w = randn(&[6, 2, 3, 3], 102);
        let bias = randn(&[6], 103);
        let cfg = ConvCfg {
            stride: (1, 1),
            padding: (1, 1),
            groups: 2,
        };
        let baseline = conv2d(&x, &w, Some(&bias), cfg);

        let (coutg, krows) = (6 / 2, 2 * 3 * 3);
        let (ho, wo) = cfg.out_hw((10, 10), (3, 3));
        let key = kernels::tune::key("conv2d", coutg, krows, ho * wo, kernels::num_threads());
        let db_path =
            std::env::temp_dir().join(format!("hfta-conv-prepacked-{}.json", std::process::id()));
        let mut db = kernels::tune::FindDb::new();
        db.entries.insert(
            key,
            kernels::tune::TuneEntry {
                winner: "prepacked".to_string(),
                micros: std::collections::BTreeMap::new(),
            },
        );
        db.save(&db_path).unwrap();
        kernels::tune::set_db_path(Some(db_path.clone()));
        let prepacked = conv2d(&x, &w, Some(&bias), cfg);
        kernels::tune::set_db_path(None);
        let _ = std::fs::remove_file(&db_path);
        assert_eq!(
            prepacked.to_vec(),
            baseline.to_vec(),
            "prepacked conv algo must be bit-identical to im2col"
        );
    }

    #[test]
    fn out_hw_math() {
        let cfg = ConvCfg::square(2, 1, 1);
        assert_eq!(cfg.out_hw((5, 5), (3, 3)), (3, 3));
        assert_eq!(cfg.transpose_out_hw((3, 3), (3, 3)), (5, 5));
        // Transposed conv inverts conv's spatial map for exact geometries.
        let cfg2 = ConvCfg::square(2, 1, 1);
        let (ho, wo) = cfg2.out_hw((8, 8), (4, 4));
        assert_eq!(cfg2.transpose_out_hw((ho, wo), (4, 4)), (8, 8));
    }
}
