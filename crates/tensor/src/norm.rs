//! Batch normalization forward/backward kernels.
//!
//! Normalizes over all axes except the channel axis (axis 1), covering the
//! `BatchNorm1d` (`[N, C]` / `[N, C, L]`) and `BatchNorm2d` (`[N, C, H, W]`)
//! cases. The HFTA fusion of `B` batch-norms simply widens the channel axis
//! to `B * C` — these kernels are oblivious to the fusion.

use crate::tensor::{Tensor, ELEMWISE_GRAIN};
use hfta_kernels::{self as kernels, UnsafeSlice};

/// Saved context from a batch-norm forward pass, consumed by
/// [`batch_norm_backward`].
#[derive(Debug, Clone)]
pub struct BatchNormOutput {
    /// Normalized, scaled and shifted output (same shape as the input).
    pub output: Tensor,
    /// The normalized activations `(x - mean) / sqrt(var + eps)`.
    pub xhat: Tensor,
    /// Per-channel `1 / sqrt(var + eps)`.
    pub inv_std: Vec<f32>,
    /// Per-channel batch mean (biased).
    pub mean: Vec<f32>,
    /// Per-channel batch variance (biased).
    pub var: Vec<f32>,
}

fn check_bn_input(x: &Tensor) -> (usize, usize, usize) {
    assert!(
        (2..=4).contains(&x.rank()),
        "batch_norm input must be [N, C], [N, C, L] or [N, C, H, W]"
    );
    let n = x.dim(0);
    let c = x.dim(1);
    let spatial: usize = x.dims()[2..].iter().product();
    assert!(n * spatial > 0, "batch_norm over empty batch");
    (n, c, spatial)
}

/// Per-channel sums of `f(value, aux_value)` over batch and spatial axes.
///
/// Channel-outer so the channels fan out across the worker pool; each
/// channel's reduction stays on one thread and walks samples in ascending
/// order (one per-sample partial sum, then the cross-sample total), so the
/// result is bit-identical at any thread count.
fn per_channel_sum(
    x: &[f32],
    aux: &[f32],
    n: usize,
    c: usize,
    spatial: usize,
    f: impl Fn(f32, f32) -> f32 + Sync,
) -> Vec<f32> {
    let mut out = vec![0.0f32; c];
    let grain = (ELEMWISE_GRAIN / (n * spatial).max(1)).max(1);
    kernels::for_each_chunk_mut(&mut out, grain, |start, chunk| {
        for (rel, slot) in chunk.iter_mut().enumerate() {
            let ci = start + rel;
            let mut total = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * spatial;
                let mut acc = 0.0f32;
                for i in 0..spatial {
                    acc += f(x[base + i], aux[base + i]);
                }
                total += acc;
            }
            *slot = total;
        }
    });
    out
}

/// Batch normalization in **training** mode.
///
/// `gamma`/`beta` are per-channel scale and shift (`[C]`). Returns the
/// output plus the statistics needed for [`batch_norm_backward`] and for
/// running-average updates (which the caller owns).
///
/// # Panics
///
/// Panics on rank/shape inconsistencies.
pub fn batch_norm_train(x: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> BatchNormOutput {
    let (n, c, spatial) = check_bn_input(x);
    assert_eq!(gamma.dims(), &[c], "gamma must be [C]");
    assert_eq!(beta.dims(), &[c], "beta must be [C]");
    let count = (n * spatial) as f32;
    let xd = x.as_slice();
    let sums = per_channel_sum(xd, xd, n, c, spatial, |v, _| v);
    let mean: Vec<f32> = sums.iter().map(|s| s / count).collect();
    let sq_sums = per_channel_sum(xd, xd, n, c, spatial, |v, _| v * v);
    let var: Vec<f32> = sq_sums
        .iter()
        .zip(&mean)
        .map(|(s, m)| (s / count - m * m).max(0.0))
        .collect();
    let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v + eps).sqrt()).collect();
    let g = gamma.as_slice();
    let bt = beta.as_slice();
    let mut xhat = Tensor::zeros(x.shape().clone());
    let mut out = Tensor::zeros(x.shape().clone());
    {
        let xhat_s = UnsafeSlice::new(xhat.as_mut_slice());
        let out_s = UnsafeSlice::new(out.as_mut_slice());
        let grain = (ELEMWISE_GRAIN / spatial.max(1)).max(1);
        kernels::parallel_for_work(n * c, grain, n * c * spatial, |range| {
            for idx in range {
                let ci = idx % c;
                let base = idx * spatial;
                // SAFETY: each (sample, channel) index owns a disjoint block.
                let xh = unsafe { xhat_s.slice_mut(base..base + spatial) };
                let ob = unsafe { out_s.slice_mut(base..base + spatial) };
                let (m, is, gv, bv) = (mean[ci], inv_std[ci], g[ci], bt[ci]);
                for i in 0..spatial {
                    let h = (xd[base + i] - m) * is;
                    xh[i] = h;
                    ob[i] = gv * h + bv;
                }
            }
        });
    }
    BatchNormOutput {
        output: out,
        xhat,
        inv_std,
        mean,
        var,
    }
}

/// Batch normalization in **evaluation** mode, using provided running
/// statistics.
///
/// # Panics
///
/// Panics on rank/shape inconsistencies.
pub fn batch_norm_eval(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    running_mean: &[f32],
    running_var: &[f32],
    eps: f32,
) -> Tensor {
    let (n, c, spatial) = check_bn_input(x);
    assert_eq!(running_mean.len(), c, "running mean must be [C]");
    assert_eq!(running_var.len(), c, "running var must be [C]");
    let xd = x.as_slice();
    let g = gamma.as_slice();
    let bt = beta.as_slice();
    let mut out = Tensor::zeros(x.shape().clone());
    {
        let out_s = UnsafeSlice::new(out.as_mut_slice());
        let grain = (ELEMWISE_GRAIN / spatial.max(1)).max(1);
        kernels::parallel_for_work(n * c, grain, n * c * spatial, |range| {
            for idx in range {
                let ci = idx % c;
                let base = idx * spatial;
                // SAFETY: each (sample, channel) index owns a disjoint block.
                let ob = unsafe { out_s.slice_mut(base..base + spatial) };
                let is = 1.0 / (running_var[ci] + eps).sqrt();
                for i in 0..spatial {
                    ob[i] = g[ci] * (xd[base + i] - running_mean[ci]) * is + bt[ci];
                }
            }
        });
    }
    out
}

/// Gradients of [`batch_norm_train`]: `(grad_input, grad_gamma, grad_beta)`.
///
/// # Panics
///
/// Panics on rank/shape inconsistencies.
pub fn batch_norm_backward(
    gy: &Tensor,
    ctx: &BatchNormOutput,
    gamma: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let (n, c, spatial) = check_bn_input(gy);
    let count = (n * spatial) as f32;
    let gyd = gy.as_slice();
    let xh = ctx.xhat.as_slice();
    let g = gamma.as_slice();
    let sum_gy = per_channel_sum(gyd, xh, n, c, spatial, |a, _| a);
    let sum_gy_xhat = per_channel_sum(gyd, xh, n, c, spatial, |a, b| a * b);
    let mut gx = Tensor::zeros(gy.shape().clone());
    {
        let gx_s = UnsafeSlice::new(gx.as_mut_slice());
        let grain = (ELEMWISE_GRAIN / spatial.max(1)).max(1);
        kernels::parallel_for_work(n * c, grain, n * c * spatial, |range| {
            for idx in range {
                let ci = idx % c;
                let base = idx * spatial;
                // SAFETY: each (sample, channel) index owns a disjoint block.
                let gxb = unsafe { gx_s.slice_mut(base..base + spatial) };
                let scale = g[ci] * ctx.inv_std[ci];
                let mg = sum_gy[ci] / count;
                let mgx = sum_gy_xhat[ci] / count;
                for i in 0..spatial {
                    gxb[i] = scale * (gyd[base + i] - mg - xh[base + i] * mgx);
                }
            }
        });
    }
    (
        gx,
        Tensor::from_slice(&sum_gy_xhat, [c]),
        Tensor::from_slice(&sum_gy, [c]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_to_zero_mean_unit_var() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], [4, 2]);
        let r = batch_norm_train(&x, &Tensor::ones([2]), &Tensor::zeros([2]), 1e-5);
        // Per-channel mean ~ 0.
        let m0 = r.output.narrow(1, 0, 1).mean().item();
        assert!(m0.abs() < 1e-6);
        // Per-channel var ~ 1.
        let v = r.output.narrow(1, 0, 1).square().mean().item();
        assert!((v - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gamma_beta_apply_affine() {
        let x = Tensor::from_vec(vec![0.0, 10.0, 2.0, 10.0], [2, 2]);
        let gamma = Tensor::from_vec(vec![3.0, 1.0], [2]);
        let beta = Tensor::from_vec(vec![1.0, -1.0], [2]);
        let r = batch_norm_train(&x, &gamma, &beta, 1e-5);
        // Channel 0: values 0, 2 → xhat ±1 → out 1 ∓ 3.
        assert!((r.output.at(&[0, 0]) - (1.0 - 3.0)).abs() < 1e-3);
        assert!((r.output.at(&[1, 0]) - (1.0 + 3.0)).abs() < 1e-3);
        // Channel 1 is constant → xhat 0 → out = beta.
        assert!((r.output.at(&[0, 1]) + 1.0).abs() < 1e-3);
    }

    #[test]
    fn eval_uses_running_stats() {
        let x = Tensor::from_vec(vec![2.0, 4.0], [1, 2]);
        let y = batch_norm_eval(
            &x,
            &Tensor::ones([2]),
            &Tensor::zeros([2]),
            &[0.0, 0.0],
            &[1.0, 4.0],
            0.0,
        );
        assert!((y.at(&[0, 0]) - 2.0).abs() < 1e-6);
        assert!((y.at(&[0, 1]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn backward_grads_sum_to_zero_for_input() {
        // BN output is invariant to constant input shifts, so grad_input
        // must sum to ~0 per channel for any upstream gradient.
        let x = Tensor::from_vec(
            (0..24).map(|i| (i as f32 * 0.7).sin()).collect::<Vec<_>>(),
            [2, 3, 4],
        );
        let gamma = Tensor::from_vec(vec![1.0, 2.0, 0.5], [3]);
        let r = batch_norm_train(&x, &gamma, &Tensor::zeros([3]), 1e-5);
        let gy = Tensor::from_vec(
            (0..24).map(|i| (i as f32 * 0.3).cos()).collect::<Vec<_>>(),
            [2, 3, 4],
        );
        let (gx, ggamma, gbeta) = batch_norm_backward(&gy, &r, &gamma);
        for ci in 0..3 {
            let s = gx.narrow(1, ci, 1).sum().item();
            assert!(s.abs() < 1e-4, "channel {ci} grad sum {s}");
        }
        assert_eq!(ggamma.dims(), &[3]);
        assert_eq!(gbeta.dims(), &[3]);
        // grad_beta is the plain per-channel sum of gy.
        let expect_b = gy.sum_axis(2, false).sum_axis(0, false);
        assert!(gbeta.allclose(&expect_b, 1e-5));
    }

    #[test]
    fn numeric_gradient_check_input() {
        // Central differences on a scalar loss sum(bn(x) * w).
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, -0.4, 0.9], [3, 2]);
        let gamma = Tensor::from_vec(vec![1.5, 0.8], [2]);
        let beta = Tensor::from_vec(vec![0.1, -0.2], [2]);
        let wts = Tensor::from_vec(vec![0.2, -0.5, 0.7, 0.4, -0.1, 0.3], [3, 2]);
        let loss = |x: &Tensor| -> f32 {
            batch_norm_train(x, &gamma, &beta, 1e-5)
                .output
                .mul(&wts)
                .sum()
                .item()
        };
        let r = batch_norm_train(&x, &gamma, &beta, 1e-5);
        let (gx, _, _) = batch_norm_backward(&wts, &r, &gamma);
        let eps = 1e-3;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            let ana = gx.as_slice()[i];
            assert!(
                (num - ana).abs() < 2e-2,
                "element {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn fused_widened_channel_equals_per_model() {
        // HFTA identity: BN over [N, B*C, ...] with stacked gamma/beta equals
        // per-model BNs (per-channel statistics are independent).
        let x0 = Tensor::from_vec((0..8).map(|i| i as f32).collect::<Vec<_>>(), [2, 2, 2]);
        let x1 = Tensor::from_vec(
            (0..8).map(|i| (i * i) as f32 * 0.1).collect::<Vec<_>>(),
            [2, 2, 2],
        );
        let g = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let b = Tensor::from_vec(vec![0.5, -0.5], [2]);
        let y0 = batch_norm_train(&x0, &g, &b, 1e-5).output;
        let y1 = batch_norm_train(&x1, &g, &b, 1e-5).output;
        let xf = Tensor::concat(&[&x0, &x1], 1);
        let gf = Tensor::concat(&[&g, &g], 0);
        let bf = Tensor::concat(&[&b, &b], 0);
        let yf = batch_norm_train(&xf, &gf, &bf, 1e-5).output;
        let expect = Tensor::concat(&[&y0, &y1], 1);
        assert!(yf.allclose(&expect, 1e-5));
    }
}
