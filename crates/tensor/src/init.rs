//! Deterministic random tensor construction and weight initializers.

use rand::{Rng as _, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::tensor::Tensor;

/// A deterministic, seedable random number generator for tensors.
///
/// Thin wrapper over ChaCha8 so every experiment in the workspace is
/// reproducible from a single `u64` seed. HFTA's convergence-equivalence
/// experiments (paper §3.3) rely on serial and fused runs drawing the *same*
/// initial weights; [`Rng::split`] derives independent per-model streams.
///
/// # Example
///
/// ```
/// use hfta_tensor::Rng;
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.standard_normal(), b.standard_normal());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    inner: ChaCha8Rng,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn seed_from(seed: u64) -> Self {
        Rng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream (e.g. one per model in an array).
    pub fn split(&mut self) -> Rng {
        Rng::seed_from(self.inner.gen::<u64>())
    }

    /// One sample from the standard normal distribution (Box–Muller).
    pub fn standard_normal(&mut self) -> f32 {
        let u1: f32 = self.inner.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// One sample uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform requires lo < hi");
        self.inner.gen_range(lo..hi)
    }

    /// One sample uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below requires n > 0");
        self.inner.gen_range(0..n)
    }

    /// Tensor of i.i.d. standard normal samples.
    ///
    /// The buffer comes from the recycling pool (same element order as a
    /// `collect` into a fresh `Vec`), so re-initializing models inside a
    /// warm process allocates nothing.
    pub fn randn(&mut self, shape: impl Into<crate::Shape>) -> Tensor {
        let mut t = Tensor::zeros(shape.into());
        for v in t.as_mut_slice() {
            *v = self.standard_normal();
        }
        t
    }

    /// Tensor of i.i.d. `N(mean, std^2)` samples.
    pub fn normal(&mut self, shape: impl Into<crate::Shape>, mean: f32, std: f32) -> Tensor {
        let mut t = Tensor::zeros(shape.into());
        for v in t.as_mut_slice() {
            *v = mean + std * self.standard_normal();
        }
        t
    }

    /// Tensor of i.i.d. uniform samples in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn rand(&mut self, shape: impl Into<crate::Shape>, lo: f32, hi: f32) -> Tensor {
        let mut t = Tensor::zeros(shape.into());
        for v in t.as_mut_slice() {
            *v = self.uniform(lo, hi);
        }
        t
    }

    /// Kaiming-uniform initializer (PyTorch's default for conv/linear):
    /// uniform in `±sqrt(1 / fan_in)` scaled by `sqrt(5)`-gain semantics
    /// reduced to the standard bound `sqrt(1 / fan_in)`.
    pub fn kaiming_uniform(&mut self, shape: impl Into<crate::Shape>, fan_in: usize) -> Tensor {
        let bound = if fan_in == 0 {
            0.0
        } else {
            (1.0 / fan_in as f32).sqrt()
        };
        if bound == 0.0 {
            return Tensor::zeros(shape);
        }
        self.rand(shape, -bound, bound)
    }

    /// Xavier/Glorot-uniform initializer.
    pub fn xavier_uniform(
        &mut self,
        shape: impl Into<crate::Shape>,
        fan_in: usize,
        fan_out: usize,
    ) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.rand(shape, -bound, bound)
    }

    /// Fisher–Yates shuffle of a slice of indices.
    pub fn shuffle(&mut self, data: &mut [usize]) {
        for i in (1..data.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            data.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let a = Rng::seed_from(7).randn([16]);
        let b = Rng::seed_from(7).randn([16]);
        assert_eq!(a, b);
        let c = Rng::seed_from(8).randn([16]);
        assert_ne!(a, c);
    }

    #[test]
    fn split_streams_diverge() {
        let mut root = Rng::seed_from(1);
        let a = root.split().randn([8]);
        let b = root.split().randn([8]);
        assert_ne!(a, b);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng::seed_from(1234);
        let t = rng.randn([10_000]);
        let mean = t.mean().item();
        let var = t.square().mean().item() - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng::seed_from(99);
        let t = rng.rand([1000], -0.25, 0.5);
        assert!(t.min_value() >= -0.25);
        assert!(t.max_value() < 0.5);
    }

    #[test]
    fn kaiming_bound() {
        let mut rng = Rng::seed_from(3);
        let t = rng.kaiming_uniform([64, 16], 16);
        let bound = (1.0f32 / 16.0).sqrt();
        assert!(t.max_value() <= bound && t.min_value() >= -bound);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from(5);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn below_in_range() {
        let mut rng = Rng::seed_from(17);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
    }
}
