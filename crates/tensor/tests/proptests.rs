//! Property-based tests of tensor invariants.

use hfta_tensor::conv::{conv2d, ConvCfg};
use hfta_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

fn tensor_for(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    prop::collection::vec(-10.0f32..10.0, n)
        .prop_map(move |data| Tensor::from_vec(data, dims.clone()))
}

proptest! {
    #[test]
    fn add_commutes(dims in small_dims()) {
        let n: usize = dims.iter().product();
        let a = Tensor::from_vec((0..n).map(|i| i as f32 * 0.5).collect(), dims.clone());
        let b = Tensor::from_vec((0..n).map(|i| (n - i) as f32).collect(), dims);
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn mul_by_one_is_identity(t in small_dims().prop_flat_map(tensor_for)) {
        prop_assert_eq!(t.mul(&t.ones_like()), t.clone());
        prop_assert_eq!(t.mul_scalar(1.0), t);
    }

    #[test]
    fn reshape_round_trip(t in small_dims().prop_flat_map(tensor_for)) {
        let flat = t.flatten();
        prop_assert_eq!(flat.reshape(t.dims()), t);
    }

    #[test]
    fn transpose_is_involution(rows in 1usize..6, cols in 1usize..6) {
        let t = Tensor::arange(rows * cols).reshape(&[rows, cols]);
        prop_assert_eq!(t.t().t(), t);
    }

    #[test]
    fn chunk_concat_round_trip(chunks in 1usize..4, per in 1usize..4, inner in 1usize..4) {
        let t = Tensor::arange(chunks * per * inner).reshape(&[chunks * per, inner]);
        let parts = t.chunk(chunks, 0);
        let refs: Vec<&Tensor> = parts.iter().collect();
        prop_assert_eq!(Tensor::concat(&refs, 0), t);
    }

    #[test]
    fn sum_to_is_broadcast_adjoint(outer in 1usize..5, inner in 1usize..5) {
        // <broadcast(x), y> == <x, sum_to(y)>
        let x = Tensor::arange(inner);
        let y = Tensor::arange(outer * inner)
            .map(|v| (v * 0.37).sin())
            .reshape(&[outer, inner]);
        let broadcast = Tensor::zeros([outer, inner]).add(&x);
        let lhs = broadcast.flatten().dot(&y.flatten());
        let reduced = y.sum_to(&Shape::new(vec![inner]));
        let rhs = x.dot(&reduced);
        prop_assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0));
    }

    #[test]
    fn matmul_identity(n in 1usize..6, m in 1usize..6) {
        let a = Tensor::arange(n * m).reshape(&[n, m]);
        prop_assert_eq!(a.matmul(&Tensor::eye(m)), a.clone());
        prop_assert_eq!(Tensor::eye(n).matmul(&a), a);
    }

    #[test]
    fn matmul_distributes_over_addition(n in 1usize..4, k in 1usize..4, m in 1usize..4) {
        let a = Tensor::arange(n * k).map(|v| v * 0.1).reshape(&[n, k]);
        let b = Tensor::arange(k * m).map(|v| (v * 0.3).cos()).reshape(&[k, m]);
        let c = Tensor::arange(k * m).map(|v| (v * 0.7).sin()).reshape(&[k, m]);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn softmax_rows_sum_to_one(rows in 1usize..5, cols in 1usize..6) {
        let t = Tensor::arange(rows * cols).map(|v| (v * 1.7).sin() * 5.0).reshape(&[rows, cols]);
        let s = t.softmax(1);
        for r in 0..rows {
            let sum: f32 = (0..cols).map(|c| s.at(&[r, c])).sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn grouped_conv_equals_concat_of_convs(
        b in 1usize..4,
        cin in 1usize..3,
        cout in 1usize..3,
        hw in 3usize..6,
    ) {
        // The HFTA Table 6 identity over random small shapes.
        let cfg = ConvCfg::square(1, 1, 1);
        let mk = |seed: usize, dims: &[usize]| {
            let n: usize = dims.iter().product();
            Tensor::from_vec(
                (0..n).map(|i| ((i + seed) as f32 * 0.61).sin()).collect(),
                dims.to_vec(),
            )
        };
        let xs: Vec<Tensor> = (0..b).map(|i| mk(i * 101, &[2, cin, hw, hw])).collect();
        let ws: Vec<Tensor> = (0..b).map(|i| mk(i * 37 + 5, &[cout, cin, 3, 3])).collect();
        let per: Vec<Tensor> = (0..b).map(|i| conv2d(&xs[i], &ws[i], None, cfg)).collect();
        let xf = Tensor::concat(&xs.iter().collect::<Vec<_>>(), 1);
        let wf = Tensor::concat(&ws.iter().collect::<Vec<_>>(), 0);
        let fused = conv2d(&xf, &wf, None, cfg.fused(b));
        let expect = Tensor::concat(&per.iter().collect::<Vec<_>>(), 1);
        prop_assert!(fused.allclose(&expect, 1e-3));
    }

    #[test]
    fn max_pool_bounded_by_input_extrema(hw in 2usize..8) {
        let t = Tensor::arange(hw * hw).map(|v| (v * 2.3).sin()).reshape(&[1, 1, hw, hw]);
        let r = hfta_tensor::pool::max_pool2d(&t, (2, 2), (1, 1));
        prop_assert!(r.output.max_value() <= t.max_value() + 1e-6);
        prop_assert!(r.output.min_value() >= t.min_value() - 1e-6);
    }

    #[test]
    fn repeat_interleave_preserves_multiset(len in 1usize..6, reps in 1usize..4) {
        let t = Tensor::arange(len);
        let r = t.repeat_interleave(reps, 0);
        prop_assert_eq!(r.numel(), len * reps);
        prop_assert!((r.sum().item() - t.sum().item() * reps as f32).abs() < 1e-4);
    }
}

// --- Kernel determinism contract at the conv level -------------------------
//
// The forward and both backward convolutions must be **bit-identical** at
// every thread count and on both GEMM backends: HFTA's Figure 3 claim
// (fused training is bit-exact with serial training) only survives if the
// compute layer underneath is deterministic. `set_num_threads` /
// `set_backend` are process globals, so these tests serialize on a mutex
// and restore the configuration before releasing it.

use hfta_kernels::{set_backend, set_num_threads, GemmBackend};
use hfta_tensor::conv::{conv2d_grad_input, conv2d_grad_weight};
use std::sync::Mutex;

static KERNEL_GLOBAL_LOCK: Mutex<()> = Mutex::new(());

struct RestoreGlobals {
    threads: usize,
}

impl Drop for RestoreGlobals {
    fn drop(&mut self) {
        set_num_threads(self.threads);
        set_backend(GemmBackend::Blocked);
    }
}

fn mk_tensor(seed: usize, dims: &[usize]) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec(
        (0..n)
            .map(|i| ((i * 7 + seed) as f32 * 0.61).sin())
            .collect(),
        dims.to_vec(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv2d_bit_identical_across_threads_and_backends(
        n in 1usize..4,
        g in 1usize..4,
        cing in 1usize..4,
        coutg in 1usize..4,
        hw in 4usize..9,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0usize..1000,
    ) {
        let _l = KERNEL_GLOBAL_LOCK.lock().unwrap();
        let _restore = RestoreGlobals { threads: hfta_kernels::num_threads() };
        let cfg = ConvCfg::square(stride, pad, g);
        let x = mk_tensor(seed, &[n, g * cing, hw, hw]);
        let w = mk_tensor(seed + 13, &[g * coutg, cing, 3, 3]);
        let bias = mk_tensor(seed + 29, &[g * coutg]);
        let y = conv2d(&x, &w, Some(&bias), cfg);
        let gy = mk_tensor(seed + 71, y.dims());
        let gx = conv2d_grad_input(&w, &gy, (hw, hw), g * cing, cfg);
        let gw = conv2d_grad_weight(&x, &gy, (3, 3), cfg);
        for threads in [1usize, 2, 4] {
            set_num_threads(threads);
            for backend in [GemmBackend::Blocked, GemmBackend::Naive] {
                set_backend(backend);
                prop_assert_eq!(&conv2d(&x, &w, Some(&bias), cfg), &y);
                prop_assert_eq!(&conv2d_grad_input(&w, &gy, (hw, hw), g * cing, cfg), &gx);
                prop_assert_eq!(&conv2d_grad_weight(&x, &gy, (3, 3), cfg), &gw);
            }
        }
    }

    #[test]
    fn batched_matmul_bit_identical_across_threads(
        b in 1usize..7,
        m in 1usize..10,
        k in 1usize..10,
        nn in 1usize..10,
        seed in 0usize..1000,
    ) {
        let _l = KERNEL_GLOBAL_LOCK.lock().unwrap();
        let _restore = RestoreGlobals { threads: hfta_kernels::num_threads() };
        let x = mk_tensor(seed, &[b, m, k]);
        let w = mk_tensor(seed + 3, &[b, k, nn]);
        let bias = mk_tensor(seed + 9, &[b, 1, nn]);
        let y = x.baddbmm(&w, &bias);
        let p = x.bmm(&w);
        let pn = x.bmm_nt(&w.transpose(1, 2));
        let pt = x.transpose(1, 2).bmm_tn(&w);
        for threads in [1usize, 2, 4] {
            set_num_threads(threads);
            prop_assert_eq!(&x.baddbmm(&w, &bias), &y);
            prop_assert_eq!(&x.bmm(&w), &p);
            prop_assert_eq!(&x.bmm_nt(&w.transpose(1, 2)), &pn);
            prop_assert_eq!(&x.transpose(1, 2).bmm_tn(&w), &pt);
        }
    }
}
