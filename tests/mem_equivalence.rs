//! Pooled-storage equivalence and steady-state allocation guards.
//!
//! The size-class pool under `Tensor` recycles buffers between steps; the
//! HFTA bit-identity contract (fused training reproduces serial training
//! bit-for-bit) only survives if recycling changes *nothing* about the
//! computed values. These tests train real fused models twice — pool on
//! vs `HFTA_MEM_POOL=off` semantics (`set_pool_enabled(false)`) — and
//! compare every parameter bit-for-bit at 1 and 4 worker threads, then
//! pin down the two properties the memory layer itself claims: fixed
//! workloads produce identical pool statistics, and after warm-up a
//! training step performs zero fresh allocations.

use std::sync::Mutex;

use hfta_core::format::{conv_to_array, stack_conv, stack_targets};
use hfta_core::loss::{fused_bce_with_logits, fused_cross_entropy, fused_nll_loss, Reduction};
use hfta_core::ops::{FusedConv2d, FusedLinear, FusedModule};
use hfta_core::optim::{FusedAdam, FusedOptimizer, FusedSgd, PerModel};
use hfta_data::PointClouds;
use hfta_models::{DcganCfg, FusedDiscriminator, FusedPointNetCls, PointNetCfg};
use hfta_nn::layers::{Conv2dCfg, LinearCfg};
use hfta_nn::{Module, Tape};
use hfta_tensor::{Rng, Tensor};
use proptest::prelude::*;

/// The pool toggle, thread count and statistics are process-global, so
/// every test in this binary runs under one lock and restores the
/// defaults (pool on) before releasing it.
static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Trains a fused conv → linear classifier for `steps` and returns every
/// parameter as raw `f32` bit patterns.
fn conv_linear_param_bits(
    b: usize,
    steps: usize,
    seed: u64,
    threads: usize,
    pooled: bool,
) -> Vec<Vec<u32>> {
    hfta_kernels::set_num_threads(threads);
    hfta_mem::set_pool_enabled(pooled);
    hfta_mem::trim();
    let mut rng = Rng::seed_from(seed);
    let conv = FusedConv2d::new(b, Conv2dCfg::new(3, 6, 3), &mut rng);
    let x = rng.rand([2, 3 * b, 8, 8], -1.0, 1.0);
    // Probe the conv output shape once to size the classifier head.
    let flat = {
        let tape = Tape::new();
        let h = conv.forward(&tape.leaf(x.clone()));
        let d = h.dims();
        d[1] / b * d[2] * d[3]
    };
    let fc = FusedLinear::new(b, LinearCfg::new(flat, 4), &mut rng);
    let mut params = conv.fused_parameters();
    params.extend(fc.fused_parameters());
    let mut opt =
        FusedSgd::new(params.clone(), PerModel::uniform(b, 0.05), 0.9).expect("widths match");
    let targets: Vec<usize> = (0..2 * b).map(|_| rng.below(4)).collect();
    for _ in 0..steps {
        opt.zero_grad();
        let tape = Tape::new();
        let h = conv.forward(&tape.leaf(x.clone())).relu();
        let logits = fc.forward(&conv_to_array(&h.flatten_from(1), b));
        fused_cross_entropy(&logits, &targets, Reduction::Mean).backward();
        opt.step();
    }
    params
        .iter()
        .map(|p| {
            p.param
                .value_cloned()
                .to_vec()
                .into_iter()
                .map(f32::to_bits)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Satellite (c): pooled and unpooled fused conv+linear training is
    /// bit-identical at 1 and 4 worker threads, for arbitrary seeds and
    /// array widths.
    #[test]
    fn pooled_training_is_bit_identical(b in 1usize..4, seed in 0u64..1_000) {
        let _g = lock();
        for threads in [1usize, 4] {
            let pooled = conv_linear_param_bits(b, 2, seed, threads, true);
            let plain = conv_linear_param_bits(b, 2, seed, threads, false);
            prop_assert_eq!(&pooled, &plain);
        }
        hfta_mem::set_pool_enabled(true);
    }
}

/// One fused DCGAN discriminator step; returns the step closure's driver
/// state so callers control warm-up vs measured windows.
fn run_dcgan_steps(b: usize, steps: usize) {
    let mut rng = Rng::seed_from(21);
    let disc = FusedDiscriminator::new(b, DcganCfg::mini(), &mut rng);
    disc.set_training(false);
    let mut opt =
        FusedAdam::new(disc.fused_parameters(), PerModel::uniform(b, 2e-3)).expect("widths match");
    let real = rng.rand([4, 3, 16, 16], -1.0, 1.0);
    let labels = Tensor::ones([4, b]);
    for _ in 0..steps {
        opt.zero_grad();
        let tape = Tape::new();
        let copies: Vec<Tensor> = vec![real.clone(); b];
        let d = disc.forward(&tape.leaf(stack_conv(&copies).expect("stackable")));
        fused_bce_with_logits(&d, &labels, b, Reduction::Mean).backward();
        opt.step();
    }
}

/// DCGAN bit-identity at the full-model level, pool on vs off.
#[test]
fn dcgan_step_pooled_matches_unpooled() {
    let _g = lock();
    let run = |pooled: bool, threads: usize| -> Vec<Vec<u32>> {
        hfta_kernels::set_num_threads(threads);
        hfta_mem::set_pool_enabled(pooled);
        hfta_mem::trim();
        let mut rng = Rng::seed_from(33);
        let disc = FusedDiscriminator::new(3, DcganCfg::mini(), &mut rng);
        disc.set_training(false);
        let params = disc.fused_parameters();
        let mut opt =
            FusedAdam::new(params.clone(), PerModel::uniform(3, 2e-3)).expect("widths match");
        let real = rng.rand([4, 3, 16, 16], -1.0, 1.0);
        let labels = Tensor::ones([4, 3]);
        for _ in 0..2 {
            opt.zero_grad();
            let tape = Tape::new();
            let copies: Vec<Tensor> = vec![real.clone(); 3];
            let d = disc.forward(&tape.leaf(stack_conv(&copies).expect("stackable")));
            fused_bce_with_logits(&d, &labels, 3, Reduction::Mean).backward();
            opt.step();
        }
        params
            .iter()
            .map(|p| {
                p.param
                    .value_cloned()
                    .to_vec()
                    .into_iter()
                    .map(f32::to_bits)
                    .collect()
            })
            .collect()
    };
    for threads in [1usize, 4] {
        assert_eq!(
            run(true, threads),
            run(false, threads),
            "pooled DCGAN diverged at {threads} threads"
        );
    }
    hfta_mem::set_pool_enabled(true);
}

/// PointNet bit-identity at the full-model level, pool on vs off.
#[test]
fn pointnet_step_pooled_matches_unpooled() {
    let _g = lock();
    let run = |pooled: bool, threads: usize| -> Vec<Vec<u32>> {
        hfta_kernels::set_num_threads(threads);
        hfta_mem::set_pool_enabled(pooled);
        hfta_mem::trim();
        let mut rng = Rng::seed_from(34);
        let net = FusedPointNetCls::new(2, PointNetCfg::mini(6), &mut rng);
        net.set_training(false);
        let params = net.fused_parameters();
        let mut opt =
            FusedAdam::new(params.clone(), PerModel::uniform(2, 1e-3)).expect("widths match");
        let mut data = PointClouds::new(32, 8);
        let (x, y) = data.batch(6);
        let targets = stack_targets(&vec![y.clone(); 2]).expect("stackable");
        for _ in 0..2 {
            opt.zero_grad();
            let tape = Tape::new();
            let copies: Vec<Tensor> = vec![x.clone(); 2];
            let lp = net.forward(&tape.leaf(stack_conv(&copies).expect("stackable")));
            fused_nll_loss(&lp, &targets, Reduction::Mean).backward();
            opt.step();
        }
        params
            .iter()
            .map(|p| {
                p.param
                    .value_cloned()
                    .to_vec()
                    .into_iter()
                    .map(f32::to_bits)
                    .collect()
            })
            .collect()
    };
    for threads in [1usize, 4] {
        assert_eq!(
            run(true, threads),
            run(false, threads),
            "pooled PointNet diverged at {threads} threads"
        );
    }
    hfta_mem::set_pool_enabled(true);
}

/// Satellite (c): identical workloads produce identical pool statistics —
/// the accounting itself is deterministic (fixed to 1 worker thread, the
/// configuration where scratch-arena growth order is fully determined).
#[test]
fn pool_stats_are_deterministic_for_fixed_workload() {
    let _g = lock();
    hfta_kernels::set_num_threads(1);
    hfta_mem::set_pool_enabled(true);
    let observe = || {
        hfta_mem::trim();
        hfta_mem::reset_stats();
        run_dcgan_steps(2, 3);
        let s = hfta_mem::stats();
        (
            s.pool_fresh_allocs,
            s.pool_reuses,
            s.scratch_fresh_allocs,
            s.peak_footprint_bytes,
            s.live_bytes,
        )
    };
    let a = observe();
    let b = observe();
    assert_eq!(a, b, "same workload, different pool statistics");
    assert!(a.1 > 0, "workload never reused a pooled buffer");
}

/// Satellite (f): after warm-up, a training step allocates nothing fresh —
/// every buffer on the hot path comes from the pool or a scratch arena.
#[test]
fn steady_state_steps_allocate_nothing() {
    let _g = lock();
    hfta_kernels::set_num_threads(4);
    hfta_mem::set_pool_enabled(true);
    for b in [1usize, 4] {
        hfta_mem::trim();
        hfta_mem::reset_stats();
        run_dcgan_steps(b, 3); // warm-up: grows pool + arenas to steady state
        let before = hfta_mem::stats();
        run_dcgan_steps(b, 2); // rebuilds the model too: still no fresh allocs
        let after = hfta_mem::stats();
        assert_eq!(
            after.fresh_allocs() - before.fresh_allocs(),
            0,
            "B={b}: steady-state steps allocated fresh memory"
        );
        assert!(
            after.pool_reuses > before.pool_reuses,
            "B={b}: steady-state steps never hit the pool"
        );
    }
}
