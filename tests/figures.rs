//! Integration tests over the figure/table pipelines: every experiment
//! harness must produce curves with the paper's qualitative shape.

use hfta_bench::sweep::{gpu_panel, linear_regression, tpu_curve};
use hfta_cluster::{classify, trace};
use hfta_models::Workload;
use hfta_sim::{DeviceSpec, GpuSim, SharingPolicy};

#[test]
fn fig4_shapes_hold_on_every_panel() {
    for device in DeviceSpec::evaluation_gpus() {
        for workload in Workload::paper_benchmarks() {
            let panel = gpu_panel(&device, &workload);
            let tag = format!("{}/{}", panel.device, panel.workload);
            // HFTA peak beats every baseline's peak.
            for base in [
                SharingPolicy::Serial,
                SharingPolicy::Concurrent,
                SharingPolicy::Mps,
            ] {
                assert!(
                    panel.peak_speedup_over(base) > 1.0,
                    "{tag}: HFTA did not beat {}",
                    base.name()
                );
            }
            // HFTA curves are monotone non-decreasing up to their peak
            // then plateau (never collapse below 70% of peak).
            for amp in [false, true] {
                let hfta = panel.curve(SharingPolicy::Hfta, amp).unwrap();
                let peak = hfta.peak();
                let last = hfta.points.last().unwrap().normalized;
                assert!(last > 0.7 * peak, "{tag}: HFTA collapsed {last} < {peak}");
            }
            // HFTA fits at least as many models as MPS (paper: 1.5-7.6x).
            let hfta_max = panel
                .curve(SharingPolicy::Hfta, false)
                .unwrap()
                .max_models();
            let mps_max = panel.curve(SharingPolicy::Mps, false).unwrap().max_models();
            assert!(hfta_max >= mps_max, "{tag}: {hfta_max} vs {mps_max}");
        }
    }
}

#[test]
fn fig4_mig_panel_exists_only_on_a100() {
    let a100 = gpu_panel(&DeviceSpec::a100(), &Workload::pointnet_cls());
    assert!(a100.curve(SharingPolicy::Mig, false).is_some());
    let v100 = gpu_panel(&DeviceSpec::v100(), &Workload::pointnet_cls());
    assert!(v100.curve(SharingPolicy::Mig, false).is_none());
}

#[test]
fn fig5_resnet_benefits_from_fusion() {
    let panel = gpu_panel(&DeviceSpec::v100(), &Workload::resnet18());
    let s = panel.peak_speedup_over(SharingPolicy::Serial);
    assert!(s > 1.5, "ResNet HFTA speedup only {s}");
}

#[test]
fn fig6_tpu_ordering_matches_paper() {
    // DCGAN >> PointNet-cls >> PointNet-seg (paper: 15.13 / 4.93 / 1.20).
    let peak = |w: &Workload| {
        tpu_curve(w)
            .iter()
            .map(|p| p.normalized)
            .fold(0.0f64, f64::max)
    };
    let dcgan = peak(&Workload::dcgan());
    let cls = peak(&Workload::pointnet_cls());
    let seg = peak(&Workload::pointnet_seg());
    assert!(dcgan > cls, "dcgan {dcgan} vs cls {cls}");
    assert!(cls > seg, "cls {cls} vs seg {seg}");
    assert!(seg >= 1.0, "seg {seg} must not regress");
}

#[test]
fn fig7_memory_regressions_recover_framework_overhead() {
    let w = Workload::pointnet_cls();
    for amp in [false, true] {
        let sim = GpuSim::new(DeviceSpec::v100(), amp);
        let mut hfta_pts = Vec::new();
        let mut mps_pts = Vec::new();
        for j in 1..=6 {
            let h = sim.simulate(SharingPolicy::Hfta, &w.fused_job(j), 1);
            if h.fits {
                hfta_pts.push((j as f64, h.memory_gib));
            }
            let m = sim.simulate(SharingPolicy::Mps, &w.serial_job(), j);
            if m.fits {
                mps_pts.push((j as f64, m.memory_gib));
            }
        }
        let (h_slope, h_int) = linear_regression(&hfta_pts);
        let (m_slope, m_int) = linear_regression(&mps_pts);
        let expected = DeviceSpec::v100().framework_overhead_gib(amp);
        // HFTA intercept ~ framework overhead (+ shared workspace).
        assert!(
            (h_int - expected).abs() < 0.5,
            "amp={amp}: intercept {h_int} vs overhead {expected}"
        );
        // MPS line passes ~through the origin with a steeper slope.
        assert!(m_int.abs() < 0.2, "amp={amp}: MPS intercept {m_int}");
        assert!(
            m_slope > h_slope,
            "amp={amp}: slopes {m_slope} vs {h_slope}"
        );
    }
}

#[test]
fn fig8_counters_scale_for_hfta_only() {
    let panel = gpu_panel(&DeviceSpec::a100(), &Workload::pointnet_cls());
    let hfta = panel.curve(SharingPolicy::Hfta, true).unwrap();
    let first = hfta.points.first().unwrap().result.counters.sm_active;
    let last = hfta.points.last().unwrap().result.counters.sm_active;
    assert!(
        last > 3.0 * first,
        "HFTA sm_active must scale: {first} -> {last}"
    );
    // Serial utilization is low (paper: ~0.1).
    let serial = panel.curve(SharingPolicy::Serial, true).unwrap().points[0]
        .result
        .counters
        .sm_active;
    assert!(serial < 0.25, "serial sm_active {serial}");
    // Concurrent stays at serial's level.
    let conc = panel
        .curve(SharingPolicy::Concurrent, true)
        .unwrap()
        .points
        .last()
        .unwrap()
        .result
        .counters
        .sm_active;
    assert!(
        (conc - serial).abs() < 0.15,
        "concurrent {conc} vs serial {serial}"
    );
}

#[test]
fn fig12_serial_utilization_lower_on_newer_gpu() {
    let w = Workload::pointnet_cls();
    let active = |d: DeviceSpec| {
        GpuSim::new(d, true)
            .simulate(SharingPolicy::Serial, &w.serial_job(), 1)
            .counters
            .sm_active
    };
    assert!(active(DeviceSpec::a100()) < active(DeviceSpec::v100()));
}

#[test]
fn table1_pipeline_end_to_end() {
    let jobs = trace::generate(&trace::TraceCfg::small(), 99);
    let cats = classify::classify(&jobs, &classify::ClassifyCfg::default());
    let b = classify::Breakdown::from_assignments(&jobs, &cats);
    assert!(b.share(trace::JobCategory::RepetitiveSingleGpu) > 30.0);
    assert!(classify::accuracy(&jobs, &cats) > 0.85);
}

#[test]
fn table10_amp_pattern_on_all_gpus() {
    for device in DeviceSpec::evaluation_gpus() {
        let panel = gpu_panel(&device, &Workload::pointnet_cls());
        let serial = panel.amp_gain(SharingPolicy::Serial);
        let hfta = panel.amp_gain(SharingPolicy::Hfta);
        assert!(serial < 1.5, "{}: serial AMP gain {serial}", device.name);
        assert!(
            hfta > 1.5,
            "{}: HFTA AMP gain {hfta} should engage tensor cores",
            device.name
        );
    }
}
