//! End-to-end equivalence tests: training `B` models serially must match
//! training them as one HFTA array — the paper's central correctness
//! claim (§3.2–3.3), exercised across model families and optimizers.

use hfta_core::array::copy_model_weights;
use hfta_core::format::{stack_conv, stack_targets};
use hfta_core::loss::{fused_cross_entropy, fused_nll_loss, Reduction};
use hfta_core::ops::FusedModule;
use hfta_core::optim::{FusedAdadelta, FusedAdam, FusedOptimizer, FusedSgd, PerModel};
use hfta_data::{LabeledImages, PointClouds};
use hfta_models::{
    AlexNet, AlexNetCfg, FusedAlexNet, FusedPointNetCls, FusedResNet, PointNetCfg, PointNetCls,
    ResNet, ResNetCfg,
};
use hfta_nn::{Adadelta, Adam, Module, Optimizer, Sgd, Tape};
use hfta_tensor::{Rng, Tensor};

/// Drives `iters` training steps of `b` serial models and the fused array
/// on identical data, returning (serial losses, fused losses) per model.
fn run_pair<MSerial, MFused>(
    serial: Vec<MSerial>,
    fused: MFused,
    mut serial_opts: Vec<Box<dyn Optimizer>>,
    mut fused_opt: Box<dyn FusedOptimizer>,
    batches: &[(Tensor, Vec<usize>)],
    classes: usize,
) -> (Vec<Vec<f32>>, Vec<Vec<f32>>)
where
    MSerial: Module,
    MFused: FusedModule,
{
    let b = serial.len();
    for (i, m) in serial.iter().enumerate() {
        copy_model_weights(&fused.fused_parameters(), i, &m.parameters());
        m.set_training(false);
    }
    fused.set_training(false);

    let mut serial_losses = vec![Vec::new(); b];
    for (i, model) in serial.iter().enumerate() {
        for (x, y) in batches {
            serial_opts[i].zero_grad();
            let tape = Tape::new();
            let loss = model.forward(&tape.leaf(x.clone())).cross_entropy(y);
            serial_losses[i].push(loss.item());
            loss.backward();
            serial_opts[i].step();
        }
    }

    let mut fused_losses = vec![Vec::new(); b];
    for (x, y) in batches {
        fused_opt.zero_grad();
        let tape = Tape::new();
        let copies: Vec<Tensor> = (0..b).map(|_| x.clone()).collect();
        let fx = tape.leaf(stack_conv(&copies).unwrap());
        let logits = fused.forward(&fx); // [B, N, classes]
        let n = x.dim(0);
        for (i, f) in fused_losses.iter_mut().enumerate() {
            let per = logits
                .narrow(0, i, 1)
                .reshape(&[n, classes])
                .cross_entropy(y);
            f.push(per.item());
        }
        let targets = stack_targets(&vec![y.clone(); b]).unwrap();
        fused_cross_entropy(&logits, &targets, Reduction::Mean).backward();
        fused_opt.step();
    }
    (serial_losses, fused_losses)
}

fn assert_matching(serial: &[Vec<f32>], fused: &[Vec<f32>], tol: f32, what: &str) {
    for (m, (s, f)) in serial.iter().zip(fused).enumerate() {
        for (t, (a, b)) in s.iter().zip(f).enumerate() {
            assert!(
                (a - b).abs() <= tol,
                "{what}: model {m} iter {t}: serial {a} vs fused {b}"
            );
        }
        // And training actually moved.
        assert!(
            s.iter().any(|v| (v - s[0]).abs() > 1e-7),
            "{what}: static loss"
        );
    }
}

#[test]
fn alexnet_array_matches_serial_sgd() {
    let b = 3;
    let cfg = AlexNetCfg::mini(4);
    let mut rng = Rng::seed_from(1);
    let fused = FusedAlexNet::new(b, cfg, &mut rng);
    let serial: Vec<AlexNet> = (0..b).map(|_| AlexNet::new(cfg, &mut rng)).collect();
    let lrs = [0.05f32, 0.01, 0.002];
    let opts: Vec<Box<dyn Optimizer>> = serial
        .iter()
        .zip(lrs)
        .map(|(m, lr)| Box::new(Sgd::new(m.parameters(), lr, 0.9)) as Box<dyn Optimizer>)
        .collect();
    let fopt = Box::new(
        FusedSgd::new(fused.fused_parameters(), PerModel::new(lrs.to_vec()), 0.9).unwrap(),
    );
    let mut data = LabeledImages::new(16, 4, 5);
    let batches: Vec<_> = (0..5).map(|_| data.batch(6)).collect();
    let (s, f) = run_pair(serial, fused, opts, fopt, &batches, 4);
    assert_matching(&s, &f, 2e-3, "alexnet/sgd");
}

#[test]
fn resnet_array_matches_serial_adam() {
    let b = 2;
    let cfg = ResNetCfg::mini(4);
    let mut rng = Rng::seed_from(2);
    let fused = FusedResNet::new(b, cfg, &mut rng);
    let serial: Vec<ResNet> = (0..b).map(|_| ResNet::new(cfg, &mut rng)).collect();
    let lrs = [0.01f32, 0.001];
    let opts: Vec<Box<dyn Optimizer>> = serial
        .iter()
        .zip(lrs)
        .map(|(m, lr)| Box::new(Adam::new(m.parameters(), lr)) as Box<dyn Optimizer>)
        .collect();
    let fopt =
        Box::new(FusedAdam::new(fused.fused_parameters(), PerModel::new(lrs.to_vec())).unwrap());
    let mut data = LabeledImages::new(8, 4, 6);
    let batches: Vec<_> = (0..5).map(|_| data.batch(6)).collect();
    let (s, f) = run_pair(serial, fused, opts, fopt, &batches, 4);
    assert_matching(&s, &f, 2e-3, "resnet/adam");
}

#[test]
fn resnet_array_matches_serial_adadelta() {
    // The paper trains ResNet-18 with Adadelta (§4); verify that fused
    // Adadelta with per-model rho matches too.
    let b = 2;
    let cfg = ResNetCfg::mini(4);
    let mut rng = Rng::seed_from(3);
    let fused = FusedResNet::new(b, cfg, &mut rng);
    let serial: Vec<ResNet> = (0..b).map(|_| ResNet::new(cfg, &mut rng)).collect();
    let lrs = [1.0f32, 0.5];
    let rhos = [0.9f32, 0.85];
    let opts: Vec<Box<dyn Optimizer>> = serial
        .iter()
        .zip(lrs.iter().zip(rhos))
        .map(|(m, (&lr, rho))| {
            Box::new(Adadelta::with_rho(m.parameters(), lr, rho, 1e-6)) as Box<dyn Optimizer>
        })
        .collect();
    let fopt = Box::new(
        FusedAdadelta::new(
            fused.fused_parameters(),
            PerModel::new(lrs.to_vec()),
            PerModel::new(rhos.to_vec()),
            1e-6,
        )
        .unwrap(),
    );
    let mut data = LabeledImages::new(8, 4, 7);
    let batches: Vec<_> = (0..4).map(|_| data.batch(6)).collect();
    let (s, f) = run_pair(serial, fused, opts, fopt, &batches, 4);
    assert_matching(&s, &f, 2e-3, "resnet/adadelta");
}

#[test]
fn pointnet_cls_array_matches_serial() {
    let b = 3;
    let cfg = PointNetCfg::mini(6);
    let mut rng = Rng::seed_from(4);
    let fused = FusedPointNetCls::new(b, cfg, &mut rng);
    fused.set_training(false);
    let serial: Vec<PointNetCls> = (0..b)
        .map(|_| {
            let m = PointNetCls::new(cfg, &mut rng);
            m.set_training(false);
            m
        })
        .collect();
    for (i, m) in serial.iter().enumerate() {
        copy_model_weights(&fused.fused_parameters(), i, &m.parameters());
    }
    let lrs = [0.01f32, 0.003, 0.001];
    let mut data = PointClouds::new(32, 8);
    let batches: Vec<_> = (0..5).map(|_| data.batch(6)).collect();

    // Serial.
    let mut serial_losses = vec![Vec::new(); b];
    for (i, model) in serial.iter().enumerate() {
        let mut opt = Adam::new(model.parameters(), lrs[i]);
        for (x, y) in &batches {
            opt.zero_grad();
            let tape = Tape::new();
            let loss = model.forward(&tape.leaf(x.clone())).nll_loss(y);
            serial_losses[i].push(loss.item());
            loss.backward();
            opt.step();
        }
    }
    // Fused (PointNet outputs log-probs, so drive nll over array format).
    let mut opt = FusedAdam::new(fused.fused_parameters(), PerModel::new(lrs.to_vec())).unwrap();
    let mut fused_losses = vec![Vec::new(); b];
    for (x, y) in &batches {
        opt.zero_grad();
        let tape = Tape::new();
        let copies: Vec<Tensor> = (0..b).map(|_| x.clone()).collect();
        let fx = tape.leaf(stack_conv(&copies).unwrap());
        let lp = fused.forward(&fx);
        for (i, f) in fused_losses.iter_mut().enumerate() {
            f.push(lp.narrow(0, i, 1).reshape(&[6, 6]).nll_loss(y).item());
        }
        let targets = stack_targets(&vec![y.clone(); b]).unwrap();
        fused_nll_loss(&lp, &targets, Reduction::Mean).backward();
        opt.step();
    }
    assert_matching(&serial_losses, &fused_losses, 2e-3, "pointnet/adam");
}

#[test]
fn fuse_then_unfuse_preserves_training_state() {
    // Train fused, unfuse, keep training serially: the continued runs must
    // behave like normal models (finite losses that keep improving).
    let b = 2;
    let mut rng = Rng::seed_from(9);
    let fused = FusedAlexNet::new(b, AlexNetCfg::mini(4), &mut rng);
    fused.set_training(false);
    let mut data = LabeledImages::new(16, 4, 10);
    let mut opt = FusedSgd::new(fused.fused_parameters(), PerModel::uniform(b, 0.05), 0.9).unwrap();
    for _ in 0..4 {
        let (x, y) = data.batch(6);
        opt.zero_grad();
        let tape = Tape::new();
        let copies: Vec<Tensor> = (0..b).map(|_| x.clone()).collect();
        let logits = fused.forward(&tape.leaf(stack_conv(&copies).unwrap()));
        let targets = stack_targets(&vec![y.clone(); b]).unwrap();
        fused_cross_entropy(&logits, &targets, Reduction::Mean).backward();
        opt.step();
    }
    // Extract model 0 and continue serially.
    let serial = AlexNet::new(AlexNetCfg::mini(4), &mut rng);
    serial.set_training(false);
    copy_model_weights(&fused.fused_parameters(), 0, &serial.parameters());
    let mut sopt = Sgd::new(serial.parameters(), 0.05, 0.9);
    let mut last = f32::INFINITY;
    for _ in 0..3 {
        let (x, y) = data.batch(6);
        sopt.zero_grad();
        let tape = Tape::new();
        let loss = serial.forward(&tape.leaf(x)).cross_entropy(&y);
        last = loss.item();
        assert!(last.is_finite());
        loss.backward();
        sopt.step();
    }
    assert!(last.is_finite());
}
