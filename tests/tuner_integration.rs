//! End-to-end tuner integration: a mixed hyper-parameter + architecture
//! sweep is partitioned into fusable groups (same-shape models only, the
//! paper's Observation 1), each group packed into fused arrays, trained,
//! and ranked.

use hfta_core::format::{stack_conv, stack_targets};
use hfta_core::loss::{fused_cross_entropy, Reduction};
use hfta_core::ops::FusedModule;
use hfta_core::optim::{FusedOptimizer, FusedSgd, PerModel};
use hfta_core::tuner::{partition_fusable, random_search, sweep, Trial};
use hfta_data::LabeledImages;
use hfta_models::{AlexNetCfg, FusedAlexNet};
use hfta_nn::{Module, Tape};
use hfta_tensor::{Rng, Tensor};

/// One candidate of an architecture + hyper-parameter search.
#[derive(Debug, Clone, PartialEq)]
struct Candidate {
    width: usize,
    lr: f32,
}

fn train_width_group(width: usize, chunk: &[Candidate], seed: u64) -> Vec<f32> {
    let b = chunk.len();
    let cfg = AlexNetCfg {
        width,
        classes: 4,
        image: 16,
    };
    let mut rng = Rng::seed_from(seed);
    let model = FusedAlexNet::new(b, cfg, &mut rng);
    model.set_training(false);
    let lrs: Vec<f32> = chunk.iter().map(|c| c.lr).collect();
    let mut opt =
        FusedSgd::new(model.fused_parameters(), PerModel::new(lrs), 0.9).expect("widths match");
    let mut data = LabeledImages::new(16, 4, 7);
    for _ in 0..6 {
        let (x, y) = data.batch(8);
        opt.zero_grad();
        let tape = Tape::new();
        let copies: Vec<Tensor> = (0..b).map(|_| x.clone()).collect();
        let logits = model.forward(&tape.leaf(stack_conv(&copies).unwrap()));
        let targets = stack_targets(&vec![y.clone(); b]).unwrap();
        fused_cross_entropy(&logits, &targets, Reduction::Mean).backward();
        opt.step();
    }
    let (x, y) = LabeledImages::new(16, 4, 99).batch(16);
    let tape = Tape::new();
    let copies: Vec<Tensor> = (0..b).map(|_| x.clone()).collect();
    let logits = model.forward(&tape.leaf(stack_conv(&copies).unwrap()));
    (0..b)
        .map(|i| {
            -logits
                .narrow(0, i, 1)
                .reshape(&[16, 4])
                .cross_entropy(&y)
                .item()
        })
        .collect()
}

#[test]
fn architecture_search_partitions_then_fuses() {
    // 8 candidates across two widths — widths cannot fuse together.
    let lrs = random_search(&[("lr", 1e-3, 1e-1)], 8, 5);
    let candidates: Vec<Candidate> = lrs
        .iter()
        .enumerate()
        .map(|(i, cfg)| Candidate {
            width: if i % 2 == 0 { 4 } else { 8 },
            lr: cfg[0].1,
        })
        .collect();

    let groups = partition_fusable(candidates, |c| c.width);
    assert_eq!(groups.len(), 2, "two architectures, two groups");

    let mut all_trials: Vec<Trial<Candidate>> = Vec::new();
    let mut arrays = 0;
    for group in groups {
        let width = group[0].width;
        assert!(group.iter().all(|c| c.width == width), "group is fusable");
        let report = sweep(group, 4, |chunk| {
            train_width_group(width, chunk, 100 + width as u64)
        })
        .expect("sweep runs");
        arrays += report.arrays_trained;
        all_trials.extend(report.trials);
    }
    all_trials.sort_by(|a, b| b.score.total_cmp(&a.score));

    assert_eq!(all_trials.len(), 8);
    // 8 serial jobs collapsed into 2 fused arrays.
    assert_eq!(arrays, 2);
    // Every score is a finite negative loss.
    for t in &all_trials {
        assert!(t.score.is_finite() && t.score < 0.0, "score {}", t.score);
    }
    // The ranking is consistent.
    assert!(all_trials.windows(2).all(|w| w[0].score >= w[1].score));
}
