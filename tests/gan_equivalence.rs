//! GAN-specific equivalence: the fused DCGAN generator/discriminator pair
//! (transposed convolutions, BN, leaky-ReLU, BCE) matches per-model serial
//! execution, and a full fused adversarial step reproduces serial
//! gradients.

use hfta_core::array::copy_model_weights;
use hfta_core::format::{stack_conv, unstack_conv};
use hfta_core::loss::{fused_bce_with_logits, Reduction};
use hfta_core::ops::FusedModule;
use hfta_core::optim::{FusedAdam, FusedOptimizer, PerModel};
use hfta_models::{DcganCfg, Discriminator, FusedDiscriminator, FusedGenerator, Generator};
use hfta_nn::{Adam, Module, Optimizer, Tape};
use hfta_tensor::{Rng, Tensor};

fn build_pair(
    b: usize,
    seed: u64,
) -> (
    Vec<Generator>,
    Vec<Discriminator>,
    FusedGenerator,
    FusedDiscriminator,
) {
    let cfg = DcganCfg::mini();
    let mut rng = Rng::seed_from(seed);
    let fg = FusedGenerator::new(b, cfg, &mut rng);
    let fd = FusedDiscriminator::new(b, cfg, &mut rng);
    let gens: Vec<Generator> = (0..b).map(|_| Generator::new(cfg, &mut rng)).collect();
    let discs: Vec<Discriminator> = (0..b).map(|_| Discriminator::new(cfg, &mut rng)).collect();
    for (i, g) in gens.iter().enumerate() {
        copy_model_weights(&fg.fused_parameters(), i, &g.parameters());
    }
    for (i, d) in discs.iter().enumerate() {
        copy_model_weights(&fd.fused_parameters(), i, &d.parameters());
    }
    for m in &gens {
        m.set_training(false);
    }
    for m in &discs {
        m.set_training(false);
    }
    fg.set_training(false);
    fd.set_training(false);
    (gens, discs, fg, fd)
}

#[test]
fn fused_generator_matches_serial() {
    let b = 3;
    let (gens, _, fg, _) = build_pair(b, 1);
    let mut rng = Rng::seed_from(100);
    let zs: Vec<Tensor> = (0..b).map(|_| rng.randn([2, 16, 1, 1])).collect();
    let tape = Tape::new();
    let fused_out = fg.forward(&tape.leaf(stack_conv(&zs).unwrap())).value();
    let parts = unstack_conv(&fused_out, b);
    for (i, g) in gens.iter().enumerate() {
        let tape = Tape::new();
        let y = g.forward(&tape.leaf(zs[i].clone())).value();
        assert!(
            parts[i].allclose(&y, 1e-3),
            "generator {i}: diff {}",
            parts[i].max_abs_diff(&y)
        );
    }
}

#[test]
fn fused_discriminator_matches_serial() {
    let b = 3;
    let (_, discs, _, fd) = build_pair(b, 2);
    let mut rng = Rng::seed_from(200);
    let xs: Vec<Tensor> = (0..b)
        .map(|_| rng.rand([2, 3, 16, 16], -1.0, 1.0))
        .collect();
    let tape = Tape::new();
    let fused_out = fd.forward(&tape.leaf(stack_conv(&xs).unwrap())).value(); // [N, B]
    for (i, d) in discs.iter().enumerate() {
        let tape = Tape::new();
        let y = d.forward(&tape.leaf(xs[i].clone())).value(); // [N, 1]
        let col = fused_out.narrow(1, i, 1);
        assert!(
            col.allclose(&y, 1e-3),
            "discriminator {i}: diff {}",
            col.max_abs_diff(&y)
        );
    }
}

#[test]
fn fused_adversarial_step_matches_serial_d_update() {
    // One discriminator step on (real, fake) batches, fused vs serial.
    let b = 2;
    let (gens, discs, fg, fd) = build_pair(b, 3);
    let mut rng = Rng::seed_from(300);
    let real = rng.rand([4, 3, 16, 16], -1.0, 1.0);
    let z = rng.randn([4, 16, 1, 1]);
    let lrs = [4e-4f32, 1e-4];

    // Serial D updates.
    for (i, d) in discs.iter().enumerate() {
        let mut opt = Adam::new(d.parameters(), lrs[i]);
        opt.zero_grad();
        let tape = Tape::new();
        let d_real = d.forward(&tape.leaf(real.clone()));
        let l_real = d_real.bce_with_logits(&Tensor::ones([4, 1]));
        let fake = gens[i].forward(&tape.leaf(z.clone())).value();
        let d_fake = d.forward(&tape.leaf(fake));
        let l_fake = d_fake.bce_with_logits(&Tensor::zeros([4, 1]));
        l_real.add(&l_fake).backward();
        opt.step();
    }

    // Fused D update on the same data.
    let mut opt = FusedAdam::new(fd.fused_parameters(), PerModel::new(lrs.to_vec())).unwrap();
    opt.zero_grad();
    let tape = Tape::new();
    let reals: Vec<Tensor> = (0..b).map(|_| real.clone()).collect();
    let d_real = fd.forward(&tape.leaf(stack_conv(&reals).unwrap()));
    let l_real = fused_bce_with_logits(&d_real, &Tensor::ones([4, b]), b, Reduction::Mean);
    let zs: Vec<Tensor> = (0..b).map(|_| z.clone()).collect();
    let fake = fg.forward(&tape.leaf(stack_conv(&zs).unwrap())).value();
    let d_fake = fd.forward(&tape.leaf(fake));
    let l_fake = fused_bce_with_logits(&d_fake, &Tensor::zeros([4, b]), b, Reduction::Mean);
    l_real.add(&l_fake).backward();
    opt.step();

    // Weights must agree model by model.
    for (i, d) in discs.iter().enumerate() {
        for (fp, sp) in fd.fused_parameters().iter().zip(d.parameters()) {
            let slice = fp.model_slice(i);
            let dest_dims = sp.value().dims().to_vec();
            let slice = slice.reshape(&dest_dims);
            assert!(
                slice.allclose(&sp.value_cloned(), 1e-4),
                "disc {i} param {} diff {}",
                sp.name(),
                slice.max_abs_diff(&sp.value_cloned())
            );
        }
    }
}
