//! The full array-member checkpoint workflow: train a fused array, extract
//! one model's weights, checkpoint them, and restore into a standalone
//! serial model that behaves identically — what a researcher needs to ship
//! the winning configuration of a fused sweep.

use hfta_core::array::copy_model_weights;
use hfta_core::format::{stack_conv, stack_targets};
use hfta_core::loss::{fused_cross_entropy, Reduction};
use hfta_core::ops::FusedModule;
use hfta_core::optim::{FusedOptimizer, FusedSgd, PerModel};
use hfta_data::LabeledImages;
use hfta_models::{AlexNet, AlexNetCfg, FusedAlexNet};
use hfta_nn::checkpoint;
use hfta_nn::{Module, Tape};
use hfta_tensor::{Rng, Tensor};

#[test]
fn train_fused_checkpoint_winner_restore_serial() {
    let b = 3;
    let cfg = AlexNetCfg::mini(4);
    let mut rng = Rng::seed_from(11);
    let array = FusedAlexNet::new(b, cfg, &mut rng);
    array.set_training(false);
    let mut opt = FusedSgd::new(
        array.fused_parameters(),
        PerModel::new(vec![0.05, 0.01, 0.002]),
        0.9,
    )
    .unwrap();

    // Train the array briefly.
    let mut data = LabeledImages::new(16, 4, 12);
    for _ in 0..5 {
        let (x, y) = data.batch(8);
        opt.zero_grad();
        let tape = Tape::new();
        let copies: Vec<Tensor> = (0..b).map(|_| x.clone()).collect();
        let logits = array.forward(&tape.leaf(stack_conv(&copies).unwrap()));
        let targets = stack_targets(&vec![y.clone(); b]).unwrap();
        fused_cross_entropy(&logits, &targets, Reduction::Mean).backward();
        opt.step();
    }

    // Extract the "winning" model (say index 1) into a scratch serial
    // model and checkpoint it.
    let scratch = AlexNet::new(cfg, &mut rng);
    scratch.set_training(false);
    copy_model_weights(&array.fused_parameters(), 1, &scratch.parameters());
    let bytes = checkpoint::save(&scratch.parameters());
    assert!(!bytes.is_empty());

    // A fresh model restored from the checkpoint must match the array's
    // model 1 output exactly.
    let restored = AlexNet::new(cfg, &mut rng);
    restored.set_training(false);
    checkpoint::load(&bytes, &restored.parameters()).unwrap();

    let x = rng.randn([2, 3, 16, 16]);
    let tape = Tape::new();
    let copies: Vec<Tensor> = (0..b).map(|_| x.clone()).collect();
    let fused_out = array
        .forward(&tape.leaf(stack_conv(&copies).unwrap()))
        .value();
    let model1 = fused_out.narrow(0, 1, 1).reshape(&[2, 4]);

    let tape = Tape::new();
    let serial_out = restored.forward(&tape.leaf(x)).value();
    assert!(
        serial_out.allclose(&model1, 1e-4),
        "restored model diverges by {}",
        serial_out.max_abs_diff(&model1)
    );
}

#[test]
fn checkpoints_are_stable_across_processes() {
    // Byte-for-byte determinism: the same parameters always serialize to
    // the same checkpoint (no hash maps, no pointers).
    let mut rng = Rng::seed_from(3);
    let model = AlexNet::new(AlexNetCfg::mini(4), &mut rng);
    let a = checkpoint::save(&model.parameters());
    let b = checkpoint::save(&model.parameters());
    assert_eq!(a, b);
}
