//! Offline vendored property-testing mini-framework.
//!
//! Implements the slice of the `proptest` API this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, integer and
//! float range strategies, `[class]{m,n}` regex-lite string strategies,
//! `prop::collection::vec`, `any::<bool>()`, the `proptest!` macro (with
//! optional `#![proptest_config(...)]`), and `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Compared to upstream there is no shrinking and no failure persistence:
//! a failing case panics with the case number and the generator is seeded
//! deterministically from the test's module path, so failures reproduce
//! exactly by re-running the test.

pub mod strategy;
pub mod test_runner;

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    macro_rules! arb_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Namespaced strategy constructors (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::collection::vec;
    }
}

/// The conventional glob import for proptest users.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Mirrors upstream's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in prop::collection::vec(0u8..4, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let result: ::std::result::Result<(), ::std::string::String> = {
                        $(let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        #[allow(unused_mut)]
                        let mut run = move || {
                            $body
                            ::std::result::Result::Ok(())
                        };
                        run()
                    };
                    if let ::std::result::Result::Err(e) = result {
                        ::std::panic!(
                            "proptest `{}` failed at case {}/{}:\n{}",
                            stringify!($name), case + 1, config.cases, e,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            ));
        }
    }};
}

/// Asserts two values are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            ));
        }
    }};
}
