//! Test configuration and the deterministic RNG driving generation.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration for one `proptest!` test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator for strategies; seeded from the test name so each
/// test draws an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// Seeds from an arbitrary name (FNV-1a hash of the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(hash),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
