//! The [`Strategy`] trait and the built-in strategies this workspace uses.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::Rng as _;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value-tree/shrinking machinery: a
/// strategy simply draws a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! range_inclusive_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` regex-lite strategies: `[class]{m,n}` (and plain literal strings)
/// generate random `String`s, matching how this workspace writes name
/// strategies like `"[a-z0-9_.]{0,20}"`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        if !self.starts_with('[') {
            // Literal pattern with no metacharacters: a constant strategy.
            if self.contains(['[', ']', '{', '}', '*', '+', '?', '|', '(', ')']) {
                panic!("unsupported string strategy pattern: {self:?}");
            }
            return self.to_string();
        }
        let (alphabet, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        if alphabet.is_empty() {
            return String::new();
        }
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

/// Parses `[class]{m,n}`, `[class]{n}`, or `[class]` (one char).
/// Returns `(alphabet, min_len, max_len)`.
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let close = chars.iter().position(|&c| c == ']')?;
    let mut alphabet = Vec::new();
    let class = &chars[1..close];
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            for c in lo..=hi {
                alphabet.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    let rest: String = chars[close + 1..].iter().collect();
    if rest.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let inner = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match inner.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n: usize = inner.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((alphabet, min, max))
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// Size specification for [`vec`]: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}
