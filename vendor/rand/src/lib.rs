//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no network access, so the workspace vendors the
//! exact slice of `rand` it consumes: [`RngCore`], [`SeedableRng`], the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), the [`Standard`]
//! distribution, and range sampling over the integer and float types used in
//! the repo. The algorithms are straightforward uniform samplers; statistical
//! subtleties of upstream `rand` (e.g. rejection sampling to remove modulo
//! bias) are intentionally omitted — every consumer in this workspace only
//! needs determinism and rough uniformity, and spans are far below 2^64 so
//! the bias is negligible.

use std::ops::{Range, RangeInclusive};

/// Core random number generation: the two word sizes plus byte fill.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with splitmix64 and builds the
    /// generator. Deterministic: the same `state` always yields the same
    /// generator.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Standard`] can sample uniformly.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: full-range integers, `[0, 1)` floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 explicit mantissa-equivalent bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly sampleable from a range. The single blanket
/// [`SampleRange`] impl below goes through this trait so type inference can
/// unify a range literal's type with `gen_range`'s return type (mirroring
/// upstream `rand`'s `SampleUniform` design).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let u: $t = Standard.sample(rng);
                let v = lo + (hi - lo) * u;
                // Guard the (rounding-only) case where v lands on `hi`.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = Standard.sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// Ranges a value can be drawn from (`lo..hi`, `lo..=hi`).
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// One sample from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard.sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Conventional prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&a));
            let b: u64 = rng.gen_range(8..=64);
            assert!((8..=64).contains(&b));
            let c: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&c));
            let f: f32 = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Counter(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits {hits}");
    }
}
