//! Offline vendored micro-benchmark harness.
//!
//! Implements the `criterion` 0.5 surface this workspace's `harness = false`
//! benches use: the [`Criterion`] builder (`sample_size`, `warm_up_time`,
//! `measurement_time`), `bench_function`, `benchmark_group` +
//! `bench_with_input` + [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology: each benchmark warms up for `warm_up_time` (which also
//! calibrates a batch size so one timed batch lasts ≳1 ms), then collects
//! `sample_size` timed batches within `measurement_time` and reports
//! mean / min / max nanoseconds per iteration on stdout.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total sampling budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: self.clone(),
            stats: None,
        };
        f(&mut bencher);
        report(name, bencher.stats.as_ref());
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks (e.g. serial vs fused at several widths).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.bench_function(&full, |b| f(b));
        self
    }

    /// Runs one benchmark in the group, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id (a `BenchmarkId` or a plain string).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Per-iteration timing statistics, in nanoseconds.
#[derive(Debug, Clone, Copy)]
struct Stats {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    config: Criterion,
    stats: Option<Stats>,
}

impl Bencher {
    /// Times `f`, storing per-iteration statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, which doubles as batch-size calibration: grow the batch
        // until one timed run lasts at least ~1 ms (keeps `Instant` overhead
        // out of fast benchmarks).
        let warm_start = Instant::now();
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t.elapsed();
            if dt < Duration::from_millis(1) && batch < (1 << 24) {
                batch *= 2;
            }
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }

        // Sampling: `sample_size` batches or until the time budget runs out
        // (always at least one batch).
        let mut samples = Vec::with_capacity(self.config.sample_size);
        let deadline = Instant::now() + self.config.measurement_time;
        for i in 0..self.config.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            if Instant::now() > deadline && i > 0 {
                break;
            }
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        self.stats = Some(Stats {
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            iters: batch * samples.len() as u64,
        });
    }
}

fn report(name: &str, stats: Option<&Stats>) {
    match stats {
        Some(s) => println!(
            "{name:<50} time: [{} {} {}] ({} iters)",
            fmt_ns(s.min_ns),
            fmt_ns(s.mean_ns),
            fmt_ns(s.max_ns),
            s.iters,
        ),
        None => println!("{name:<50} (no measurement: Bencher::iter never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
