//! Offline vendored serialization facade.
//!
//! The build container has no network access, so this crate stands in for
//! `serde`. Instead of upstream's visitor-driven `Serializer`/`Deserializer`
//! machinery it uses a concrete [`Value`] tree: `Serialize` renders a value
//! into a [`Value`], `Deserialize` reads one back out. `serde_json` (also
//! vendored) converts between [`Value`] and JSON text. The derive macros in
//! `serde_derive` generate impls against these traits for named-field
//! structs and unit-variant enums — the only shapes this workspace derives.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key/value map with preserved insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an [`Value::Object`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    /// Serializes into the value tree.
    fn serialize(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from the value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Fetches a required object field (used by derived impls).
pub fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, Error> {
    match v {
        Value::Object(_) => v
            .get(key)
            .ok_or_else(|| Error(format!("missing field `{key}`"))),
        other => Err(Error(format!(
            "expected object with field `{key}`, found {}",
            other.kind()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(Error(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error(format!("integer {n} out of i64 range")))?,
                    other => {
                        return Err(Error(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    // JSON has no NaN/Infinity literal; they round-trip as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error(format!("expected number, found {}", other.kind()))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error(format!(
                "expected single-char string, found {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Compound impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeMap<String, T> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<T: Deserialize> Deserialize for std::collections::BTreeMap<String, T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((k.clone(), T::deserialize(val)?)))
                .collect(),
            other => Err(Error(format!("expected object, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::HashMap<String, T> {
    fn serialize(&self) -> Value {
        // Sort keys so serialized output does not depend on hasher state.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<T: Deserialize> Deserialize for std::collections::HashMap<String, T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((k.clone(), T::deserialize(val)?)))
                .collect(),
            other => Err(Error(format!("expected object, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of length {N}, found {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::deserialize(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(Error(format!(
                        "expected tuple of length {LEN}, found {}",
                        items.len()
                    ))),
                    other => Err(Error(format!("expected array, found {}", other.kind()))),
                }
            }
        }
    )*};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
