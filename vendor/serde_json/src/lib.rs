//! Offline vendored JSON serialization over the vendored `serde` facade.
//!
//! Provides the `to_string` / `to_string_pretty` / `from_str` / `to_value` /
//! `from_value` functions this workspace calls. Mirrors real `serde_json`
//! behaviour where it matters here: non-finite floats serialize as `null`,
//! integral JSON numbers parse as integers, and parse errors carry a byte
//! offset.

use std::fmt;

pub use serde::Value;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::deserialize(&value)?)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize())
}

/// Converts a [`Value`] tree into any deserializable type.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    Ok(T::deserialize(value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        // Real serde_json refuses non-finite floats at the Serializer level;
        // the pragmatic offline equivalent is JSON null.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // Keep a trailing ".0" so the value re-parses as a float-looking
        // number (matches serde_json's Display of whole floats).
        out.push_str(&format!("{n:.1}"));
    } else {
        out.push_str(&n.to_string());
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{lit}`)")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("missing low surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("missing low surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; compensate for
                            // the unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(first) => {
                    // Copy one UTF-8 scalar (may be multi-byte).
                    let len = match first {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_value_tree() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("v100 \"sxm2\"\n".into())),
            ("mem".into(), Value::F64(31.75)),
            ("count".into(), Value::U64(8)),
            ("offset".into(), Value::I64(-3)),
            (
                "tags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let back: f64 = from_str("2.0").unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str(r#""aéb😀c""#).unwrap();
        assert_eq!(s, "aéb😀c");
    }

    #[test]
    fn parse_errors_carry_position() {
        let e = from_str::<Value>("[1, 2,]").unwrap_err();
        assert!(e.0.contains("byte"), "{e}");
    }
}
