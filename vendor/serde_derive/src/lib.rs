//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The container has no network, so `syn`/`quote` are unavailable; this crate
//! parses the derive input token stream by hand. It supports exactly the
//! shapes this workspace derives: non-generic structs with named fields
//! (serialized as JSON objects) and enums whose variants are all unit
//! variants (serialized as their name string). Anything else fails the build
//! with a clear message rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (vendored facade).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let code = match &item.shape {
        Shape::Struct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}",
                name = item.name
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",", name = item.name))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(::std::string::String::from(\
                             match self {{ {arms} }}))\n\
                     }}\n\
                 }}",
                name = item.name
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Derives `serde::Deserialize` (vendored facade).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let name = &item.name;
    let code = match &item.shape {
        Shape::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(\
                         ::serde::field(v, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) \
                         -> ::std::result::Result<{name}, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) \
                         -> ::std::result::Result<{name}, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error(\
                                     ::std::format!(\
                                         \"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::Error(\
                                 ::std::format!(\
                                     \"expected string for enum {name}, found {{}}\", \
                                     other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

enum Shape {
    /// Named field list.
    Struct(Vec<String>),
    /// Unit variant list.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive (vendored): tuple struct `{name}` is not supported")
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: no body found for `{name}`"),
        }
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_struct_fields(body, &name)),
        "enum" => Shape::Enum(parse_enum_variants(body, &name)),
        other => panic!("serde_derive: cannot derive for `{other} {name}`"),
    };
    Item { name, shape }
}

/// Advances past leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Extracts the names of named struct fields, skipping each field's type
/// (tracking `<`/`>` depth so generic arguments don't confuse the top-level
/// comma scan).
fn parse_struct_fields(body: TokenStream, name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: `{name}` has unsupported field syntax at {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde_derive: `{name}` must use named fields (`{field}: Type`)"),
        }
        fields.push(field);
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Extracts unit-variant names; rejects data-carrying variants.
fn parse_enum_variants(body: TokenStream, name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let variant = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: `{name}` has unsupported variant syntax at {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the next comma.
                while i < tokens.len() {
                    if matches!(&tokens[i], TokenTree::Punct(q) if q.as_char() == ',') {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
            }
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive (vendored): enum `{name}` variant `{variant}` carries data, \
                 which is not supported"
            ),
            Some(other) => {
                panic!("serde_derive: unexpected token after `{name}::{variant}`: {other:?}")
            }
        }
        variants.push(variant);
    }
    variants
}
