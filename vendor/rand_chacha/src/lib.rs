//! Offline vendored ChaCha8 random number generator.
//!
//! Implements the real ChaCha block function (8 rounds) over a 32-byte key,
//! exposing the `ChaCha8Rng` name and the `SeedableRng`/`RngCore` surface
//! this workspace uses. The output stream is *not* bit-identical to upstream
//! `rand_chacha` (upstream applies its own stream/counter layout); every
//! consumer in this repo only relies on determinism and statistical quality,
//! both of which the raw ChaCha8 keystream provides.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Deterministic ChaCha8-based generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// ChaCha input block: constants, 8 key words, 2 counter words, 2 nonce words.
    state: [u32; 16],
    /// Buffered keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: four column rounds then four diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (b, (w, s)) in self.buf.iter_mut().zip(working.iter().zip(&self.state)) {
            *b = w.wrapping_add(*s);
        }
        self.idx = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn deterministic_from_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn keystream_looks_uniform() {
        // Crude sanity: mean of [0,1) floats near 0.5, all bytes reachable.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let mut seen = [false; 256];
        let mut bytes = [0u8; 4096];
        rng.fill_bytes(&mut bytes);
        for b in bytes {
            seen[b as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 250);
    }
}
