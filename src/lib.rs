//! Umbrella crate for the HFTA reproduction workspace.
//!
//! This crate only hosts the workspace-level examples (`examples/`) and
//! integration tests (`tests/`). The library surface lives in the member
//! crates; the most interesting entry point is [`hfta_core`].
//!
//! # Example
//!
//! ```
//! use hfta_repro::prelude::*;
//! let spec = DeviceSpec::v100();
//! assert_eq!(spec.sm_count, 80);
//! ```

pub use hfta_cluster as cluster;
pub use hfta_core as core;
pub use hfta_data as data;
pub use hfta_models as models;
pub use hfta_nn as nn;
pub use hfta_sim as sim;
pub use hfta_tensor as tensor;

/// Commonly used items across the workspace, re-exported for examples.
pub mod prelude {
    pub use hfta_sim::device::DeviceSpec;
    pub use hfta_tensor::Tensor;
}
